"""Hierarchical (pooling) GNN over a coarsening hierarchy, with GRANII.

A graph-classification-style pipeline: run a GCN layer on the input
graph, mean-pool node states onto a coarsened graph, run another GCN
layer there, and read out a global embedding.  Each level's graph has a
different density, so GRANII's per-level decisions can differ — the
changing-sparsity scenario of the paper's §VI-F discussion.

Run:  python examples/hierarchical_pooling.py
"""

import os

import numpy as np

import repro
from repro.graphs import coarsen, load, make_node_features
from repro.models import GCNLayer
from repro.tensor import Tensor, spmm as t_spmm


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    graph = load("RD", scale)  # dense power-law graph
    feats, _ = make_node_features(graph, dim=64, seed=0)
    level = coarsen(graph)
    coarse = level.graph
    print(f"level 0: {graph}")
    print(f"level 1: {coarse}  (avg degree {coarse.avg_degree:.1f} "
          f"vs {graph.avg_degree:.1f})")

    rng = np.random.default_rng(0)
    layer0 = GCNLayer(64, 32, rng=rng)
    layer1 = GCNLayer(32, 16, rng=rng)

    # GRANII decides per (layer, level-graph) — only its online stage
    # re-runs for the second level.
    rep0 = repro.GRANII(layer0, graph, feats, device="h100", system="dgl", scale=scale)
    rep1 = repro.GRANII(layer1, coarse, None, device="h100", system="dgl", scale=scale)
    print("\nlevel-0 layer:", rep0.selections[0].label)
    print("level-1 layer:", rep1.selections[0].label)

    # forward through the hierarchy
    h0 = layer0(graph, feats)
    pooled = t_spmm(level.pool_matrix(), h0)  # mean-pool onto coarse nodes
    h1 = layer1(coarse, pooled)
    graph_embedding = h1.data.mean(axis=0)
    print(f"\ngraph embedding (16-d), norm {np.linalg.norm(graph_embedding):.3f}")
    assert np.all(np.isfinite(graph_embedding))

    # the decisions may legitimately differ across levels — print why
    if rep0.selections[0].label != rep1.selections[0].label:
        print("GRANII adapted the composition to the coarser level's density.")
    else:
        print("Both levels fall on the same side of the composition boundary.")


if __name__ == "__main__":
    main()
