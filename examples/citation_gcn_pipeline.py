"""Citation-network node classification: a full pipeline with GRANII.

A coAuthors-like citation graph, a two-layer GCN, and a side-by-side
comparison of the compositions GRANII exposes — including what each
would cost on different hardware targets, demonstrating why the decision
must be input- and target-aware.

Run:  python examples/citation_gcn_pipeline.py
"""

import os

import numpy as np

import repro
from repro.core import GraniiEngine, compile_model
from repro.experiments.common import measured_plan_time, shape_env_for
from repro.framework import get_system
from repro.graphs import load, make_node_features, train_val_test_masks
from repro.hardware import DEVICE_NAMES, GraphStats, get_device
from repro.models import MultiLayerGNN
from repro.tensor import Adam, Tensor, cross_entropy


def show_composition_costs(graph, in_size: int, out_size: int) -> None:
    """What every promoted GCN composition costs per device."""
    compiled = compile_model("gcn")
    env = shape_env_for(graph, "gcn", in_size, out_size)
    stats = GraphStats.from_graph(graph)
    system = get_system("dgl")
    print(f"\nper-iteration cost of each composition ({in_size}->{out_size}):")
    header = f"{'composition':28s}" + "".join(f"{d:>12s}" for d in DEVICE_NAMES)
    print(header)
    for planned in compiled.promoted:
        times = [
            measured_plan_time(planned.plan, env, get_device(d), system, stats)
            for d in DEVICE_NAMES
        ]
        cells = "".join(f"{1e3 * t:11.3f}m" for t in times)
        print(f"{planned.label:28s}{cells}")


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    graph = load("AU", scale)  # coAuthorsCiteseer-like collaboration graph
    feats, labels = make_node_features(graph, dim=256, seed=2, num_classes=8)
    train_mask, val_mask, test_mask = train_val_test_masks(graph.num_nodes, seed=2)
    print(f"graph: {graph}; {len(np.unique(labels))} classes")

    show_composition_costs(graph, 256, 64)

    model = MultiLayerGNN("gcn", [256, 64, 8], rng=np.random.default_rng(1))
    report = repro.GRANII(
        model, graph, feats, labels, device="h100", system="dgl", scale=scale
    )
    print("\nGRANII selections:")
    print(report.describe())

    opt = Adam(model.parameters(), lr=0.01)
    x = Tensor(feats)
    best_val, best_state = 0.0, None
    for epoch in range(40):
        opt.zero_grad()
        logits = model(graph, x)
        loss = cross_entropy(logits, labels, train_mask)
        loss.backward()
        opt.step()
        pred = np.argmax(logits.data, axis=1)
        val_acc = (pred[val_mask] == labels[val_mask]).mean()
        if val_acc > best_val:
            best_val, best_state = val_acc, model.state_dict()
        if epoch % 10 == 0:
            print(f"epoch {epoch:3d}  loss {loss.item():.4f}  val acc {val_acc:.3f}")

    model.load_state_dict(best_state)
    pred = np.argmax(model(graph, x).data, axis=1)
    test_acc = (pred[test_mask] == labels[test_mask]).mean()
    print(f"\ntest accuracy {test_acc:.3f} (chance {1 / 8:.3f})")
    assert test_acc > 0.5


if __name__ == "__main__":
    main()
