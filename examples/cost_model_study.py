"""Inside GRANII's cost models and code generation.

Trains the per-primitive cost models for a device, reports their
held-out accuracy (the §VI-G concern), shows which input features drive
predictions, and prints the conditional dispatch source GRANII generates
for GCN (the paper's Figure 7).

Run:  python examples/cost_model_study.py
"""

import os

import numpy as np

from repro.core import (
    collect_profile,
    compile_model,
    emit_python_source,
    featurize_graph,
    train_cost_models,
)
from repro.core.features import FEATURE_NAMES
from repro.graphs import load, training_graphs
from repro.hardware import GraphStats, get_device
from repro.kernels import KernelCall
from repro.learn import r2_score, spearman_rank_correlation


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    device = get_device("h100")
    print("profiling primitives on the training pool ...")
    dataset = collect_profile(device, scale=scale)
    for primitive in dataset.primitives:
        print(f"  {primitive:16s} {dataset.size(primitive):5d} samples")

    print("\ntraining one GBT per primitive ...")
    models = train_cost_models(device, dataset)

    # held-out accuracy on an evaluation graph the pool never saw --------
    graph = load("RD", scale)
    stats = GraphStats.from_graph(graph)
    vec = featurize_graph(graph)
    n, nnz = graph.num_nodes, graph.num_edges
    truths, preds = [], []
    for k in (32, 128, 512, 2048):
        for primitive, shape in [
            ("spmm", {"m": n, "nnz": nnz, "k": k}),
            ("spmm_unweighted", {"m": n, "nnz": nnz, "k": k}),
            ("gemm", {"m": n, "k": k, "n": k}),
            ("row_broadcast", {"m": n, "k": k}),
            ("degree_binning", {"m": n, "nnz": nnz}),
        ]:
            call = KernelCall(primitive, shape)
            truths.append(device.time_call(call, stats))
            preds.append(models.predict_call(call, vec))
    truths, preds = np.array(truths), np.array(preds)
    print(
        f"\nheld-out ({graph.name}): spearman "
        f"{spearman_rank_correlation(truths, preds):.3f}, "
        f"log-R2 {r2_score(np.log(truths), np.log(preds)):.3f}"
    )

    # which features matter? --------------------------------------------
    spmm_model = models._models["spmm"]
    importances = spmm_model.feature_importances(len(FEATURE_NAMES))
    top = np.argsort(importances)[::-1][:5]
    print("\ntop features of the SpMM cost model:")
    for idx in top:
        print(f"  {FEATURE_NAMES[idx]:20s} {importances[idx]:.3f}")

    # the generated conditional code (Figure 7) --------------------------
    print("\nGRANII-generated dispatch for GCN:")
    print(emit_python_source(compile_model("gcn")))


if __name__ == "__main__":
    main()
