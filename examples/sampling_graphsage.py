"""Mini-batch GraphSAGE with neighborhood sampling and GRANII (§VI-E).

Trains GraphSAGE on sampled blocks of a products-like graph, then shows
the paper's sampling finding: GRANII's composition decision, made once
per sampling size, agrees with the per-sample winner across random
neighborhood samples — so sampled training needs no per-batch
re-inspection.

Run:  python examples/sampling_graphsage.py
"""

import os

import numpy as np

from repro.core import GraniiEngine, compile_model
from repro.core.features import featurize_graph
from repro.experiments.common import measured_plan_time, shape_env_for
from repro.framework import get_system
from repro.graphs import (
    load,
    make_node_features,
    sample_blocks,
    sample_fanout,
)
from repro.hardware import GraphStats, get_device
from repro.models import SAGELayer
from repro.tensor import Adam, Tensor, cross_entropy, gather_rows


def train_sampled_sage(graph, feats, labels, epochs: int = 3) -> float:
    """Mini-batch training over sampled blocks; returns final accuracy."""
    rng = np.random.default_rng(0)
    num_classes = int(labels.max()) + 1
    layer = SAGELayer(feats.shape[1], num_classes, activation=False,
                      rng=np.random.default_rng(3))
    opt = Adam(layer.parameters(), lr=0.02)
    x = Tensor(feats)
    batch = 256
    for epoch in range(epochs):
        perm = rng.permutation(graph.num_nodes)
        losses = []
        for start in range(0, min(graph.num_nodes, 2048), batch):
            seeds = perm[start:start + batch]
            blocks = sample_blocks(graph, seeds, fanouts=[10], rng=rng)
            block = blocks[0]
            opt.zero_grad()
            block_feat = gather_rows(x, block.input_nodes)
            logits = layer.forward_block(block, block_feat)
            loss = cross_entropy(logits, labels[block.output_nodes])
            loss.backward()
            opt.step()
            losses.append(loss.item())
        print(f"epoch {epoch}: mean batch loss {np.mean(losses):.4f}")
    full_logits = layer(graph, x)
    return float((np.argmax(full_logits.data, axis=1) == labels).mean())


def sampling_decision_study(graph, scale: str = "default") -> None:
    """GRANII's GCN decision across neighborhood-sampling sizes."""
    engine = GraniiEngine(device="h100", system="dgl", scale=scale)
    compiled = compile_model("gcn")
    dynamic = compiled.find(norm="dynamic", order="agg_first")[0]
    precompute = compiled.find(norm="precompute", order="agg_first")[0]
    device = get_device("h100")
    system = get_system("dgl")
    rng = np.random.default_rng(1)
    print("\nGRANII decision vs true winner on neighborhood samples:")
    print(f"{'fanout':>8s} {'dynamic':>12s} {'precompute':>12s} {'winner':>10s} {'GRANII':>8s}")
    for fanout in (1000, 100, 10):
        sub = sample_fanout(graph, fanout, rng)
        env = shape_env_for(sub, "gcn", 32, 256)
        stats = GraphStats.from_graph(sub)
        t_dyn = measured_plan_time(dynamic.plan, env, device, system, stats)
        t_pre = measured_plan_time(precompute.plan, env, device, system, stats)
        vec = featurize_graph(sub)
        pred_dyn = engine.predict_plan_cost(dynamic.plan, env, vec)
        pred_pre = engine.predict_plan_cost(precompute.plan, env, vec)
        winner = "dynamic" if t_dyn <= t_pre else "precomp"
        choice = "dynamic" if pred_dyn <= pred_pre else "precomp"
        print(
            f"{fanout:8d} {1e3 * t_dyn:11.3f}m {1e3 * t_pre:11.3f}m "
            f"{winner:>10s} {choice:>8s}"
        )


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    graph = load("OP", scale)  # ogbn-products-like
    feats, labels = make_node_features(graph, dim=64, seed=4, num_classes=8)
    print(f"graph: {graph}")
    acc = train_sampled_sage(graph, feats, labels)
    print(f"full-graph accuracy after sampled training: {acc:.3f}")
    assert acc > 1.5 / 8
    sampling_decision_study(graph, scale)


if __name__ == "__main__":
    main()
