"""Financial fraud detection with an attention GNN, accelerated by GRANII.

One of the paper's motivating domains (§I): transaction networks are
power-law graphs where suspicious accounts form dense local structures.
We synthesise such a graph with planted "fraud-ring" communities, train a
two-layer GAT to flag the fraudulent accounts, and let GRANII pick the
attention aggregation composition (reuse vs recompute) per layer.

Run:  python examples/fraud_detection_gat.py
"""

import os

import numpy as np

import repro
from repro.graphs import rmat, sbm_communities, train_val_test_masks
from repro.models import MultiLayerGNN
from repro.sparse import CSRMatrix
from repro.tensor import Adam, Tensor, cross_entropy
from repro.graphs.graph import Graph


def build_transaction_graph(seed: int = 7, n: int = 4096) -> Graph:
    """A power-law transaction graph with dense fraud rings planted."""
    rng = np.random.default_rng(seed)
    base = rmat(n, avg_degree=12, seed=seed, name="transactions")
    n = base.num_nodes
    labels = np.zeros(n, dtype=np.int64)
    rows, cols, _ = base.adj.to_coo()
    extra_src, extra_dst = [], []
    num_rings = max(3, n // 200)  # fraud rings of ~12 colluding accounts
    for ring in range(num_rings):
        members = rng.choice(n, size=12, replace=False)
        labels[members] = 1
        iu, ju = np.triu_indices(12, k=1)
        extra_src.append(members[iu])
        extra_dst.append(members[ju])
    src = np.concatenate([rows] + extra_src + extra_dst)
    dst = np.concatenate([cols] + extra_dst + extra_src)
    adj = CSRMatrix.from_coo(src, dst, None, (n, n)).unweighted()
    graph = Graph(adj, name="transactions")
    graph.labels = labels
    return graph


def account_features(graph: Graph, dim: int, seed: int = 0) -> np.ndarray:
    """Per-account features: degree statistics plus noisy behaviour."""
    rng = np.random.default_rng(seed)
    deg = graph.degrees().astype(np.float64)
    feats = rng.standard_normal((graph.num_nodes, dim))
    feats[:, 0] = np.log1p(deg)
    # fraudulent accounts transact in bursts: a weak planted signal
    feats[:, 1] += 0.8 * graph.labels
    return feats


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    graph = build_transaction_graph(n=1024 if scale == "small" else 4096)
    labels = graph.labels
    feats = account_features(graph, dim=32)
    train_mask, val_mask, test_mask = train_val_test_masks(graph.num_nodes, seed=1)
    print(f"graph: {graph}; fraud rate {labels.mean():.3%}")

    model = MultiLayerGNN("gat", [32, 64, 2], rng=np.random.default_rng(0))

    report = repro.GRANII(
        model, graph, feats, labels, device="h100", system="dgl", scale=scale
    )
    print("GRANII selections:")
    print(report.describe())

    opt = Adam(model.parameters(), lr=0.01)
    x = Tensor(feats)
    for epoch in range(40):
        opt.zero_grad()
        logits = model(graph, x)
        loss = cross_entropy(logits, labels, train_mask)
        loss.backward()
        opt.step()
        if epoch % 10 == 0:
            pred = np.argmax(logits.data, axis=1)
            val_acc = (pred[val_mask] == labels[val_mask]).mean()
            print(f"epoch {epoch:3d}  loss {loss.item():.4f}  val acc {val_acc:.3f}")

    logits = model(graph, x)
    pred = np.argmax(logits.data, axis=1)
    test_acc = (pred[test_mask] == labels[test_mask]).mean()
    fraud_recall = (
        (pred[test_mask & (labels == 1)] == 1).mean()
        if (test_mask & (labels == 1)).any()
        else float("nan")
    )
    print(f"\ntest accuracy {test_acc:.3f}, fraud recall {fraud_recall:.3f}")
    assert test_acc > max(0.85, 1.0 - 2 * labels.mean())  # beats all-clean guessing


if __name__ == "__main__":
    main()
