"""Quickstart: accelerate a GCN with GRANII (paper Figure 4).

Run:  python examples/quickstart.py
"""

import os

import numpy as np

import repro
from repro.graphs import load, make_node_features
from repro.models import GCNLayer


def main() -> None:
    # 1. An input: graph, node features, labels ------------------------
    scale = os.environ.get("REPRO_SCALE", "default")
    graph = load("CA", scale=scale)  # com-Amazon-like communities
    node_feats, labels = make_node_features(graph, dim=128, seed=0)
    print(f"graph: {graph}")

    # 2. A GNN model, exactly as you would write it anyway --------------
    model = GCNLayer(in_size=128, out_size=32, rng=np.random.default_rng(0))

    baseline = model(graph, node_feats)  # the framework's default path

    # 3. The only change: hand the model and inputs to GRANII -----------
    report = repro.GRANII(
        model, graph, node_feats, labels, device="h100", system="dgl", scale=scale
    )
    print("\nGRANII selections:")
    print(report.describe())

    # 4. Run as before — the selected composition executes under the hood
    accelerated = model(graph, node_feats)
    match = np.allclose(baseline.data, accelerated.data, atol=1e-8)
    print(f"\noutputs identical to the baseline: {match}")
    assert match

    # What did GRANII actually choose?
    chosen = report.selections[0]
    print(f"chosen composition: {chosen.label} (scenario {chosen.scenario})")
    for label, cost in sorted(chosen.predicted_costs.items(), key=lambda kv: kv[1]):
        print(f"  predicted {label}: {1e3 * cost:.3f} ms/iteration")


if __name__ == "__main__":
    main()
