"""Regression quality metrics for the cost models."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "mean_absolute_percentage_error", "spearman_rank_correlation"]


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is a perfect fit."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    ss_res = ((y_true - y_pred) ** 2).sum()
    ss_tot = ((y_true - y_true.mean()) ** 2).sum()
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    nz = y_true != 0
    if not nz.any():
        raise ValueError("MAPE undefined when all targets are zero")
    return float(np.abs((y_true[nz] - y_pred[nz]) / y_true[nz]).mean())


def _ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(values.shape[0])
    return ranks


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Rank correlation — what matters for *selecting* the best candidate."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length vectors")
    if a.shape[0] < 2:
        raise ValueError("need at least two points")
    ra, rb = _ranks(a), _ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra ** 2).sum() * (rb ** 2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)
