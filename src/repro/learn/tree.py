"""Regression trees with exact greedy splitting.

The building block of the gradient-boosted cost models (paper §IV-E2 uses
XGBoost; we implement the same additive-tree model class from scratch).
Splits minimise the sum of squared errors; the search is vectorised via
per-feature sorting and prefix sums, so fitting is O(features · n log n)
per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["RegressionTree"]


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: int = -1
    right: int = -1


class RegressionTree:
    """A CART-style regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum samples on each side of a split.
    min_gain:
        Minimum SSE reduction for a split to be accepted, as a fraction
        of the node's total SSE (scale-invariant, so targets spanning
        tiny ranges still split exactly).
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        min_gain: float = 1e-12,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._nodes: List[_Node] = []

    # ------------------------------------------------------------------
    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Best (feature, threshold, gain) over all features, or None."""
        n, num_features = x.shape
        total_sum = y.sum()
        total_sse = ((y - total_sum / n) ** 2).sum()
        best = None
        min_leaf = self.min_samples_leaf
        for f in range(num_features):
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            ys = y[order]
            prefix = np.cumsum(ys)
            prefix_sq = np.cumsum(ys ** 2)
            # candidate split after position i (left = [0..i])
            counts = np.arange(1, n)
            left_sum = prefix[:-1]
            left_sq = prefix_sq[:-1]
            right_sum = total_sum - left_sum
            right_sq = prefix_sq[-1] - left_sq
            left_sse = left_sq - left_sum ** 2 / counts
            right_sse = right_sq - right_sum ** 2 / (n - counts)
            gain = total_sse - (left_sse + right_sse)
            # a split is only valid between distinct feature values and with
            # enough samples on both sides
            valid = (xs[1:] != xs[:-1]) & (counts >= min_leaf) & ((n - counts) >= min_leaf)
            if not valid.any():
                continue
            gain = np.where(valid, gain, -np.inf)
            i = int(np.argmax(gain))
            # relative threshold: a degenerate-scale target (all values
            # within float-epsilon of each other) still gets its exact
            # split, while float noise on a constant target does not
            gain_floor = max(self.min_gain * total_sse, 1e-18)
            if gain[i] > gain_floor and (best is None or gain[i] > best[2]):
                threshold = 0.5 * (xs[i] + xs[i + 1])
                best = (f, float(threshold), float(gain[i]))
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        self._nodes.append(_Node(value=float(y.mean())))
        if depth >= self.max_depth or y.shape[0] < 2 * self.min_samples_leaf:
            return node_id
        split = self._best_split(x, y)
        if split is None:
            return node_id
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        node = self._nodes[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = left
        node.right = right
        return node_id

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) and y (n,)")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._nodes = []
        self._build(x, y, depth=0)
        return self

    def predict_one(self, x: np.ndarray) -> float:
        """Fast scalar prediction for a single feature vector."""
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        node = self._nodes[0]
        while node.feature >= 0:
            node = self._nodes[
                node.left if x[node.feature] <= node.threshold else node.right
            ]
        return node.value

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[0] == 1:
            return np.array([self.predict_one(x[0])])
        out = np.empty(x.shape[0])
        # iterative routing, vectorised level by level
        idx = np.zeros(x.shape[0], dtype=np.int64)
        active = np.arange(x.shape[0])
        while active.size:
            nodes = idx[active]
            feats = np.array([self._nodes[i].feature for i in nodes])
            is_leaf = feats < 0
            for pos in active[is_leaf]:
                out[pos] = self._nodes[idx[pos]].value
            active = active[~is_leaf]
            if not active.size:
                break
            nodes = idx[active]
            feats = np.array([self._nodes[i].feature for i in nodes])
            thresholds = np.array([self._nodes[i].threshold for i in nodes])
            go_left = x[active, feats] <= thresholds
            lefts = np.array([self._nodes[i].left for i in nodes])
            rights = np.array([self._nodes[i].right for i in nodes])
            idx[active] = np.where(go_left, lefts, rights)
        return out

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._nodes:
            return 0

        def walk(i: int) -> int:
            node = self._nodes[i]
            if node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)

    def feature_importances(self, num_features: int) -> np.ndarray:
        """Split counts per feature (a cheap importance proxy)."""
        counts = np.zeros(num_features)
        for node in self._nodes:
            if node.feature >= 0:
                counts[node.feature] += 1
        total = counts.sum()
        return counts / total if total else counts

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form of the fitted tree."""
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "min_gain": self.min_gain,
            "nodes": [
                [n.feature, n.threshold, n.value, n.left, n.right]
                for n in self._nodes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionTree":
        tree = cls(
            max_depth=data["max_depth"],
            min_samples_leaf=data["min_samples_leaf"],
            min_gain=data["min_gain"],
        )
        tree._nodes = [
            _Node(feature=f, threshold=t, value=v, left=l, right=r)
            for f, t, v, l, r in data["nodes"]
        ]
        return tree
