"""Gradient-boosted regression trees — the XGBoost stand-in (§IV-E2).

Squared-error boosting: each round fits a shallow regression tree to the
current residuals and adds it with shrinkage.  Row subsampling
(stochastic gradient boosting) and early stopping on a validation split
are supported; this matches how the paper trains one lightweight model
per (primitive, device) pair on profiled data.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .tree import RegressionTree

__all__ = ["GradientBoostedTrees"]


class GradientBoostedTrees:
    """An additive ensemble of regression trees for least-squares regression."""

    def __init__(
        self,
        num_rounds: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        early_stopping_rounds: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.early_stopping_rounds = early_stopping_rounds
        self.seed = seed
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []
        self.best_round_: Optional[int] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) and y (n,)")
        rng = np.random.default_rng(self.seed)
        self._base = float(y.mean())
        self._trees = []
        pred = np.full(y.shape[0], self._base)
        val_pred = None
        best_val = np.inf
        rounds_since_best = 0
        if eval_set is not None:
            x_val = np.asarray(eval_set[0], dtype=np.float64)
            y_val = np.asarray(eval_set[1], dtype=np.float64)
            val_pred = np.full(y_val.shape[0], self._base)
        for round_idx in range(self.num_rounds):
            residual = y - pred
            if self.subsample < 1.0:
                take = rng.random(x.shape[0]) < self.subsample
                if not take.any():
                    take[rng.integers(0, x.shape[0])] = True
                x_fit, r_fit = x[take], residual[take]
            else:
                x_fit, r_fit = x, residual
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x_fit, r_fit)
            self._trees.append(tree)
            pred += self.learning_rate * tree.predict(x)
            if eval_set is not None and self.early_stopping_rounds:
                val_pred += self.learning_rate * tree.predict(x_val)
                val_mse = float(((y_val - val_pred) ** 2).mean())
                if val_mse < best_val - 1e-15:
                    best_val = val_mse
                    self.best_round_ = round_idx
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        self._trees = self._trees[: self.best_round_ + 1]
                        break
        return self

    def predict_one(self, x: np.ndarray) -> float:
        """Fast scalar prediction for a single feature vector."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        total = self._base
        lr = self.learning_rate
        for tree in self._trees:
            total += lr * tree.predict_one(x)
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[0] == 1:
            return np.array([self.predict_one(x[0])])
        out = np.full(x.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    def feature_importances(self, num_features: int) -> np.ndarray:
        """Normalised split-count importances across the ensemble."""
        total = np.zeros(num_features)
        for tree in self._trees:
            total += tree.feature_importances(num_features) * tree.num_nodes
        s = total.sum()
        return total / s if s else total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form of the fitted ensemble."""
        return {
            "num_rounds": self.num_rounds,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "subsample": self.subsample,
            "seed": self.seed,
            "base": self._base,
            "trees": [tree.to_dict() for tree in self._trees],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GradientBoostedTrees":
        model = cls(
            num_rounds=data["num_rounds"],
            learning_rate=data["learning_rate"],
            max_depth=data["max_depth"],
            min_samples_leaf=data["min_samples_leaf"],
            subsample=data["subsample"],
            seed=data["seed"],
        )
        model._base = data["base"]
        model._trees = [RegressionTree.from_dict(t) for t in data["trees"]]
        return model
