"""Gradient-boosted regression trees (XGBoost stand-in) and metrics."""

from .gbt import GradientBoostedTrees
from .metrics import mean_absolute_percentage_error, r2_score, spearman_rank_correlation
from .tree import RegressionTree

__all__ = [
    "GradientBoostedTrees",
    "RegressionTree",
    "mean_absolute_percentage_error",
    "r2_score",
    "spearman_rank_correlation",
]
