"""The message-passing execution context (DGL-like mini-framework).

``MPGraph`` wraps a graph adjacency and node/edge data dictionaries and
executes ``update_all`` / ``apply_edges`` by lowering each (message,
reduce) pair onto the g-SpMM / g-SDDMM kernels — the same lowering DGL
performs.  All data are autograd :class:`~repro.tensor.tensor.Tensor`
objects so both inference and training run through this path.

This module is the *baseline* execution engine; GRANII replaces a model's
message-passing forward with a selected primitive-composition plan.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..kernels import get_semiring, gspmm
from ..sparse import CSRMatrix
from ..tensor import Tensor
from ..tensor import edge_softmax as t_edge_softmax
from ..tensor import gsddmm_add_uv, sddmm_dot, spmm, spmm_edge
from .messages import MessageFunc, ReduceFunc

__all__ = ["MPGraph"]


class MPGraph:
    """A graph plus mutable node/edge feature frames.

    ``adj`` rows are destinations, columns sources.  Edge data are 1-D
    tensors aligned with the adjacency's CSR edge order.
    """

    def __init__(self, adj: CSRMatrix) -> None:
        if adj.shape[0] != adj.shape[1] and adj.shape[0] <= 0:
            raise ValueError("adjacency must be non-empty")
        self.adj = adj
        self.ndata: Dict[str, Tensor] = {}
        self.edata: Dict[str, Tensor] = {}

    @property
    def num_nodes(self) -> int:
        return self.adj.shape[0]

    @property
    def num_edges(self) -> int:
        return self.adj.nnz

    # ------------------------------------------------------------------
    def _as_tensor(self, value) -> Tensor:
        return value if isinstance(value, Tensor) else Tensor(value)

    def set_ndata(self, field: str, value) -> None:
        value = self._as_tensor(value)
        if value.shape[0] != self.adj.shape[1]:
            raise ValueError("node data must have one row per node")
        self.ndata[field] = value

    def set_edata(self, field: str, value) -> None:
        value = self._as_tensor(value)
        if value.shape[0] != self.num_edges:
            raise ValueError("edge data must align with the CSR edge order")
        self.edata[field] = value

    # ------------------------------------------------------------------
    def update_all(self, message: MessageFunc, reduce: ReduceFunc) -> None:
        """Aggregate messages into ``ndata[reduce.out_field]`` via g-SpMM.

        ``sum`` reductions run through the autograd SpMM ops (they appear
        in trained baselines); ``mean``/``max`` lower onto the generalized
        semiring kernels and are inference-only (no backward closure) —
        the evaluated models only train with sum aggregation.
        """
        if message.out_field != reduce.msg_field:
            raise ValueError(
                "reduce consumes a different message field than produced"
            )
        if reduce.name != "sum":
            out = self._update_all_generalized(message, reduce)
            self.ndata[reduce.out_field] = out
            return
        if message.name == "copy_u":
            src = self.ndata[message.src_field]
            out = spmm(self.adj.unweighted(), src)
        elif message.name == "u_mul_e":
            src = self.ndata[message.src_field]
            edge = self.edata[message.edge_field]
            out = spmm_edge(self.adj.unweighted(), edge, src)
        elif message.name == "copy_e":
            edge = self.edata[message.edge_field]
            out = spmm_edge(
                self.adj.unweighted(),
                edge,
                Tensor(np.ones((self.adj.shape[1], 1))),
            )
        else:
            raise NotImplementedError(f"message {message.name!r} in update_all")
        self.ndata[reduce.out_field] = out

    def _update_all_generalized(
        self, message: MessageFunc, reduce: ReduceFunc
    ) -> Tensor:
        binary_by_message = {"copy_u": "copy_rhs", "u_mul_e": "mul", "copy_e": "copy_lhs"}
        if message.name not in binary_by_message:
            raise NotImplementedError(
                f"message {message.name!r} with reduce {reduce.name!r}"
            )
        semiring = get_semiring(reduce.name, binary_by_message[message.name])
        if message.name == "u_mul_e":
            adj = self.adj.with_values(self.edata[message.edge_field].data)
        elif message.name == "copy_e":
            adj = self.adj.with_values(self.edata[message.edge_field].data)
        else:
            adj = self.adj.unweighted()
        src = (
            self.ndata[message.src_field].data
            if message.name != "copy_e"
            else np.ones((self.adj.shape[1], 1))
        )
        return Tensor(gspmm(adj, src, semiring))

    def apply_edges(self, message: MessageFunc) -> None:
        """Produce ``edata[message.out_field]`` from endpoint features."""
        if message.name == "u_add_v":
            src = self.ndata[message.src_field]
            dst = self.ndata[message.edge_field]  # field reused as dst name
            self.edata[message.out_field] = gsddmm_add_uv(
                self.adj.unweighted(), dst, src
            )
        elif message.name == "u_mul_e":
            raise NotImplementedError("u_mul_e is an update_all message")
        else:
            raise NotImplementedError(f"message {message.name!r} in apply_edges")

    def apply_edges_dot(self, src_field: str, dst_field: str, out_field: str) -> None:
        """Per-edge dot products of endpoint features (attention variants)."""
        self.edata[out_field] = sddmm_dot(
            self.adj.unweighted(), self.ndata[dst_field], self.ndata[src_field]
        )

    def edge_softmax(self, logits_field: str, out_field: str) -> None:
        """Destination-wise softmax over edge logits (GAT's α)."""
        self.edata[out_field] = t_edge_softmax(
            self.adj.unweighted(), self.edata[logits_field]
        )

    # ------------------------------------------------------------------
    def in_degrees(self) -> np.ndarray:
        return self.adj.row_degrees().astype(np.float64)

    def local_scope(self) -> "_LocalScope":
        """Context manager restoring ndata/edata on exit (DGL idiom)."""
        return _LocalScope(self)


class _LocalScope:
    def __init__(self, graph: MPGraph) -> None:
        self._graph = graph

    def __enter__(self) -> MPGraph:
        self._ndata = dict(self._graph.ndata)
        self._edata = dict(self._graph.edata)
        return self._graph

    def __exit__(self, *exc) -> None:
        self._graph.ndata = self._ndata
        self._graph.edata = self._edata
