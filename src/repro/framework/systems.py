"""System personalities: the DGL-like and WiseGraph-like baselines.

The paper evaluates GRANII against two underlying GNN systems whose
*default* primitive compositions differ (§VI-B, §VI-C1):

- **DGL** (v2.4): dynamic-normalization GCN with degrees read from the CSR
  row pointer; GIN/SGC never reorder the update GEMM; GAT always *reuses*
  the updated features.
- **WiseGraph**: computes normalization degrees with a PyTorch *binning*
  function (atomics-heavy on dense graphs); applies configuration-based
  operator reordering (update-first when the embedding size shrinks,
  after Yan et al. [17]); GAT *recomputes* the updated features whenever
  the embedding size grows.

A ``System`` bundles those default choices plus a per-kind kernel
efficiency factor (WiseGraph's joint workload partitioning makes its
sparse kernels slightly faster), which the evaluation harness folds into
simulated kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..kernels import KernelCall

__all__ = ["System", "SYSTEMS", "get_system", "iter_systems", "SYSTEM_NAMES"]


@dataclass(frozen=True)
class System:
    """One baseline GNN framework's default behaviour.

    ``reorder_models`` lists the models whose shipped implementation
    applies the configuration-based GEMM reordering of Yan et al. [17];
    §VI-C1 notes DGL's GCN does but its GIN/SGC do not, while WiseGraph
    reorders throughout.
    """

    name: str
    degree_method: str  # 'indptr' | 'binning'
    reorder_models: frozenset  # models with config-based GEMM reordering
    gat_policy: str  # 'reuse' | 'config'
    gcn_default: str  # 'dynamic' | 'precompute'
    kind_efficiency: Dict[str, float] = field(default_factory=dict)

    def efficiency(self, call: KernelCall) -> float:
        """Multiplier on simulated kernel time for this system's kernels."""
        return self.kind_efficiency.get(call.kind, 1.0)

    def default_gemm_first(self, model: str, in_size: int, out_size: int) -> bool:
        """Whether the baseline runs the update GEMM before aggregation."""
        if model.lower() in self.reorder_models:
            # Yan et al. [17]: update first when it shrinks the embedding.
            return in_size > out_size
        return False

    def default_gat_recompute(self, in_size: int, out_size: int) -> bool:
        """Whether the baseline GAT recomputes Θ during aggregation."""
        if self.gat_policy == "config":
            return in_size < out_size
        return False


SYSTEMS: Dict[str, System] = {
    "dgl": System(
        name="dgl",
        degree_method="indptr",
        reorder_models=frozenset({"gcn"}),
        gat_policy="reuse",
        gcn_default="dynamic",
        kind_efficiency={"sparse": 1.0, "dense": 1.0},
    ),
    "wisegraph": System(
        name="wisegraph",
        degree_method="binning",
        reorder_models=frozenset({"gcn", "gin", "sgc", "tagcn"}),
        gat_policy="config",
        gcn_default="dynamic",
        kind_efficiency={"sparse": 0.88, "dense": 0.97},
    ),
}

SYSTEM_NAMES: Tuple[str, ...] = tuple(SYSTEMS)


def get_system(name: str) -> System:
    name = name.lower()
    if name not in SYSTEMS:
        raise KeyError(f"unknown system {name!r}; choices: {SYSTEM_NAMES}")
    return SYSTEMS[name]


def iter_systems():
    """Yield every registered :class:`System` (chaos/eval sweep helper)."""
    for name in SYSTEM_NAMES:
        yield SYSTEMS[name]
