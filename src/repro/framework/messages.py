"""Built-in message and reduce functions (DGL's ``fn`` namespace).

Baseline GNN models are written in the message-passing paradigm:
``g.update_all(fn.copy_u('h', 'm'), fn.sum('m', 'h'))``.  These descriptor
objects carry only *names*; :mod:`repro.framework.mp` maps each
(message, reduce) pair onto a g-SpMM semiring, and GRANII's frontend maps
them onto matrix-IR operations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MessageFunc",
    "ReduceFunc",
    "copy_u",
    "copy_e",
    "u_mul_e",
    "u_add_v",
    "sum",
    "mean",
    "max",
]


@dataclass(frozen=True)
class MessageFunc:
    """A message function: what each edge carries."""

    name: str  # 'copy_u' | 'copy_e' | 'u_mul_e' | 'u_add_v'
    src_field: str
    edge_field: str
    out_field: str


@dataclass(frozen=True)
class ReduceFunc:
    """A reduce function: how destinations combine incoming messages."""

    name: str  # 'sum' | 'mean' | 'max'
    msg_field: str
    out_field: str


def copy_u(src_field: str, out_field: str) -> MessageFunc:
    """Message = source node feature (unweighted aggregation)."""
    return MessageFunc("copy_u", src_field, "", out_field)


def copy_e(edge_field: str, out_field: str) -> MessageFunc:
    """Message = edge feature."""
    return MessageFunc("copy_e", "", edge_field, out_field)


def u_mul_e(src_field: str, edge_field: str, out_field: str) -> MessageFunc:
    """Message = source feature × edge value (weighted aggregation)."""
    return MessageFunc("u_mul_e", src_field, edge_field, out_field)


def u_add_v(src_field: str, dst_field: str, out_field: str) -> MessageFunc:
    """Per-edge sum of endpoint features (GAT's attention logits)."""
    return MessageFunc("u_add_v", src_field, dst_field, out_field)


def sum(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001 - DGL name
    return ReduceFunc("sum", msg_field, out_field)


def mean(msg_field: str, out_field: str) -> ReduceFunc:
    return ReduceFunc("mean", msg_field, out_field)


def max(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001 - DGL name
    return ReduceFunc("max", msg_field, out_field)
