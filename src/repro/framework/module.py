"""Base class for GNN layers/models running on the message-passing engine."""

from __future__ import annotations

from typing import Callable, Optional

from ..tensor import Module, Tensor
from .mp import MPGraph

__all__ = ["GNNModule"]


class GNNModule(Module):
    """A GNN model: ``forward(graph, features) -> Tensor``.

    The first argument may be an :class:`MPGraph` or a plain
    :class:`~repro.graphs.graph.Graph` — the latter is wrapped (adding
    self-loops unless ``wants_self_loops`` is False, as for GIN) so the
    paper's Figure 4 usage works verbatim.

    GRANII accelerates a model by attaching an *executor* — a callable with
    the same signature produced from the selected primitive-composition
    plan.  When attached, ``__call__`` routes through it; the original
    message-passing ``forward`` stays available as the baseline.
    """

    wants_self_loops = True

    def __init__(self) -> None:
        super().__init__()
        self._granii_executor: Optional[Callable] = None

    def attach_executor(self, executor: Callable) -> None:
        """Install a GRANII-selected plan executor (Figure 4's 'only change')."""
        self._granii_executor = executor

    def detach_executor(self) -> None:
        self._granii_executor = None

    @property
    def granii_enabled(self) -> bool:
        return self._granii_executor is not None

    def granii_layers(self):
        """The sub-layers GRANII should optimise independently.

        Containers (multi-layer stacks, multi-head attention) override
        this; a plain layer optimises itself.
        """
        return [self]

    def as_mp_graph(self, graph) -> MPGraph:
        """Wrap (and cache) a Graph into the message-passing context."""
        if isinstance(graph, MPGraph):
            return graph
        cache_attr = "_mp_loops" if self.wants_self_loops else "_mp_raw"
        cached = getattr(graph, cache_attr, None)
        if cached is None:
            adj = graph.adj_with_self_loops() if self.wants_self_loops else graph.adj
            cached = MPGraph(adj)
            try:
                setattr(graph, cache_attr, cached)
            except AttributeError:  # pragma: no cover - exotic graph objects
                pass
        return cached

    def __call__(self, graph, feat, *args, **kwargs):
        graph = self.as_mp_graph(graph)
        if not isinstance(feat, Tensor):
            feat = Tensor(feat)
        if self._granii_executor is not None:
            return self._granii_executor(graph, feat, *args, **kwargs)
        return self.forward(graph, feat, *args, **kwargs)
