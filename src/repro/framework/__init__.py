"""Message-passing mini-framework and baseline system personalities."""

from . import messages as fn
from .module import GNNModule
from .mp import MPGraph
from .systems import SYSTEM_NAMES, SYSTEMS, System, get_system, iter_systems

__all__ = [
    "GNNModule",
    "MPGraph",
    "SYSTEMS",
    "SYSTEM_NAMES",
    "System",
    "fn",
    "get_system",
    "iter_systems",
]
