"""Model registry and multi-layer composition."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..framework import GNNModule, MPGraph
from ..tensor import Tensor
from .appnp import APPNPLayer
from .gat import GATLayer
from .gcn import GCNLayer
from .gin import GINLayer
from .sage import SAGELayer
from .sgc import SGCLayer
from .tagcn import TAGCNLayer

__all__ = ["GNNStack", "MODEL_NAMES", "MultiLayerGNN", "build_layer", "uses_self_loops"]

_LAYERS: Dict[str, Callable[..., GNNModule]] = {
    "gcn": GCNLayer,
    "gin": GINLayer,
    "sgc": SGCLayer,
    "tagcn": TAGCNLayer,
    "gat": GATLayer,
    "sage": SAGELayer,
    "appnp": APPNPLayer,
}

MODEL_NAMES = ("gcn", "gin", "sgc", "tagcn", "gat")  # the five evaluated models


def build_layer(
    name: str,
    in_size: int,
    out_size: int,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> GNNModule:
    """Construct one GNN layer by model name."""
    name = name.lower()
    if name not in _LAYERS:
        raise KeyError(f"unknown model {name!r}; choices: {sorted(_LAYERS)}")
    return _LAYERS[name](in_size, out_size, rng=rng, **kwargs)


def uses_self_loops(name: str) -> bool:
    """Whether the model aggregates over Ã = A + I.

    GIN replaces self-loops with its (1+ε) self term; GraphSAGE carries an
    explicit self branch.
    """
    return name.lower() not in ("gin", "sage")


class MultiLayerGNN(GNNModule):
    """A stack of same-type GNN layers (§VI-D / §VI-F).

    GRANII optimises each layer independently; chained decisions follow
    from chaining per-layer plans, so the stack simply applies layers in
    sequence over the same graph.
    """

    def __init__(
        self,
        name: str,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("need at least (in_size, out_size)")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name.lower()
        self.wants_self_loops = uses_self_loops(self.name)
        self.layers: List[GNNModule] = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer_kwargs = dict(kwargs)
            if self.name in ("gcn", "gin", "gat") and i == len(sizes) - 2:
                layer_kwargs.setdefault("activation", False)  # logits out
            self.layers.append(build_layer(self.name, a, b, rng=rng, **layer_kwargs))

    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        h = feat
        for layer in self.layers:
            h = layer(g, h)
        return h

    def granii_layers(self):
        return list(self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)


class GNNStack(GNNModule):
    """A heterogeneous stack of GNN layers (e.g. GCN -> GAT -> GIN).

    GRANII optimises each layer independently via ``granii_layers``.
    Layers can have different self-loop policies, so the stack forwards
    the *raw* graph and lets each sub-layer wrap it (self-loops or not)
    itself.
    """

    def __init__(self, layers: Sequence[GNNModule]) -> None:
        super().__init__()
        if not layers:
            raise ValueError("GNNStack needs at least one layer")
        self.layers = list(layers)
        self.in_size = layers[0].in_size
        self.out_size = layers[-1].out_size

    def __call__(self, graph, feat, *args, **kwargs):
        if not isinstance(feat, Tensor):
            feat = Tensor(feat)
        h = feat
        for layer in self.layers:
            h = layer(graph, h)
        return h

    forward = __call__

    def granii_layers(self):
        return list(self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)
