"""Simple Graph Convolution (Wu et al.) — K propagation hops, one weight.

``H' = (D^-1/2 Ã D^-1/2)^K H W``.  Like GCN, the normalization can run
dynamically (row-broadcasts around every hop) or be precomputed once; the
GEMM can additionally be hoisted before the hops when the embedding
shrinks — the operator reordering GRANII finds automatically (§VI-C1's
SGC speedups on DGL come from exactly this reordering).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph, fn
from ..sparse import CSRMatrix, sym_norm_values
from ..tensor import Linear, Tensor
from ..tensor import spmm as t_spmm
from .functional import compute_norm, row_mul

__all__ = ["SGCLayer"]


class SGCLayer(GNNModule):
    """SGC with ``hops`` propagation steps (no nonlinearity by design)."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        hops: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.in_size = in_size
        self.out_size = out_size
        self.hops = hops
        self._nadj_cache: Optional[CSRMatrix] = None

    # Baseline message-passing source (dynamic normalization, GEMM last).
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        norm = compute_norm(g)
        h = feat
        for _ in range(self.hops):
            h = row_mul(h, norm)
            g.set_ndata("h", h)
            g.update_all(fn.copy_u("h", "m"), fn.sum("m", "h"))
            h = g.ndata["h"]
            h = row_mul(h, norm)
        h = h @ self.linear.weight
        return h

    # Explicit compositions -------------------------------------------------
    def forward_dynamic(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        norm = compute_norm(g)
        h = feat @ self.linear.weight if update_first else feat
        for _ in range(self.hops):
            h = row_mul(h, norm)
            h = t_spmm(g.adj.unweighted(), h)
            h = row_mul(h, norm)
        return h if update_first else h @ self.linear.weight

    def forward_precompute(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        nadj = self._normalized_adj(g)
        h = feat @ self.linear.weight if update_first else feat
        for _ in range(self.hops):
            h = t_spmm(nadj, h)
        return h if update_first else h @ self.linear.weight

    def _normalized_adj(self, g: MPGraph) -> CSRMatrix:
        key = id(g.adj)
        if getattr(self, '_nadj_key', None) != key:
            self._nadj_cache = g.adj.with_values(sym_norm_values(g.adj))
            self._nadj_key = key
        return self._nadj_cache
