"""Graph Isomorphism Network (Xu et al.).

``H' = MLP((1 + ε)·H + A·H)``.  Two axes of composition choice:

- **GEMM placement**: aggregate-then-update ``((1+ε)I + A) H) W`` versus
  update-then-aggregate ``((1+ε)I + A) (H W)`` — the reordering behind the
  paper's GIN speedups on DGL (whose default never reorders).
- **Sparse precompute**: materialise ``B = A + (1+ε)I`` once as a weighted
  sparse matrix versus executing the sum dynamically as
  ``A·X + (1+ε)·X`` every iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph, fn
from ..sparse import CSRMatrix
from ..tensor import Linear, Tensor, relu
from ..tensor import spmm as t_spmm

__all__ = ["GINLayer"]


class GINLayer(GNNModule):
    """GIN layer with a single-linear update (MLP depth 1) and fixed ε."""

    wants_self_loops = False  # the (1+ε) self term replaces self-loops

    def __init__(
        self,
        in_size: int,
        out_size: int,
        eps: float = 0.1,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.in_size = in_size
        self.out_size = out_size
        self.eps = eps
        self.activation = activation
        self._badj_cache: Optional[CSRMatrix] = None

    def _maybe_activate(self, h: Tensor) -> Tensor:
        return relu(h) if self.activation else h

    # Baseline message-passing source (aggregate first, dynamic sum).
    # NOTE: GIN aggregates over the raw adjacency A (no self-loops); the
    # (1+ε) self term replaces them.
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        g.set_ndata("h", feat)
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "h"))
        h = g.ndata["h"]
        h = h + feat * (1.0 + self.eps)
        h = h @ self.linear.weight
        return self._maybe_activate(h)

    # Explicit compositions -------------------------------------------------
    def forward_dynamic(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        """Dynamic self-term: A·X + (1+ε)·X each call."""
        h = feat @ self.linear.weight if update_first else feat
        h = t_spmm(g.adj.unweighted(), h) + h * (1.0 + self.eps)
        if not update_first:
            h = h @ self.linear.weight
        return self._maybe_activate(h)

    def forward_precompute(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        """Precomputed B = A + (1+ε)I aggregation."""
        badj = self._b_adj(g)
        h = feat @ self.linear.weight if update_first else feat
        h = t_spmm(badj, h)
        if not update_first:
            h = h @ self.linear.weight
        return self._maybe_activate(h)

    def _b_adj(self, g: MPGraph) -> CSRMatrix:
        key = id(g.adj)
        if getattr(self, "_badj_key", None) != key:
            self._badj_key = key
            adj = g.adj
            rows, cols, vals = adj.to_coo()
            n = adj.shape[0]
            loop = np.arange(n, dtype=np.int64)
            self._badj_cache = CSRMatrix.from_coo(
                np.concatenate([rows, loop]),
                np.concatenate([cols, loop]),
                np.concatenate([vals, np.full(n, 1.0 + self.eps)]),
                adj.shape,
            )
        return self._badj_cache
