"""GraphSAGE (Hamilton et al.) with mean aggregation and sampling support.

§VI-E of the paper notes that, through sampling, GRANII supports
GraphSAGE with GCN aggregation.  The full-graph layer is
``H' = σ(H·W_self + mean_agg(H)·W_neigh)``; the sampled path consumes the
bipartite blocks produced by :func:`repro.graphs.sample_blocks`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph
from ..graphs import SampledBlock
from ..sparse import CSRMatrix
from ..tensor import Linear, Tensor, relu
from ..tensor import gather_rows, spmm as t_spmm

__all__ = ["SAGELayer"]


def _mean_adj(adj: CSRMatrix) -> CSRMatrix:
    """Row-normalised adjacency: mean aggregation as a weighted SpMM."""
    deg = adj.row_degrees().astype(np.float64)
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)
    return adj.with_values(
        adj.effective_values() * np.repeat(inv, adj.row_degrees())
    )


class SAGELayer(GNNModule):
    """GraphSAGE-mean layer, usable full-graph or on sampled blocks."""

    wants_self_loops = False  # the explicit self branch replaces loops

    def __init__(
        self,
        in_size: int,
        out_size: int,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.neigh_linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.in_size = in_size
        self.out_size = out_size
        self.activation = activation

    def _maybe_activate(self, h: Tensor) -> Tensor:
        return relu(h) if self.activation else h

    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        neigh = t_spmm(_mean_adj(g.adj), feat)
        h = feat @ self.self_linear.weight + neigh @ self.neigh_linear.weight
        return self._maybe_activate(h)

    def forward_block(self, block: SampledBlock, feat: Tensor) -> Tensor:
        """Sampled forward: ``feat`` rows correspond to block.input_nodes."""
        local_idx = np.searchsorted(block.input_nodes, block.output_nodes)
        self_feat = gather_rows(feat, local_idx)
        neigh = t_spmm(_mean_adj(block.adj), feat)
        h = (
            self_feat @ self.self_linear.weight
            + neigh @ self.neigh_linear.weight
        )
        return self._maybe_activate(h)

    def forward_gcn_agg(self, g: MPGraph, feat: Tensor) -> Tensor:
        """GraphSAGE with GCN-style sum aggregation (§VI-E's variant)."""
        neigh = t_spmm(g.adj.unweighted(), feat)
        h = feat @ self.self_linear.weight + neigh @ self.neigh_linear.weight
        return self._maybe_activate(h)
