"""Small functional helpers shared by the baseline model implementations.

These are the exact surface forms GRANII's frontend recognises when it
parses a model's message-passing ``forward`` source (§IV-B): ``row_mul``
is the row-broadcast of Equation (1), ``compute_norm`` produces GCN's
``d^{-1/2}`` vector.
"""

from __future__ import annotations

import numpy as np

from ..kernels import norm_diagonal
from ..tensor import Tensor
from ..tensor import row_broadcast as t_row_broadcast
from ..framework import MPGraph

__all__ = ["compute_norm", "row_mul", "prepare_mp_graph"]


def compute_norm(g: MPGraph, power: float = -0.5) -> np.ndarray:
    """The per-node normalization vector ``d^power`` of the adjacency."""
    return norm_diagonal(g.adj, power=power, method="indptr").diag


def row_mul(x: Tensor, d: np.ndarray) -> Tensor:
    """Row broadcast: multiply row i of ``x`` by scalar ``d[i]``."""
    return t_row_broadcast(d, x)


def prepare_mp_graph(graph) -> MPGraph:
    """Wrap an evaluation graph with self-loops added (Ã = A + I)."""
    return MPGraph(graph.adj_with_self_loops())
