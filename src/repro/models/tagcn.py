"""Topology Adaptive GCN (Du et al.) — per-hop filters.

``H' = Σ_{l=0..L} Ñ^l H W_l`` with Ñ the symmetric-normalized adjacency.
(The concatenate-then-project form in the original paper is algebraically
identical to summing per-hop projections.)  Each hop term independently
admits the dynamic/precompute normalization choice and the GEMM
placement choice, making TAGCN's composition space the largest of the
convolutional models.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..framework import GNNModule, MPGraph, fn
from ..sparse import CSRMatrix, sym_norm_values
from ..tensor import Linear, Tensor
from ..tensor import spmm as t_spmm
from .functional import compute_norm, row_mul

__all__ = ["TAGCNLayer"]


class TAGCNLayer(GNNModule):
    """TAGCN layer with ``hops + 1`` per-hop linear filters (W_0..W_hops)."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        hops: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.filters: List[Linear] = [
            Linear(in_size, out_size, bias=False, rng=rng) for _ in range(hops + 1)
        ]
        self.in_size = in_size
        self.out_size = out_size
        self.hops = hops
        self._nadj_cache: Optional[CSRMatrix] = None

    # Baseline message-passing source (dynamic normalization).
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        norm = compute_norm(g)
        out = feat @ self.filters[0].weight
        h = feat
        for l in range(1, self.hops + 1):
            h = row_mul(h, norm)
            g.set_ndata("h", h)
            g.update_all(fn.copy_u("h", "m"), fn.sum("m", "h"))
            h = g.ndata["h"]
            h = row_mul(h, norm)
            out = out + h @ self.filters[l].weight
        return out

    # Explicit compositions -------------------------------------------------
    def forward_dynamic(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        norm = compute_norm(g)
        out = feat @ self.filters[0].weight
        if update_first:
            # per-hop: project first, then propagate the projected features
            for l in range(1, self.hops + 1):
                h = feat @ self.filters[l].weight
                for _ in range(l):
                    h = row_mul(h, norm)
                    h = t_spmm(g.adj.unweighted(), h)
                    h = row_mul(h, norm)
                out = out + h
            return out
        h = feat
        for l in range(1, self.hops + 1):
            h = row_mul(h, norm)
            h = t_spmm(g.adj.unweighted(), h)
            h = row_mul(h, norm)
            out = out + h @ self.filters[l].weight
        return out

    def forward_precompute(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        nadj = self._normalized_adj(g)
        out = feat @ self.filters[0].weight
        if update_first:
            for l in range(1, self.hops + 1):
                h = feat @ self.filters[l].weight
                for _ in range(l):
                    h = t_spmm(nadj, h)
                out = out + h
            return out
        h = feat
        for l in range(1, self.hops + 1):
            h = t_spmm(nadj, h)
            out = out + h @ self.filters[l].weight
        return out

    def _normalized_adj(self, g: MPGraph) -> CSRMatrix:
        key = id(g.adj)
        if getattr(self, '_nadj_key', None) != key:
            self._nadj_cache = g.adj.with_values(sym_norm_values(g.adj))
            self._nadj_key = key
        return self._nadj_cache
