"""Graph Convolutional Network (Kipf & Welling) — paper §III-A.

The baseline ``forward`` is the *dynamic-normalization* composition both
DGL and WiseGraph default to: two row-broadcasts around an unweighted
aggregation (Equation 2).  The *precomputation* composition (Equation 3)
— an O(E) SDDMM producing the normalized adjacency Ñ, reused across
iterations and layers — is provided as an explicit alternative for
cross-validation; GRANII discovers it automatically via re-association.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph, fn
from ..sparse import CSRMatrix, sym_norm_values
from ..tensor import Linear, Tensor, relu
from ..tensor import spmm as t_spmm
from .functional import compute_norm, row_mul

__all__ = ["GCNLayer"]


class GCNLayer(GNNModule):
    """One GCN layer: ``σ(D^-1/2 Ã D^-1/2 H W)``."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.in_size = in_size
        self.out_size = out_size
        self.activation = activation
        self._norm_cache: Optional[np.ndarray] = None
        self._nadj_cache: Optional[CSRMatrix] = None

    def _maybe_activate(self, h: Tensor) -> Tensor:
        return relu(h) if self.activation else h

    # ------------------------------------------------------------------
    # Baseline: dynamic-normalization composition (message passing).
    # This is the source GRANII's frontend parses.
    # ------------------------------------------------------------------
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        norm = compute_norm(g)
        feat = row_mul(feat, norm)
        g.set_ndata("h", feat)
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "h"))
        h = g.ndata["h"]
        h = h @ self.linear.weight
        h = row_mul(h, norm)
        return self._maybe_activate(h)

    # ------------------------------------------------------------------
    # Explicit compositions (used for validation and as baselines).
    # ------------------------------------------------------------------
    def forward_dynamic(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        """Equation 2; ``update_first`` moves the GEMM before aggregation."""
        norm = self._norm(g)
        h = row_mul(feat, norm)
        if update_first:
            h = h @ self.linear.weight
            h = t_spmm(g.adj.unweighted(), h)
        else:
            h = t_spmm(g.adj.unweighted(), h)
            h = h @ self.linear.weight
        h = row_mul(h, norm)
        return self._maybe_activate(h)

    def forward_precompute(
        self, g: MPGraph, feat: Tensor, update_first: bool = False
    ) -> Tensor:
        """Equation 3: aggregate with the precomputed Ñ = D^-1/2 Ã D^-1/2."""
        nadj = self._normalized_adj(g)
        if update_first:
            h = feat @ self.linear.weight
            h = t_spmm(nadj, h)
        else:
            h = t_spmm(nadj, feat)
            h = h @ self.linear.weight
        return self._maybe_activate(h)

    # ------------------------------------------------------------------
    def _norm(self, g: MPGraph) -> np.ndarray:
        key = id(g.adj)
        if getattr(self, '_norm_key', None) != key:
            self._norm_cache = compute_norm(g)
            self._norm_key = key
        return self._norm_cache

    def _normalized_adj(self, g: MPGraph) -> CSRMatrix:
        key = id(g.adj)
        if getattr(self, '_nadj_key', None) != key:
            self._nadj_cache = g.adj.with_values(sym_norm_values(g.adj))
            self._nadj_key = key
        return self._nadj_cache
