"""GNN model zoo: GCN, GIN, SGC, TAGCN, GAT, GraphSAGE."""

from .appnp import APPNPLayer
from .functional import compute_norm, prepare_mp_graph, row_mul
from .gat import GATLayer, MultiHeadGATLayer
from .gcn import GCNLayer
from .gin import GINLayer
from .sage import SAGELayer
from .sgc import SGCLayer
from .tagcn import TAGCNLayer
from .zoo import GNNStack, MODEL_NAMES, MultiLayerGNN, build_layer, uses_self_loops

__all__ = [
    "APPNPLayer",
    "GATLayer",
    "GCNLayer",
    "GINLayer",
    "GNNStack",
    "MODEL_NAMES",
    "MultiHeadGATLayer",
    "MultiLayerGNN",
    "SAGELayer",
    "SGCLayer",
    "TAGCNLayer",
    "build_layer",
    "compute_norm",
    "prepare_mp_graph",
    "row_mul",
    "uses_self_loops",
]
