"""Graph Attention Network (Veličković et al.) — paper §III-B.

Attention (Equation 4) always computes Θ = H·W and per-edge logits
``e_ij = LeakyReLU(a_l·Θ_i + a_r·Θ_j)`` followed by an edge softmax.  The
aggregation (Equation 5) then either

- **reuses** Θ:  ``H' = σ(α · Θ)``   (aggregation width = out_size), or
- **recomputes** it:  ``H' = σ((α · H) · W)``  (aggregation width =
  in_size plus an extra GEMM, Equation 6) — profitable exactly when the
  output embedding is larger than the input and the graph dense enough.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph
from ..tensor import (
    Linear,
    Parameter,
    Tensor,
    elu,
    gsddmm_add_uv,
    leaky_relu,
    spmm_edge,
)
from ..tensor import edge_softmax as t_edge_softmax
from ..tensor.init import xavier_uniform

__all__ = ["GATLayer", "MultiHeadGATLayer"]


class GATLayer(GNNModule):
    """Single-head GAT layer."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        negative_slope: float = 0.2,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.attn_l = Parameter(xavier_uniform(rng, out_size, 1)[:, 0])
        self.attn_r = Parameter(xavier_uniform(rng, out_size, 1)[:, 0])
        self.in_size = in_size
        self.out_size = out_size
        self.negative_slope = negative_slope
        self.activation = activation

    def _maybe_activate(self, h: Tensor) -> Tensor:
        return elu(h) if self.activation else h

    def _attention(self, g: MPGraph, theta: Tensor) -> Tensor:
        """α as an edge tensor over g's pattern (Atten of Equation 4)."""
        score_dst = theta @ self.attn_l.reshape(-1, 1)
        score_src = theta @ self.attn_r.reshape(-1, 1)
        logits = gsddmm_add_uv(
            g.adj.unweighted(), score_dst.reshape(-1), score_src.reshape(-1)
        )
        logits = leaky_relu(logits, self.negative_slope)
        return t_edge_softmax(g.adj.unweighted(), logits)

    # Baseline message-passing source (reuse composition, DGL's default).
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        theta = feat @ self.linear.weight
        alpha = self._attention(g, theta)
        h = spmm_edge(g.adj.unweighted(), alpha, theta)
        return self._maybe_activate(h)

    # Explicit compositions -------------------------------------------------
    def forward_reuse(self, g: MPGraph, feat: Tensor) -> Tensor:
        """Equation 5: aggregate the already-computed Θ."""
        return self.forward(g, feat)

    def forward_recompute(self, g: MPGraph, feat: Tensor) -> Tensor:
        """Equation 6: aggregate the raw features, then apply W."""
        theta = feat @ self.linear.weight
        alpha = self._attention(g, theta)
        h = spmm_edge(g.adj.unweighted(), alpha, feat)
        h = h @ self.linear.weight
        return self._maybe_activate(h)


class MultiHeadGATLayer(GNNModule):
    """Multi-head GAT with concatenated head outputs.

    Standard multi-head attention is algebraically H independent
    single-head layers whose outputs concatenate; GRANII therefore
    optimises each head's composition independently (via
    ``granii_layers``), which also allows heads to pick *different*
    compositions when their embedding shapes differ.
    """

    def __init__(
        self,
        in_size: int,
        out_size: int,
        num_heads: int = 4,
        negative_slope: float = 0.2,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if out_size % num_heads:
            raise ValueError("out_size must divide evenly across heads")
        rng = rng if rng is not None else np.random.default_rng(0)
        head_out = out_size // num_heads
        self.heads = [
            GATLayer(
                in_size, head_out, negative_slope=negative_slope,
                activation=activation, rng=rng,
            )
            for _ in range(num_heads)
        ]
        self.in_size = in_size
        self.out_size = out_size
        self.num_heads = num_heads

    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        from ..tensor import concat

        return concat([head(g, feat) for head in self.heads], axis=1)

    def granii_layers(self):
        return list(self.heads)
