"""APPNP — Approximate Personalized Propagation of Neural Predictions.

Klicpera et al.'s model predicts first and propagates afterwards::

    Z_0     = H · W
    Z_{k+1} = (1-α) · Ñ · Z_k + α · Z_0
    out     = Z_K

With Ñ the symmetric-normalized adjacency, every propagation hop carries
the same dynamic-vs-precomputed normalization choice as GCN, with the
teleport term as an extra addition — a propagation-style model extending
the generalizability evidence of the paper's TAGCN/SGC study.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..framework import GNNModule, MPGraph, fn
from ..sparse import CSRMatrix, sym_norm_values
from ..tensor import Linear, Tensor
from ..tensor import spmm as t_spmm
from .functional import compute_norm, row_mul

__all__ = ["APPNPLayer"]


class APPNPLayer(GNNModule):
    """APPNP with ``hops`` propagation steps and teleport ``alpha``."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        hops: int = 2,
        alpha: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.linear = Linear(in_size, out_size, bias=False, rng=rng)
        self.in_size = in_size
        self.out_size = out_size
        self.hops = hops
        self.alpha = alpha
        self._nadj_cache: Optional[CSRMatrix] = None

    # Baseline (dynamic normalization); the scalar teleport arithmetic is
    # outside the frontend's translated vocabulary, so GRANII compiles
    # this model through its registered IR builder.
    def forward(self, g: MPGraph, feat: Tensor) -> Tensor:
        norm = compute_norm(g)
        z0 = feat @ self.linear.weight
        z = z0
        for _ in range(self.hops):
            h = row_mul(z, norm)
            g.set_ndata("h", h)
            g.update_all(fn.copy_u("h", "m"), fn.sum("m", "h"))
            h = row_mul(g.ndata["h"], norm)
            z = h * (1.0 - self.alpha) + z0 * self.alpha
        return z

    # Explicit compositions -------------------------------------------------
    def forward_dynamic(self, g: MPGraph, feat: Tensor) -> Tensor:
        return self.forward(g, feat)

    def forward_precompute(self, g: MPGraph, feat: Tensor) -> Tensor:
        nadj = self._normalized_adj(g)
        z0 = feat @ self.linear.weight
        z = z0
        for _ in range(self.hops):
            z = t_spmm(nadj, z) * (1.0 - self.alpha) + z0 * self.alpha
        return z

    def _normalized_adj(self, g: MPGraph) -> CSRMatrix:
        key = id(g.adj)
        if getattr(self, '_nadj_key', None) != key:
            self._nadj_cache = g.adj.with_values(sym_norm_values(g.adj))
            self._nadj_key = key
        return self._nadj_cache
