"""Command-line driver for the differential plan-equivalence harness.

Usage::

    python -m repro.verify --quick                 # CI sweep, JSON report
    python -m repro.verify                         # full battery
    python -m repro.verify --models gcn,gat --modes training
    python -m repro.verify --seed-fault            # demo: catch a bad kernel

Runs every promoted plan of every model, under both system personalities
and every SpMM execution strategy, against the baseline message-passing
composition on a battery of adversarial graphs (see
:mod:`repro.core.verify`); training mode also differentially checks
parameter and input gradients.  Exits non-zero on any divergence.
Divergences are shrunk to minimal graphs and emitted as pytest repro
files (``--repro-dir``); ``--seed-fault`` injects a deliberate kernel
fault to demonstrate the pipeline.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.verify import (
    VERIFY_MODES,
    ToleranceModel,
    adversarial_battery,
    seeded_fault,
    sweep,
)
from .kernels import SPMM_STRATEGIES
from .models.zoo import MODEL_NAMES

_SYSTEM_CHOICES = ("dgl", "wisegraph")


def _csv(value: str, choices, label: str):
    names = [v.strip() for v in value.split(",") if v.strip()]
    unknown = [n for n in names if n not in choices]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown {label} {unknown}; choices: {', '.join(choices)}"
        )
    return names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differentially verify plan equivalence across the zoo.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller graph battery (the CI configuration)",
    )
    parser.add_argument(
        "--models",
        type=lambda v: _csv(v, MODEL_NAMES, "model"),
        default=None,
        help=f"comma-separated subset of: {','.join(MODEL_NAMES)}",
    )
    parser.add_argument(
        "--systems",
        type=lambda v: _csv(v, _SYSTEM_CHOICES, "system"),
        default=None,
        help=f"comma-separated subset of: {','.join(_SYSTEM_CHOICES)}",
    )
    parser.add_argument(
        "--modes",
        type=lambda v: _csv(v, VERIFY_MODES, "mode"),
        default=None,
        help="comma-separated subset of: inference,training",
    )
    parser.add_argument(
        "--strategies",
        type=lambda v: _csv(v, SPMM_STRATEGIES, "strategy"),
        default=None,
        help=f"comma-separated subset of: {','.join(SPMM_STRATEGIES)}",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON equivalence report to this path",
    )
    parser.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="skip delta-debugging divergent cases",
    )
    parser.add_argument(
        "--repro-dir",
        default=".",
        help="directory for emitted pytest repro files (default: cwd)",
    )
    parser.add_argument(
        "--max-shrinks",
        type=int,
        default=3,
        help="shrink at most this many failures per sweep",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for weights, features, and gradient cotangents",
    )
    parser.add_argument(
        "--base-rtol",
        type=float,
        default=4e-12,
        help="tolerance-model base relative threshold (scaled by depth)",
    )
    parser.add_argument(
        "--seed-fault",
        action="store_true",
        help="perturb the blocked kernel to demonstrate fault detection",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every divergence as it is found",
    )
    args = parser.parse_args(argv)

    graphs = adversarial_battery(quick=args.quick)
    tol_model = ToleranceModel(base_rtol=args.base_rtol)
    progress = print if args.verbose else None

    start = time.perf_counter()
    kwargs = dict(
        models=args.models,
        systems=args.systems,
        modes=args.modes,
        strategies=args.strategies,
        graphs=graphs,
        tol_model=tol_model,
        seed=args.seed,
        shrink=args.shrink,
        repro_dir=args.repro_dir,
        max_shrinks=args.max_shrinks,
        progress=progress,
    )
    if args.seed_fault:
        with seeded_fault():
            report = sweep(**kwargs)
    else:
        report = sweep(**kwargs)
    elapsed = time.perf_counter() - start
    report.meta["elapsed_seconds"] = round(elapsed, 2)
    report.meta["quick"] = args.quick
    report.meta["seed_fault"] = args.seed_fault

    print(report.summary())
    print(f"[{report.num_checks} checks in {elapsed:.1f}s]")
    if args.output:
        report.save(args.output)
        print(f"report written to {args.output}")
    if args.seed_fault:
        # the demo succeeds when the injected fault IS caught
        if report.passed:
            print("seeded fault was NOT detected — harness is broken")
            return 1
        print("seeded fault detected and shrunk as expected")
        return 0
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
