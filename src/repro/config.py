"""Parsing of the ``REPRO_*`` environment knobs, in one place.

Every runtime tunable that can arrive through the environment is parsed
here, with uniform semantics:

- an **unset or empty** variable yields the documented default;
- an **invalid** value raises :class:`~repro.errors.GraniiConfigError`
  naming the variable, the offending text, and the accepted values —
  instead of crashing deep inside kernel setup (or, worse, silently
  falling back to a default the operator did not ask for).

The accessors read the environment on every call (they are dictionary
lookups, not I/O), so tests and the chaos driver can flip knobs with
``monkeypatch.setenv`` without cache invalidation ceremonies.

Knob reference
--------------
``REPRO_BLOCK_NNZ``           edge budget per tile of the blocked kernels
``REPRO_NUM_THREADS``         worker count of the parallel strategy
``REPRO_NUM_WORKERS``         process count of the sharded strategy
``REPRO_SHARD_NNZ``           target edges per row shard (sharded strategy)
``REPRO_SHARDED_TIMEOUT``     seconds before a sharded call is declared hung
``REPRO_SHARD_CACHE_KB``      per-shard tile cache budget for plan selection
``REPRO_SHARD_POLL_S``        result-queue poll granularity for liveness checks
``REPRO_SHARD_HEARTBEAT_S``   seconds of worker silence before it is hung
``REPRO_SHARD_RESPAWNS``      worker respawns per call before giving up
``REPRO_STATE_DIR``           durable-state snapshot directory (unset = off)
``REPRO_SPMM_STRATEGY``       process-wide default aggregation strategy
``REPRO_VERIFY_PLANS``        first-iteration differential verification
``REPRO_SKIP_VALIDATION``     skip O(E) structural checks in CSR builders
``REPRO_GUARD``               enable the guarded execution runtime
``REPRO_DEADLINE_SLACK``      deadline = predicted cost x slack (>= floor)
``REPRO_DEADLINE_FLOOR_MS``   minimum per-plan wall-clock deadline
``REPRO_MEM_BUDGET_MB``       per-plan memory budget (estimate + observed)
``REPRO_BREAKER_THRESHOLD``   failures before a (primitive, strategy) trips
``REPRO_BREAKER_COOLDOWN``    seconds a tripped breaker stays open
``REPRO_FAULTS``              fault-injection schedule (see repro.faults)
``REPRO_FAULTS_SEED``         seed for probabilistic fault draws
``REPRO_SERVE_MAX_QUEUE``     per-tenant bound on queued+running requests
``REPRO_SERVE_DEADLINE_MS``   default end-to-end request deadline (0 = none)
``REPRO_SERVE_RETRIES``       bounded retries around sharded-pool execution
``REPRO_PLAN_CACHE_SIZE``     fingerprint-keyed plan cache capacity
``REPRO_AUTOTUNE``            measure strategy/block_nnz points at selection
``REPRO_AUTOTUNE_GRID``       comma-separated candidate block_nnz values
``REPRO_AUTOTUNE_WARMUP``     discarded warm-up runs per measured point
``REPRO_AUTOTUNE_REPEATS``    timed repeats per measured point (best kept)
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from .errors import GraniiConfigError

__all__ = [
    "env_flag",
    "env_float",
    "env_int",
    "env_choice",
    "block_nnz",
    "num_threads",
    "num_workers",
    "shard_nnz",
    "sharded_timeout_seconds",
    "shard_cache_kb",
    "shard_poll_seconds",
    "shard_heartbeat_seconds",
    "shard_respawns",
    "state_dir",
    "spmm_strategy",
    "verify_plans",
    "skip_validation",
    "guard_enabled",
    "deadline_slack",
    "deadline_floor_seconds",
    "mem_budget_bytes",
    "breaker_threshold",
    "breaker_cooldown_seconds",
    "faults_spec",
    "faults_seed",
    "serve_max_queue",
    "serve_deadline_seconds",
    "serve_retries",
    "plan_cache_size",
    "autotune_enabled",
    "autotune_grid",
    "autotune_warmup",
    "autotune_repeats",
    "override_env",
]

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def _raw(name: str) -> Optional[str]:
    value = os.environ.get(name)
    if value is None:
        return None
    value = value.strip()
    return value or None


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
) -> int:
    """Integer knob; raises :class:`GraniiConfigError` on bad values."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise GraniiConfigError(
            f"{name}={raw!r} is not an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise GraniiConfigError(
            f"{name}={value} is below the minimum of {minimum}"
        )
    return value


def env_float(
    name: str,
    default: float,
    minimum: Optional[float] = None,
) -> float:
    """Floating-point knob; raises :class:`GraniiConfigError` on bad values."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise GraniiConfigError(
            f"{name}={raw!r} is not a number"
        ) from None
    if minimum is not None and value < minimum:
        raise GraniiConfigError(
            f"{name}={value} is below the minimum of {minimum}"
        )
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean knob accepting 1/true/yes/on and 0/false/no/off."""
    raw = _raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise GraniiConfigError(
        f"{name}={raw!r} is not a boolean; use one of "
        f"{sorted(_TRUE)} or {sorted(_FALSE)}"
    )


def env_choice(
    name: str, choices: Sequence[str], default: Optional[str]
) -> Optional[str]:
    """Enumerated knob; raises naming the accepted values."""
    raw = _raw(name)
    if raw is None:
        return default
    if raw not in choices:
        raise GraniiConfigError(
            f"{name}={raw!r} is not a valid choice; expected one of "
            f"{', '.join(choices)}"
        )
    return raw


# ----------------------------------------------------------------------
# Specific knobs
# ----------------------------------------------------------------------
def block_nnz(default: int) -> int:
    """``REPRO_BLOCK_NNZ``: edge budget per tile (positive integer)."""
    return env_int("REPRO_BLOCK_NNZ", default, minimum=1)


def num_threads() -> int:
    """``REPRO_NUM_THREADS``: pool width; 0/unset means auto-size."""
    return env_int("REPRO_NUM_THREADS", 0, minimum=0)


def num_workers() -> int:
    """``REPRO_NUM_WORKERS``: sharded pool width; 0/unset means auto-size."""
    return env_int("REPRO_NUM_WORKERS", 0, minimum=0)


def shard_nnz() -> int:
    """``REPRO_SHARD_NNZ``: target edges per row shard of the sharded SpMM."""
    return env_int("REPRO_SHARD_NNZ", 262144, minimum=1)


def sharded_timeout_seconds() -> float:
    """``REPRO_SHARDED_TIMEOUT``: seconds before a sharded call is hung."""
    return env_float("REPRO_SHARDED_TIMEOUT", 60.0, minimum=0.1)


def shard_cache_kb() -> int:
    """``REPRO_SHARD_CACHE_KB``: cache budget sizing each shard's tile."""
    return env_int("REPRO_SHARD_CACHE_KB", 1024, minimum=8)


def shard_poll_seconds() -> float:
    """``REPRO_SHARD_POLL_S``: result-queue poll granularity (seconds) of
    the sharded pool's liveness/heartbeat checks."""
    return env_float("REPRO_SHARD_POLL_S", 0.2, minimum=0.01)


def shard_heartbeat_seconds() -> float:
    """``REPRO_SHARD_HEARTBEAT_S``: a worker holding in-flight shards that
    shows no progress for this long is declared hung and respawned."""
    return env_float("REPRO_SHARD_HEARTBEAT_S", 15.0, minimum=0.1)


def shard_respawns() -> int:
    """``REPRO_SHARD_RESPAWNS``: worker respawns one sharded call absorbs
    before it gives up and raises; 0 restores fail-fast behaviour."""
    return env_int("REPRO_SHARD_RESPAWNS", 6, minimum=0)


def state_dir() -> Optional[str]:
    """``REPRO_STATE_DIR``: durable-state snapshot directory, or None (off)."""
    return _raw("REPRO_STATE_DIR")


def spmm_strategy(choices: Sequence[str]) -> Optional[str]:
    """``REPRO_SPMM_STRATEGY``: process-wide default strategy, or None."""
    return env_choice("REPRO_SPMM_STRATEGY", choices, None)


def verify_plans() -> bool:
    """``REPRO_VERIFY_PLANS``: first-iteration differential verification."""
    return env_flag("REPRO_VERIFY_PLANS", False)


def skip_validation() -> bool:
    """``REPRO_SKIP_VALIDATION``: drop the O(E) structural admission checks."""
    return env_flag("REPRO_SKIP_VALIDATION", False)


def guard_enabled() -> bool:
    """``REPRO_GUARD``: run executors through the guarded fallback ladder."""
    return env_flag("REPRO_GUARD", False)


def deadline_slack() -> float:
    """``REPRO_DEADLINE_SLACK``: deadline = predicted seconds x slack.

    The cost models predict *simulated device* time, which on the NumPy
    substrate under-estimates wall clock by orders of magnitude — hence
    the large default.  See docs/PERFORMANCE.md for tuning guidance.
    """
    return env_float("REPRO_DEADLINE_SLACK", 1e4, minimum=0.0)


def deadline_floor_seconds() -> float:
    """``REPRO_DEADLINE_FLOOR_MS``: minimum deadline regardless of slack."""
    return env_float("REPRO_DEADLINE_FLOOR_MS", 5000.0, minimum=0.0) / 1e3


def mem_budget_bytes() -> Optional[float]:
    """``REPRO_MEM_BUDGET_MB``: per-plan memory budget, or None (unlimited)."""
    value = env_float("REPRO_MEM_BUDGET_MB", 0.0, minimum=0.0)
    return value * 2**20 if value > 0 else None


def breaker_threshold() -> int:
    """``REPRO_BREAKER_THRESHOLD``: failures before a breaker trips."""
    return env_int("REPRO_BREAKER_THRESHOLD", 3, minimum=1)


def breaker_cooldown_seconds() -> float:
    """``REPRO_BREAKER_COOLDOWN``: seconds a tripped breaker stays open."""
    return env_float("REPRO_BREAKER_COOLDOWN", 30.0, minimum=0.0)


def faults_spec() -> Optional[str]:
    """``REPRO_FAULTS``: fault schedule, e.g. ``spmm:raise:0.1,gemm:slow:0.05:0.2``."""
    return _raw("REPRO_FAULTS")


def faults_seed() -> int:
    """``REPRO_FAULTS_SEED``: seed for probabilistic fault draws."""
    return env_int("REPRO_FAULTS_SEED", 0)


def serve_max_queue() -> int:
    """``REPRO_SERVE_MAX_QUEUE``: per-tenant queued+running request bound."""
    return env_int("REPRO_SERVE_MAX_QUEUE", 64, minimum=1)


def serve_deadline_seconds() -> Optional[float]:
    """``REPRO_SERVE_DEADLINE_MS``: default request deadline, or None (off)."""
    value = env_float("REPRO_SERVE_DEADLINE_MS", 0.0, minimum=0.0)
    return value / 1e3 if value > 0 else None


def serve_retries() -> int:
    """``REPRO_SERVE_RETRIES``: bounded retries on sharded worker failure."""
    return env_int("REPRO_SERVE_RETRIES", 2, minimum=0)


def plan_cache_size() -> int:
    """``REPRO_PLAN_CACHE_SIZE``: capacity of the fingerprint plan cache."""
    return env_int("REPRO_PLAN_CACHE_SIZE", 128, minimum=1)


def autotune_enabled() -> bool:
    """``REPRO_AUTOTUNE``: measure strategy/block_nnz candidates on the
    actual input at selection time and feed residuals back into the cost
    models."""
    return env_flag("REPRO_AUTOTUNE", False)


def autotune_grid() -> Optional[Sequence[int]]:
    """``REPRO_AUTOTUNE_GRID``: candidate ``block_nnz`` values, or None.

    A comma-separated list of positive integers, e.g. ``8192,32768,131072``.
    Unset means the autotuner's built-in grid around the default tile size.
    """
    raw = _raw("REPRO_AUTOTUNE_GRID")
    if raw is None:
        return None
    values = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            value = int(part)
        except ValueError:
            raise GraniiConfigError(
                f"REPRO_AUTOTUNE_GRID={raw!r} contains non-integer {part!r}"
            ) from None
        if value < 1:
            raise GraniiConfigError(
                f"REPRO_AUTOTUNE_GRID={raw!r} contains non-positive {value}"
            )
        values.append(value)
    if not values:
        raise GraniiConfigError(
            f"REPRO_AUTOTUNE_GRID={raw!r} names no block sizes"
        )
    return values


def autotune_warmup() -> int:
    """``REPRO_AUTOTUNE_WARMUP``: discarded warm-up runs per point."""
    return env_int("REPRO_AUTOTUNE_WARMUP", 1, minimum=0)


def autotune_repeats() -> int:
    """``REPRO_AUTOTUNE_REPEATS``: timed repeats per point (best kept)."""
    return env_int("REPRO_AUTOTUNE_REPEATS", 3, minimum=1)


def override_env(overrides):
    """Temporarily set environment knobs; returns a restore callable.

    The sanctioned way to flip ``REPRO_*`` values from drivers and tests
    (the chaos harness uses it per fault schedule), keeping raw
    ``os.environ`` access confined to this module::

        restore = override_env({"REPRO_MEM_BUDGET_MB": "0.01"})
        try:
            ...
        finally:
            restore()
    """
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)

    def restore() -> None:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v

    return restore
