"""Deterministic fault injection for the guarded execution runtime.

The guard (:mod:`repro.core.guard`) claims that any kernel failure —
crash, stall, over-allocation, silent corruption — is either absorbed by
the fallback ladder or surfaced as a structured
:class:`~repro.errors.GraniiError`.  This package makes that claim
testable: a :class:`FaultPlan` is a *seeded* schedule of faults attached
to the kernel-dispatch seam
(:func:`~repro.kernels.registry.kernel_wrapper`), so a failing chaos run
replays exactly from its seed.

Fault specs use the syntax ``primitive:action:probability[:param]``,
comma-separated — also accepted from the ``REPRO_FAULTS`` environment
variable::

    REPRO_FAULTS="spmm:raise:0.5,gemm:slow:0.1:0.2" python train.py

Actions
-------
``raise``
    Raise :class:`FaultInjected` *from inside the kernel*.  Deliberately
    a plain ``RuntimeError`` subclass, not a ``GraniiError`` — it
    simulates a genuine kernel bug; the guard's job is to turn it into a
    recorded demotion or a structured error.
``corrupt``
    Let the kernel run, then scale its output by ``param`` (default
    1e3).  Only runtime verification can catch this one.
``slow``
    Sleep ``param`` seconds (default 0.25) before running the kernel —
    trips wall-clock deadlines.
``overalloc``
    Raise ``MemoryError``, as a kernel whose scratch allocation blows
    past physical memory would.
``kill_worker``
    Arm a one-shot SIGKILL of a sharded-SpMM worker process
    (:func:`repro.kernels.sharded.request_worker_kill`), then run the
    kernel normally: if the dispatch executes under the ``spmm_sharded``
    strategy, one worker dies mid-shard and the self-healing pool must
    respawn it and resubmit its shards to the survivors.  A no-op for
    in-process strategies.
``hang_worker``
    Arm a one-shot SIGSTOP of a sharded-SpMM worker
    (:func:`repro.kernels.sharded.request_worker_hang`): the worker
    stays alive but silent, so only heartbeat-based hung detection
    (``REPRO_SHARD_HEARTBEAT_S``) — not the dead-pipe check — can
    recover the call.  A no-op for in-process strategies.
``shm_exhaustion``
    Arm a one-shot shared-memory allocation failure
    (:func:`repro.kernels.sharded.request_shm_exhaustion`), simulating
    ``/dev/shm`` running out of space: the next sharded call fails with
    a structured :class:`~repro.kernels.sharded.ShardedWorkerError` and
    the fallback ladder demotes to an in-process strategy.
``corrupt_snapshot``
    Truncate one durable-state snapshot file under the active
    ``REPRO_STATE_DIR`` (``param`` selects which by index into the
    sorted snapshot list; default the first).  The next warm start must
    quarantine it and rebuild that piece of state cold.  A no-op when
    no state dir is configured or no snapshot exists.

``primitive`` may be ``*`` to match every kernel.  Probabilities are
evaluated per dispatch from the plan's private RNG stream.

Beyond seeded kernel faults, :mod:`repro.faults.racestress` is the
concurrency-side sanitizer: it wraps the tree's locks to record
happens-before edges under stress scenarios and asserts the observed
lock-order graph is a subset of the static graph computed by
:mod:`repro.analysis.conclint`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import config
from ..errors import GraniiConfigError
from ..kernels.registry import kernel_wrapper
from ..tensor import Tensor

__all__ = [
    "FAULT_ACTIONS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_injection",
    "parse_fault_spec",
]

FAULT_ACTIONS = (
    "raise",
    "corrupt",
    "slow",
    "overalloc",
    "kill_worker",
    "hang_worker",
    "shm_exhaustion",
    "corrupt_snapshot",
)

_DEFAULT_PARAMS = {
    "raise": 0.0,
    "corrupt": 1e3,
    "slow": 0.25,
    "overalloc": 0.0,
    "kill_worker": 0.0,
    "hang_worker": 0.0,
    "shm_exhaustion": 0.0,
    "corrupt_snapshot": 0.0,
}


class FaultInjected(RuntimeError):
    """The error an injected ``raise`` fault throws.

    Intentionally *not* a :class:`~repro.errors.GraniiError`: it stands
    in for an arbitrary kernel bug, and the acceptance bar is that no
    such raw error escapes a guarded executor.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: which kernels, what happens, how often."""

    primitive: str  # kernel primitive name, or "*" for all
    action: str  # one of FAULT_ACTIONS
    probability: float  # per-dispatch firing probability in [0, 1]
    param: float = 0.0  # corrupt scale / slow seconds; 0 -> action default

    def matches(self, primitive: str) -> bool:
        return self.primitive == "*" or self.primitive == primitive

    @property
    def effective_param(self) -> float:
        return self.param if self.param else _DEFAULT_PARAMS[self.action]

    def __str__(self) -> str:
        text = f"{self.primitive}:{self.action}:{self.probability:g}"
        if self.param:
            text += f":{self.param:g}"
        return text


def parse_fault_spec(text: str, source: str = "fault spec") -> List[FaultSpec]:
    """Parse ``primitive:action:probability[:param]`` rules (comma-joined).

    Raises :class:`~repro.errors.GraniiConfigError` with the offending
    fragment on malformed input; an empty/blank string parses to no rules.
    """
    specs: List[FaultSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise GraniiConfigError(
                f"{source}: bad fault rule {chunk!r}; expected "
                f"primitive:action:probability[:param]"
            )
        primitive, action = parts[0].strip(), parts[1].strip().lower()
        if action not in FAULT_ACTIONS:
            raise GraniiConfigError(
                f"{source}: unknown fault action {action!r} in {chunk!r}; "
                f"choices: {FAULT_ACTIONS}"
            )
        try:
            probability = float(parts[2])
        except ValueError:
            raise GraniiConfigError(
                f"{source}: probability {parts[2]!r} in {chunk!r} is not a "
                f"number"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise GraniiConfigError(
                f"{source}: probability {probability:g} in {chunk!r} is "
                f"outside [0, 1]"
            )
        param = 0.0
        if len(parts) == 4:
            try:
                param = float(parts[3])
            except ValueError:
                raise GraniiConfigError(
                    f"{source}: param {parts[3]!r} in {chunk!r} is not a "
                    f"number"
                ) from None
        specs.append(FaultSpec(primitive, action, probability, param))
    return specs


class FaultPlan:
    """A seeded, replayable schedule of kernel faults.

    The plan owns a private RNG stream: two plans built with the same
    ``(specs, seed)`` fire on exactly the same dispatch sequence, which is
    what makes chaos runs reproducible from their seed alone.  ``fired``
    counts injections per ``(primitive, action)`` for assertions and
    reports; ``enabled`` gates the whole plan (the chaos driver disables
    it for its final clean verification call).
    """

    def __init__(
        self, specs: Sequence[FaultSpec], seed: int = 0
    ) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.enabled = True
        self.fired: Dict[Tuple[str, str], int] = {}
        self.dispatches = 0

    @classmethod
    def from_string(cls, text: str, seed: int = 0) -> "FaultPlan":
        return cls(parse_fault_spec(text), seed=seed)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan described by ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``.

        Returns ``None`` when ``REPRO_FAULTS`` is unset or blank.
        """
        text = config.faults_spec()
        if not text:
            return None
        return cls(
            parse_fault_spec(text, source="REPRO_FAULTS"),
            seed=config.faults_seed(),
        )

    def describe(self) -> str:
        rules = ", ".join(str(s) for s in self.specs) or "<no rules>"
        return f"FaultPlan(seed={self.seed}, rules=[{rules}])"

    # ------------------------------------------------------------------
    def _record(self, primitive: str, action: str) -> None:
        key = (primitive, action)
        self.fired[key] = self.fired.get(key, 0) + 1

    def wrapper(self, primitive: str, next_call, tag: str):
        """Kernel wrapper (the :func:`dispatch_kernel` seam signature)."""
        if not self.enabled:
            return next_call()
        self.dispatches += 1
        for spec in self.specs:
            if not spec.matches(primitive):
                continue
            # draw even when probability is 0/1 so the stream position —
            # and therefore every later draw — is seed-deterministic
            roll = self.rng.random()
            if roll >= spec.probability:
                continue
            self._record(primitive, spec.action)
            if spec.action == "raise":
                raise FaultInjected(
                    f"injected kernel failure in {primitive!r} "
                    f"(tag={tag!r}, seed={self.seed})"
                )
            if spec.action == "overalloc":
                raise MemoryError(
                    f"injected over-allocation in {primitive!r} "
                    f"(tag={tag!r}, seed={self.seed})"
                )
            if spec.action == "slow":
                time.sleep(spec.effective_param)
                continue  # then run the kernel normally
            if spec.action == "kill_worker":
                from ..kernels.sharded import request_worker_kill

                request_worker_kill()
                continue  # the sharded dispatch (if any) loses a worker
            if spec.action == "hang_worker":
                from ..kernels.sharded import request_worker_hang

                request_worker_hang()
                continue  # the sharded dispatch (if any) gets a silent worker
            if spec.action == "shm_exhaustion":
                from ..kernels.sharded import request_shm_exhaustion

                request_shm_exhaustion()
                continue  # the next segment allocation fails structured
            if spec.action == "corrupt_snapshot":
                _corrupt_snapshot(int(spec.param or 0))
                continue  # the next warm start must quarantine it
            if spec.action == "corrupt":
                value = next_call()
                return _corrupt(value, spec.effective_param)
        return next_call()


def _corrupt_snapshot(index: int = 0) -> Optional[str]:
    """Truncate one snapshot under ``REPRO_STATE_DIR`` mid-file — the
    on-disk damage a crash during a non-atomic write would leave.
    Returns the damaged path, or ``None`` when there is nothing to hit.
    """
    state_dir = config.state_dir()
    if not state_dir:
        return None
    from ..state import StateStore

    store = StateStore(state_dir)
    names = store.snapshots()
    if not names:
        return None
    path = store._path(names[index % len(names)])
    raw = path.read_text()
    path.write_text(raw[: max(1, len(raw) // 2)])
    return str(path)


def _corrupt(value, scale: float):
    """Silently scale a kernel's dense output (sparse values if sparse)."""
    if isinstance(value, np.ndarray):
        return value * scale
    if isinstance(value, Tensor):
        return Tensor(np.asarray(value.data) * scale)
    values = getattr(value, "values", None)
    if isinstance(values, np.ndarray):
        try:
            return type(value)(
                value.indptr, value.indices, values * scale, shape=value.shape
            )
        except (AttributeError, TypeError):
            return value
    return value


@contextmanager
def fault_injection(
    plan: FaultPlan, thread_local: bool = False
) -> Iterator[FaultPlan]:
    """Install ``plan`` on the kernel-dispatch seam for the block.

    ``thread_local=True`` confines the faults to dispatches made by the
    calling thread — the serving runtime's request-scoped fault plans,
    which must not contaminate other tenants' concurrent requests.
    """
    with kernel_wrapper(plan.wrapper, thread_local=thread_local):
        yield plan
