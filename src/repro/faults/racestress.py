"""Happens-before stress sanitizer for the concurrency linter.

:mod:`repro.analysis.conclint` computes a *static* lock-acquisition-order
graph by interprocedural analysis.  That graph is an over-approximation
— it may contain edges no execution takes — but it must never be an
*under*-approximation: every lock-order edge a real run exhibits has to
appear in the static graph, or the linter's cycle check is unsound.

This module closes the loop at test time.  It monkeypatches the
``threading.Lock``/``threading.RLock`` factories with caller-site-aware
versions: a lock constructed at a source site the static pass indexed
(see :meth:`LockGraph.site_index`) is wrapped so every acquisition
records a happens-before edge ``held -> acquired`` into a
:class:`RaceMonitor`; locks constructed anywhere else (stdlib internals,
test scaffolding) stay untraced.  Module-level locks that already exist
at import time (``repro.kernels.sharded._POOL_LOCK``) are swapped by
attribute patching for the duration of the run.

After driving the stress scenarios — plan-cache eviction hammering, a
small serving workload, and sharded SpMM with pool drain — the observed
edge set is asserted to be a **subset** of the static graph: zero
unexplained edges.  Lock identity is the static table's, keyed by
``(construction file, line)``, so the comparison never depends on
hardcoded line numbers.

Run via ``python -m repro.faults.racestress --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "RaceMonitor",
    "RaceReport",
    "SCENARIOS",
    "run_scenarios",
    "main",
]

# Real factories, captured before any patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_THIS_FILE = __file__


class RaceMonitor:
    """Per-thread held-lock stacks plus the global observed-edge set.

    Reentrant re-acquisition (an id already on this thread's stack) is
    depth-counted and records no edge — holding a lock is not ordered
    against itself.  The first acquisition site seen for each edge is
    kept as its witness.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._mu = _REAL_LOCK()
        self.edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self.acquisitions = 0
        self.unmapped: Set[Tuple[str, int]] = set()

    def _stack(self) -> List[List[object]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_unmapped(self, rel: str, lineno: int) -> None:
        with self._mu:
            self.unmapped.add((rel, lineno))

    def on_acquire(self, lock_id: str, site: Tuple[str, int]) -> None:
        stack = self._stack()
        for held in stack:
            if held[0] == lock_id:
                held[1] += 1  # reentrant: no ordering edge
                return
        new_edges = [(str(held[0]), lock_id) for held in stack]
        stack.append([lock_id, 1])
        with self._mu:
            self.acquisitions += 1
            for key in new_edges:
                self.edges.setdefault(key, site)

    def on_release(self, lock_id: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == lock_id:
                stack[i][1] -= 1
                if stack[i][1] == 0:
                    del stack[i]
                return

    def snapshot_edges(self) -> Set[Tuple[str, str]]:
        with self._mu:
            return set(self.edges)


class _TracedLock:
    """Lock wrapper reporting acquire/release to a :class:`RaceMonitor`.

    Mirrors the ``threading.Lock``/``RLock`` surface the repro tree
    uses: context manager, ``acquire(blocking, timeout)``, ``release``.
    """

    def __init__(self, monitor: RaceMonitor, lock_id: str,
                 reentrant: bool) -> None:
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._monitor = monitor
        self._lock_id = lock_id

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.on_acquire(self._lock_id, _caller_site())
        return got

    def release(self) -> None:
        self._monitor.on_release(self._lock_id)
        self._inner.release()

    def __enter__(self) -> "_TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if probe is not None else False


def _caller_site() -> Tuple[str, int]:
    """(file, line) of the nearest frame outside this module."""
    from repro.analysis.conclint.model import canonical_rel

    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:
        return ("<unknown>", 0)
    return (canonical_rel(frame.f_code.co_filename), frame.f_lineno)


class _Patcher:
    """Install/remove the traced lock factories and the module-level
    ``_POOL_LOCK`` swap.  Always restores on exit, even if a scenario
    raises."""

    def __init__(self, monitor: RaceMonitor,
                 site_index: Dict[Tuple[str, int], str]) -> None:
        self._monitor = monitor
        self._site_index = site_index
        self._saved_pool_lock = None

    def _factory(self, reentrant: bool) -> Callable[[], object]:
        monitor = self._monitor
        site_index = self._site_index
        real = _REAL_RLOCK if reentrant else _REAL_LOCK

        def make_lock():
            from repro.analysis.conclint.model import canonical_rel

            frame = sys._getframe(1)
            rel = canonical_rel(frame.f_code.co_filename)
            lock_id = site_index.get((rel, frame.f_lineno))
            if lock_id is None:
                if rel.startswith("repro/"):
                    monitor.note_unmapped(rel, frame.f_lineno)
                return real()
            return _TracedLock(monitor, lock_id, reentrant)

        return make_lock

    def __enter__(self) -> "_Patcher":
        import repro.kernels.sharded as sharded

        threading.Lock = self._factory(False)
        threading.RLock = self._factory(True)
        self._saved_pool_lock = sharded._POOL_LOCK
        sharded._POOL_LOCK = _TracedLock(
            self._monitor, "repro.kernels.sharded._POOL_LOCK", reentrant=True
        )
        return self

    def __exit__(self, *exc) -> bool:
        import repro.kernels.sharded as sharded

        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        if self._saved_pool_lock is not None:
            sharded._POOL_LOCK = self._saved_pool_lock
        return False


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _scenario_cache(quick: bool) -> None:
    """Hammer ``PlanCache`` eviction against single-flight: capacity 2,
    8 threads cycling 6 keys (one with an alternating token to force
    collisions).  Asserts no wrong-plan serve and no stuck waiter."""
    from repro.serving import PlanCache

    cache = PlanCache(2)
    keys = [f"key-{i}" for i in range(6)]
    iters = 40 if quick else 200
    errors: List[str] = []

    def worker(seed: int) -> None:
        for j in range(iters):
            key = keys[(seed + j) % len(keys)]
            # key-0 alternates tokens so eviction races a collision path
            token = f"tok-{key}" if key != "key-0" else f"tok-{j % 2}"
            payload, _hit = cache.get_or_compute(
                key, token, lambda k=key, t=token: ("plan", k, t)
            )
            if payload[1] != key or payload[2] != token:
                errors.append(f"wrong plan for {key}/{token}: {payload!r}")

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    stuck = [t for t in threads if t.is_alive()]
    if stuck:
        raise AssertionError(f"{len(stuck)} cache waiter(s) stuck")
    if errors:
        raise AssertionError(errors[0])


def _scenario_serving(quick: bool) -> None:
    """Small serving workload: two graphs, mixed tenants, stats probe,
    then shutdown — exercises the select/guard/cache lock nests."""
    import numpy as np

    from repro.core.costmodel import get_cost_models
    from repro.graphs.generators import erdos_renyi
    from repro.serving import GraniiService, ServeRequest

    cost_models = get_cost_models("h100", scale="small")
    svc = GraniiService(
        device="h100", scale="small", cost_models=cost_models,
        num_threads=2, plan_cache_size=4, state_dir="",
    )
    try:
        svc.register_model("gcn", 8, 4)
        graphs = [erdos_renyi(60, 4.0, seed=3), erdos_renyi(48, 4.0, seed=9)]
        n = 4 if quick else 12
        futures = []
        for i in range(n):
            graph = graphs[i % 2]
            feats = np.random.default_rng(i).standard_normal(
                (graph.num_nodes, 8)
            )
            futures.append(svc.submit(ServeRequest(
                tenant=f"tenant-{i % 3}", model="gcn",
                graph=graph, feats=feats,
            )))
        for fut in futures:
            fut.result(timeout=300.0)
        svc.stats()
    finally:
        svc.shutdown(save=False)


def _scenario_sharded(quick: bool) -> None:
    """Process-parallel sharded SpMM plus pool drain — exercises the
    ``_POOL_LOCK`` region including its reentrant drain path."""
    import numpy as np

    from repro.graphs import erdos_renyi
    from repro.kernels.sharded import drain_pool, gspmm_sharded

    graph = erdos_renyi(80, 4.0, seed=5)
    x = np.random.default_rng(0).standard_normal((graph.num_nodes, 4))
    for _ in range(1 if quick else 3):
        gspmm_sharded(graph.adj, x, num_workers=2)
    drain_pool()


SCENARIOS: Dict[str, Callable[[bool], None]] = {
    "cache": _scenario_cache,
    "serving": _scenario_serving,
    "sharded": _scenario_sharded,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class RaceReport:
    """Outcome of one stress run across scenarios."""

    static_edges: Set[Tuple[str, str]]
    observed: Dict[Tuple[str, str], Tuple[str, int]]
    per_scenario: Dict[str, List[Tuple[str, str]]]
    acquisitions: int
    unmapped: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def unexplained(self) -> List[Tuple[str, str]]:
        return sorted(e for e in self.observed if e not in self.static_edges)

    @property
    def ok(self) -> bool:
        return not self.unexplained

    def to_dict(self) -> dict:
        return {
            "static_edges": sorted(f"{a} -> {b}" for a, b in self.static_edges),
            "observed_edges": {
                f"{a} -> {b}": f"{site[0]}:{site[1]}"
                for (a, b), site in sorted(self.observed.items())
            },
            "per_scenario": {
                name: sorted(f"{a} -> {b}" for a, b in edges)
                for name, edges in self.per_scenario.items()
            },
            "unexplained": [f"{a} -> {b}" for a, b in self.unexplained],
            "acquisitions": self.acquisitions,
            "unmapped_sites": sorted(
                f"{rel}:{line}" for rel, line in self.unmapped
            ),
        }


def run_scenarios(
    names: Optional[List[str]] = None, quick: bool = True
) -> RaceReport:
    """Patch, drive the named scenarios under one monitor, compare
    observed lock-order edges against the static graph."""
    from repro.analysis.conclint import static_lock_graph

    graph = static_lock_graph()
    static_edges = set(graph.edges)
    site_index = graph.site_index()
    monitor = RaceMonitor()
    per_scenario: Dict[str, List[Tuple[str, str]]] = {}
    with _Patcher(monitor, site_index):
        for name in names or sorted(SCENARIOS):
            before = monitor.snapshot_edges()
            SCENARIOS[name](quick)
            per_scenario[name] = sorted(monitor.snapshot_edges() - before)
    return RaceReport(
        static_edges=static_edges,
        observed=dict(monitor.edges),
        per_scenario=per_scenario,
        acquisitions=monitor.acquisitions,
        unmapped=set(monitor.unmapped),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.racestress",
        description="Assert observed lock-order edges are a subset of "
        "the static conclint graph",
    )
    parser.add_argument(
        "--scenarios", default=",".join(sorted(SCENARIOS)),
        help="comma-separated subset of: " + ", ".join(sorted(SCENARIOS)),
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller thread counts / iteration budgets")
    parser.add_argument("--json", default="", help="write the report here")
    args = parser.parse_args(argv)

    names = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    unknown = [s for s in names if s not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}")

    report = run_scenarios(names, quick=args.quick)
    for (src, dst), site in sorted(report.observed.items()):
        status = "ok" if (src, dst) in report.static_edges else "UNEXPLAINED"
        print(f"  edge {src} -> {dst}  [{site[0]}:{site[1]}]  {status}")
    print(
        f"racestress: {report.acquisitions} traced acquisition(s), "
        f"{len(report.observed)} distinct edge(s), "
        f"{len(report.unexplained)} unexplained"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
