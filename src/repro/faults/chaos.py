"""Chaos driver: the guarded runtime under systematic fault schedules.

Runs every model in the zoo under a battery of deterministic fault
schedules (kernel crashes, flaky kernels, silent corruption, stalls,
over-allocation, poisoned inputs, starved memory budgets) and verifies
the robustness contract end to end:

- every run terminates in either the **correct result** — bit-for-bit
  the guarded model's clean output matches the unoptimized baseline,
  with any failures absorbed as recorded demotions — or a **structured**
  :class:`~repro.errors.GraniiError`;
- **zero** raw errors (``FaultInjected``, ``IndexError``, NumPy
  broadcast errors, ...) escape a guarded executor.

Numerics are checked on a final *clean* call (faults disabled): all
surviving plans compute the same function, so whatever rung the ladder
landed on must reproduce the baseline.  Exit status is non-zero if any
schedule escapes or mismatches, which makes this directly usable as a CI
job::

    PYTHONPATH=src python -m repro.faults.chaos --seed 0 --quick
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..core.costmodel import get_cost_models
from ..core.runtime import GraniiEngine
from ..errors import GraniiError, GraniiInputError
from ..graphs.generators import erdos_renyi
from ..models import MODEL_NAMES, build_layer
from . import FaultPlan, fault_injection

__all__ = ["main", "run_case", "FAULT_SCHEDULES"]

# name -> (fault rules, extra env overrides for the case)
FAULT_SCHEDULES: List[Tuple[str, str, Dict[str, str]]] = [
    ("spmm-crash", "spmm:raise:1.0,spmm_unweighted:raise:1.0", {}),
    ("spmm-flaky", "spmm:raise:0.5,spmm_unweighted:raise:0.5", {}),
    ("any-crash", "*:raise:0.3", {}),
    ("corrupt", "spmm:corrupt:1.0,spmm_unweighted:corrupt:1.0", {}),
    ("stall", "spmm:slow:1.0:0.4,spmm_unweighted:slow:1.0:0.4",
     {"REPRO_DEADLINE_FLOOR_MS": "150"}),
    ("overalloc", "spmm:overalloc:1.0,spmm_unweighted:overalloc:1.0", {}),
    ("mem-starved", "", {"REPRO_MEM_BUDGET_MB": "0.01"}),
]
QUICK_SCHEDULES = ("spmm-crash", "any-crash", "corrupt", "mem-starved")
QUICK_MODELS = ("gcn", "gat")

IN_SIZE, OUT_SIZE = 16, 8


def _fresh_engine(cost_models) -> GraniiEngine:
    return GraniiEngine(
        device="cpu",
        system="dgl",
        cost_models=cost_models,
        spmm_strategy="auto",
        verify_plans=True,  # the only defense against silent corruption
        guarded=True,
    )


def run_case(
    model_name: str,
    schedule: str,
    faults: str,
    env: Dict[str, str],
    graph,
    feats: np.ndarray,
    reference: np.ndarray,
    cost_models,
    seed: int,
    runs: int,
) -> Dict[str, object]:
    """One (model, fault schedule) chaos run; returns a result record.

    Outcomes: ``ok_plan`` (correct, no demotions), ``ok_fallback``
    (correct via recorded demotions), ``structured_error`` (a
    :class:`GraniiError` surfaced), ``mismatch`` / ``raw_escape``
    (contract violations).
    """
    model = build_layer(
        model_name, IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0)
    )
    restore = config.override_env(env)
    record: Dict[str, object] = {
        "model": model_name,
        "schedule": schedule,
        "seed": seed,
    }
    t0 = time.perf_counter()
    try:
        engine = _fresh_engine(cost_models)
        report = engine.optimize(model, graph, feats)
        selection = report.selections[0]
        plan = FaultPlan.from_string(faults, seed=seed)
        with fault_injection(plan):
            for _ in range(runs):
                model(graph, feats)
        # clean verification call: faults off, whatever rung survived
        # must reproduce the baseline (all plans compute the same function)
        out = model(graph, feats)
        out_data = np.asarray(getattr(out, "data", out))
        if np.allclose(out_data, reference, rtol=1e-4, atol=1e-6):
            record["outcome"] = (
                "ok_fallback" if selection.demotions else "ok_plan"
            )
        else:
            record["outcome"] = "mismatch"
            record["max_abs_err"] = float(
                np.max(np.abs(out_data - reference))
            )
        record["demotions"] = [d.describe() for d in selection.demotions]
        record["faults_fired"] = int(sum(plan.fired.values()))
        record["breakers"] = selection.breaker_state
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - the contract violation bucket
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        restore()
    record["seconds"] = round(time.perf_counter() - t0, 3)
    return record


def _input_cases(graph, feats, cost_models, seed: int) -> List[Dict[str, object]]:
    """Admission-gate scenarios: malformed inputs must raise structured."""
    records = []
    for name, mutate in (
        ("input-nan", "nan"),
        ("input-width", "width"),
        ("input-edges", "edges"),
    ):
        model = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
        record: Dict[str, object] = {
            "model": "gcn", "schedule": name, "seed": seed,
        }
        try:
            engine = _fresh_engine(cost_models)
            engine.optimize(model, graph, feats)
            if mutate == "nan":
                bad = feats.copy()
                bad[3, 2] = np.nan
                model(graph, bad)
            elif mutate == "width":
                model(graph, feats[:, : IN_SIZE // 2].copy())
            else:
                mp = model.as_mp_graph(graph)
                saved = int(mp.adj.indices[0])
                mp.adj.indices[0] = graph.num_nodes + 7
                try:
                    model(graph, feats)
                finally:
                    mp.adj.indices[0] = saved
            record["outcome"] = "missed_admission"  # no error raised
        except GraniiInputError as exc:
            record["outcome"] = "ok_structured"
            record["error"] = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001
            record["outcome"] = "raw_escape"
            record["error"] = f"{type(exc).__name__}: {exc}"
        records.append(record)
    return records


def _sharded_recovery_kernel_case(
    graph, feats, seed: int, schedule: str, arm, env: Dict[str, str]
) -> Dict[str, object]:
    """Kernel-level recovery proof: arm a pool fault mid-call and demand
    the sharded result stay **bitwise identical** to ``row_segment``.

    This is the strongest form of the self-healing contract — not only
    does the call complete after the worker is killed (or hung), the
    resubmitted shards reproduce the exact bit pattern, because shard
    writes are disjoint and idempotent.
    """
    from ..kernels.sharded import gspmm_sharded, pool_health, shutdown_pool
    from ..kernels.spmm import gspmm

    record: Dict[str, object] = {
        "model": "kernel", "schedule": schedule, "seed": seed,
    }
    t0 = time.perf_counter()
    old_env = {k: os.environ.get(k) for k in env}  # lint: allow(env-outside-config)
    os.environ.update(env)  # lint: allow(env-outside-config)
    try:
        adj = graph.adj.with_values(
            np.random.default_rng(seed).random(graph.adj.nnz) + 0.1
        )
        reference = gspmm(adj, feats, strategy="row_segment")
        gspmm_sharded(adj, feats, num_workers=2)  # warm the pool
        arm()
        out = gspmm_sharded(adj, feats, num_workers=2)
        health = pool_health()
        if not np.array_equal(out, reference):
            record["outcome"] = "mismatch"
            record["error"] = "healed output is not bitwise-equal to row_segment"
        elif int(health.get("restarts", 0)) < 1:
            record["outcome"] = "mismatch"
            record["error"] = f"fault did not exercise a respawn: {health}"
        else:
            record["outcome"] = "ok_healed"
            record["restarts"] = int(health["restarts"])
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        shutdown_pool()
        for key, value in old_env.items():
            if value is None:
                os.environ.pop(key, None)  # lint: allow(env-outside-config)
            else:
                os.environ[key] = value  # lint: allow(env-outside-config)
    record["seconds"] = round(time.perf_counter() - t0, 3)
    return record


def _sharded_fault_cases(
    graph, feats, cost_models, seed: int
) -> List[Dict[str, object]]:
    """Pool-fault scenarios through the full guarded engine + the
    kernel-level bitwise recovery proofs.

    Contracts: ``kill_worker`` and ``hang_worker`` are *absorbed* by the
    self-healing pool — the call completes, output bitwise-equal to
    ``row_segment``, no fallback-ladder demotion.  ``shm_exhaustion``
    cannot be healed by respawning (the host is out of segment space),
    so its contract is the structured one: the ladder demotes to an
    in-process rung and the result still matches the baseline.
    """
    from ..kernels.sharded import (
        request_shm_exhaustion,
        request_worker_hang,
        request_worker_kill,
        shutdown_pool,
    )

    records = [
        _sharded_recovery_kernel_case(
            graph, feats, seed, "kill-bitwise", request_worker_kill, {},
        ),
        _sharded_recovery_kernel_case(
            graph, feats, seed, "hang-bitwise", request_worker_hang,
            {"REPRO_SHARD_HEARTBEAT_S": "0.5"},
        ),
    ]

    # engine-level: a worker death during a guarded layer call is healed
    # in place — same answer, NO demotion recorded
    model = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    baseline = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    reference = np.asarray(baseline(graph, feats).data)
    record: Dict[str, object] = {
        "model": "gcn", "schedule": "worker-kill", "seed": seed,
    }
    t0 = time.perf_counter()
    try:
        engine = GraniiEngine(
            device="cpu",
            system="dgl",
            cost_models=cost_models,
            spmm_strategy="spmm_sharded",
            num_workers=2,
            verify_plans=True,
            guarded=True,
        )
        report = engine.optimize(model, graph, feats)
        selection = report.selections[0]
        plan = FaultPlan.from_string("spmm:kill_worker:1.0", seed=seed)
        with fault_injection(plan):
            out = model(graph, feats)
        out_data = np.asarray(getattr(out, "data", out))
        if not np.allclose(out_data, reference, rtol=1e-4, atol=1e-6):
            record["outcome"] = "mismatch"
            record["max_abs_err"] = float(np.max(np.abs(out_data - reference)))
        elif selection.demotions:
            record["outcome"] = "mismatch"
            record["error"] = (
                "worker kill should be healed by the pool, not demoted: "
                + "; ".join(d.describe() for d in selection.demotions)
            )
        else:
            record["outcome"] = "ok_healed"
        record["demotions"] = [d.describe() for d in selection.demotions]
        record["faults_fired"] = int(sum(plan.fired.values()))
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        shutdown_pool()
    record["seconds"] = round(time.perf_counter() - t0, 3)
    records.append(record)

    # shm exhaustion: unhealable — the ladder must demote, result correct
    model = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    record = {"model": "gcn", "schedule": "shm-exhaust", "seed": seed}
    t0 = time.perf_counter()
    try:
        engine = GraniiEngine(
            device="cpu",
            system="dgl",
            cost_models=cost_models,
            spmm_strategy="spmm_sharded",
            num_workers=2,
            guarded=True,
        )
        report = engine.optimize(model, graph, feats)
        selection = report.selections[0]
        plan = FaultPlan.from_string("spmm:shm_exhaustion:1.0", seed=seed)
        with fault_injection(plan):
            out = model(graph, feats)
        out_data = np.asarray(getattr(out, "data", out))
        if not np.allclose(out_data, reference, rtol=1e-4, atol=1e-6):
            record["outcome"] = "mismatch"
            record["max_abs_err"] = float(np.max(np.abs(out_data - reference)))
        elif any(
            "spmm_sharded" in d.from_label for d in selection.demotions
        ):
            record["outcome"] = "ok_fallback"
        else:
            record["outcome"] = "mismatch"
            record["error"] = (
                "shm exhaustion produced no recorded demotion off "
                "spmm_sharded"
            )
        record["demotions"] = [d.describe() for d in selection.demotions]
        record["faults_fired"] = int(sum(plan.fired.values()))
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        shutdown_pool()
    record["seconds"] = round(time.perf_counter() - t0, 3)
    records.append(record)
    return records


BAD_OUTCOMES = ("raw_escape", "mismatch", "missed_admission")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--seed", type=int, default=0, help="fault RNG seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced model/schedule matrix (CI smoke)",
    )
    parser.add_argument(
        "--models", default="", help="comma-separated model subset"
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="faulted calls per case"
    )
    parser.add_argument(
        "--nodes", type=int, default=300, help="synthetic graph size"
    )
    parser.add_argument("--output", default="", help="write results JSON here")
    args = parser.parse_args(argv)

    models = [m for m in args.models.split(",") if m] or list(
        QUICK_MODELS if args.quick else MODEL_NAMES
    )
    schedules = [
        s for s in FAULT_SCHEDULES
        if not args.quick or s[0] in QUICK_SCHEDULES
    ]

    graph = erdos_renyi(args.nodes, avg_degree=8, seed=7)
    rng = np.random.default_rng(args.seed)
    feats = rng.standard_normal((graph.num_nodes, IN_SIZE))
    cost_models = get_cost_models("cpu")

    results: List[Dict[str, object]] = []
    for model_name in models:
        baseline = build_layer(
            model_name, IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0)
        )
        reference = np.asarray(baseline(graph, feats).data)
        for schedule, faults, env in schedules:
            record = run_case(
                model_name, schedule, faults, env, graph, feats,
                reference, cost_models, args.seed, args.runs,
            )
            results.append(record)
            print(
                f"{record['model']:>6} | {record['schedule']:<12} -> "
                f"{record['outcome']:<16} "
                f"(demotions={len(record.get('demotions', []))}, "
                f"faults={record.get('faults_fired', 0)}, "
                f"{record['seconds']}s)"
            )
    for record in _input_cases(graph, feats, cost_models, args.seed):
        results.append(record)
        print(
            f"{record['model']:>6} | {record['schedule']:<12} -> "
            f"{record['outcome']}"
        )
    for record in _sharded_fault_cases(graph, feats, cost_models, args.seed):
        results.append(record)
        print(
            f"{record['model']:>6} | {record['schedule']:<12} -> "
            f"{record['outcome']:<16} "
            f"(demotions={len(record.get('demotions', []))}, "
            f"{record['seconds']}s)"
        )

    counts: Dict[str, int] = {}
    for record in results:
        counts[str(record["outcome"])] = counts.get(str(record["outcome"]), 0) + 1
    bad = [r for r in results if r["outcome"] in BAD_OUTCOMES]
    print(
        f"\n{len(results)} cases: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    if bad:
        print(f"CONTRACT VIOLATIONS ({len(bad)}):")
        for record in bad:
            print(f"  {record['model']}/{record['schedule']}: "
                  f"{record.get('error', record['outcome'])}")
    else:
        print("contract held: every case recovered or raised structured.")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
