"""Chaos driver: the guarded runtime under systematic fault schedules.

Runs every model in the zoo under a battery of deterministic fault
schedules (kernel crashes, flaky kernels, silent corruption, stalls,
over-allocation, poisoned inputs, starved memory budgets) and verifies
the robustness contract end to end:

- every run terminates in either the **correct result** — bit-for-bit
  the guarded model's clean output matches the unoptimized baseline,
  with any failures absorbed as recorded demotions — or a **structured**
  :class:`~repro.errors.GraniiError`;
- **zero** raw errors (``FaultInjected``, ``IndexError``, NumPy
  broadcast errors, ...) escape a guarded executor.

Numerics are checked on a final *clean* call (faults disabled): all
surviving plans compute the same function, so whatever rung the ladder
landed on must reproduce the baseline.  Exit status is non-zero if any
schedule escapes or mismatches, which makes this directly usable as a CI
job::

    PYTHONPATH=src python -m repro.faults.chaos --seed 0 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..core.costmodel import get_cost_models
from ..core.runtime import GraniiEngine
from ..errors import GraniiError, GraniiInputError
from ..graphs.generators import erdos_renyi
from ..models import MODEL_NAMES, build_layer
from . import FaultPlan, fault_injection

__all__ = ["main", "run_case", "FAULT_SCHEDULES"]

# name -> (fault rules, extra env overrides for the case)
FAULT_SCHEDULES: List[Tuple[str, str, Dict[str, str]]] = [
    ("spmm-crash", "spmm:raise:1.0,spmm_unweighted:raise:1.0", {}),
    ("spmm-flaky", "spmm:raise:0.5,spmm_unweighted:raise:0.5", {}),
    ("any-crash", "*:raise:0.3", {}),
    ("corrupt", "spmm:corrupt:1.0,spmm_unweighted:corrupt:1.0", {}),
    ("stall", "spmm:slow:1.0:0.4,spmm_unweighted:slow:1.0:0.4",
     {"REPRO_DEADLINE_FLOOR_MS": "150"}),
    ("overalloc", "spmm:overalloc:1.0,spmm_unweighted:overalloc:1.0", {}),
    ("mem-starved", "", {"REPRO_MEM_BUDGET_MB": "0.01"}),
]
QUICK_SCHEDULES = ("spmm-crash", "any-crash", "corrupt", "mem-starved")
QUICK_MODELS = ("gcn", "gat")

IN_SIZE, OUT_SIZE = 16, 8


def _fresh_engine(cost_models) -> GraniiEngine:
    return GraniiEngine(
        device="cpu",
        system="dgl",
        cost_models=cost_models,
        spmm_strategy="auto",
        verify_plans=True,  # the only defense against silent corruption
        guarded=True,
    )


def run_case(
    model_name: str,
    schedule: str,
    faults: str,
    env: Dict[str, str],
    graph,
    feats: np.ndarray,
    reference: np.ndarray,
    cost_models,
    seed: int,
    runs: int,
) -> Dict[str, object]:
    """One (model, fault schedule) chaos run; returns a result record.

    Outcomes: ``ok_plan`` (correct, no demotions), ``ok_fallback``
    (correct via recorded demotions), ``structured_error`` (a
    :class:`GraniiError` surfaced), ``mismatch`` / ``raw_escape``
    (contract violations).
    """
    model = build_layer(
        model_name, IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0)
    )
    restore = config.override_env(env)
    record: Dict[str, object] = {
        "model": model_name,
        "schedule": schedule,
        "seed": seed,
    }
    t0 = time.perf_counter()
    try:
        engine = _fresh_engine(cost_models)
        report = engine.optimize(model, graph, feats)
        selection = report.selections[0]
        plan = FaultPlan.from_string(faults, seed=seed)
        with fault_injection(plan):
            for _ in range(runs):
                model(graph, feats)
        # clean verification call: faults off, whatever rung survived
        # must reproduce the baseline (all plans compute the same function)
        out = model(graph, feats)
        out_data = np.asarray(getattr(out, "data", out))
        if np.allclose(out_data, reference, rtol=1e-4, atol=1e-6):
            record["outcome"] = (
                "ok_fallback" if selection.demotions else "ok_plan"
            )
        else:
            record["outcome"] = "mismatch"
            record["max_abs_err"] = float(
                np.max(np.abs(out_data - reference))
            )
        record["demotions"] = [d.describe() for d in selection.demotions]
        record["faults_fired"] = int(sum(plan.fired.values()))
        record["breakers"] = selection.breaker_state
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - the contract violation bucket
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        restore()
    record["seconds"] = round(time.perf_counter() - t0, 3)
    return record


def _input_cases(graph, feats, cost_models, seed: int) -> List[Dict[str, object]]:
    """Admission-gate scenarios: malformed inputs must raise structured."""
    records = []
    for name, mutate in (
        ("input-nan", "nan"),
        ("input-width", "width"),
        ("input-edges", "edges"),
    ):
        model = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
        record: Dict[str, object] = {
            "model": "gcn", "schedule": name, "seed": seed,
        }
        try:
            engine = _fresh_engine(cost_models)
            engine.optimize(model, graph, feats)
            if mutate == "nan":
                bad = feats.copy()
                bad[3, 2] = np.nan
                model(graph, bad)
            elif mutate == "width":
                model(graph, feats[:, : IN_SIZE // 2].copy())
            else:
                mp = model.as_mp_graph(graph)
                saved = int(mp.adj.indices[0])
                mp.adj.indices[0] = graph.num_nodes + 7
                try:
                    model(graph, feats)
                finally:
                    mp.adj.indices[0] = saved
            record["outcome"] = "missed_admission"  # no error raised
        except GraniiInputError as exc:
            record["outcome"] = "ok_structured"
            record["error"] = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001
            record["outcome"] = "raw_escape"
            record["error"] = f"{type(exc).__name__}: {exc}"
        records.append(record)
    return records


def _sharded_kill_case(graph, feats, cost_models, seed: int) -> Dict[str, object]:
    """Worker-death scenario: SIGKILL a sharded worker mid-shard.

    The engine is pinned to ``spmm_sharded``; the ``kill_worker`` fault
    arms a one-shot SIGKILL that fires inside the first faulted
    dispatch.  The contract: the parent detects the dead pipe (no hang),
    the ladder demotes to the in-process ``blocked`` rung with a
    recorded demotion, and the clean call still matches the baseline.
    """
    from ..kernels.sharded import shutdown_pool

    model = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    baseline = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    reference = np.asarray(baseline(graph, feats).data)
    record: Dict[str, object] = {
        "model": "gcn", "schedule": "worker-kill", "seed": seed,
    }
    t0 = time.perf_counter()
    try:
        engine = GraniiEngine(
            device="cpu",
            system="dgl",
            cost_models=cost_models,
            spmm_strategy="spmm_sharded",
            num_workers=2,
            verify_plans=True,
            guarded=True,
        )
        report = engine.optimize(model, graph, feats)
        selection = report.selections[0]
        plan = FaultPlan.from_string("spmm:kill_worker:1.0", seed=seed)
        with fault_injection(plan):
            model(graph, feats)
        out = model(graph, feats)
        out_data = np.asarray(getattr(out, "data", out))
        demoted_to_blocked = any(
            "spmm_sharded" in d.from_label and "@blocked" in d.to_label
            for d in selection.demotions
        )
        if not np.allclose(out_data, reference, rtol=1e-4, atol=1e-6):
            record["outcome"] = "mismatch"
            record["max_abs_err"] = float(np.max(np.abs(out_data - reference)))
        elif demoted_to_blocked:
            record["outcome"] = "ok_fallback"
        elif selection.demotions:
            record["outcome"] = "mismatch"
            record["error"] = (
                "worker kill demoted, but not from spmm_sharded to blocked: "
                + "; ".join(d.describe() for d in selection.demotions)
            )
        else:
            record["outcome"] = "mismatch"
            record["error"] = "worker kill produced no recorded demotion"
        record["demotions"] = [d.describe() for d in selection.demotions]
        record["faults_fired"] = int(sum(plan.fired.values()))
    except GraniiError as exc:
        record["outcome"] = "structured_error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001
        record["outcome"] = "raw_escape"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        shutdown_pool()
    record["seconds"] = round(time.perf_counter() - t0, 3)
    return record


BAD_OUTCOMES = ("raw_escape", "mismatch", "missed_admission")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--seed", type=int, default=0, help="fault RNG seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced model/schedule matrix (CI smoke)",
    )
    parser.add_argument(
        "--models", default="", help="comma-separated model subset"
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="faulted calls per case"
    )
    parser.add_argument(
        "--nodes", type=int, default=300, help="synthetic graph size"
    )
    parser.add_argument("--output", default="", help="write results JSON here")
    args = parser.parse_args(argv)

    models = [m for m in args.models.split(",") if m] or list(
        QUICK_MODELS if args.quick else MODEL_NAMES
    )
    schedules = [
        s for s in FAULT_SCHEDULES
        if not args.quick or s[0] in QUICK_SCHEDULES
    ]

    graph = erdos_renyi(args.nodes, avg_degree=8, seed=7)
    rng = np.random.default_rng(args.seed)
    feats = rng.standard_normal((graph.num_nodes, IN_SIZE))
    cost_models = get_cost_models("cpu")

    results: List[Dict[str, object]] = []
    for model_name in models:
        baseline = build_layer(
            model_name, IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0)
        )
        reference = np.asarray(baseline(graph, feats).data)
        for schedule, faults, env in schedules:
            record = run_case(
                model_name, schedule, faults, env, graph, feats,
                reference, cost_models, args.seed, args.runs,
            )
            results.append(record)
            print(
                f"{record['model']:>6} | {record['schedule']:<12} -> "
                f"{record['outcome']:<16} "
                f"(demotions={len(record.get('demotions', []))}, "
                f"faults={record.get('faults_fired', 0)}, "
                f"{record['seconds']}s)"
            )
    for record in _input_cases(graph, feats, cost_models, args.seed):
        results.append(record)
        print(
            f"{record['model']:>6} | {record['schedule']:<12} -> "
            f"{record['outcome']}"
        )
    record = _sharded_kill_case(graph, feats, cost_models, args.seed)
    results.append(record)
    print(
        f"{record['model']:>6} | {record['schedule']:<12} -> "
        f"{record['outcome']:<16} "
        f"(demotions={len(record.get('demotions', []))}, "
        f"{record['seconds']}s)"
    )

    counts: Dict[str, int] = {}
    for record in results:
        counts[str(record["outcome"])] = counts.get(str(record["outcome"]), 0) + 1
    bad = [r for r in results if r["outcome"] in BAD_OUTCOMES]
    print(
        f"\n{len(results)} cases: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    if bad:
        print(f"CONTRACT VIOLATIONS ({len(bad)}):")
        for record in bad:
            print(f"  {record['model']}/{record['schedule']}: "
                  f"{record.get('error', record['outcome'])}")
    else:
        print("contract held: every case recovered or raised structured.")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
