"""Loss functions for node-classification training."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .ops import log_softmax
from .tensor import Tensor

__all__ = ["cross_entropy", "nll_loss", "mse_loss"]


def nll_loss(log_probs: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood of integer labels, averaged over (masked) rows."""
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.data.shape[0]
    if labels.shape != (n,):
        raise ValueError("labels must be one integer per row")
    rows = np.arange(n) if mask is None else np.flatnonzero(mask)
    if rows.size == 0:
        raise ValueError("loss mask selects no rows")
    picked = log_probs[(rows, labels[rows])]
    return -picked.sum() * (1.0 / rows.size)


def cross_entropy(logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), labels, mask)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).sum() * (1.0 / pred.data.size)
