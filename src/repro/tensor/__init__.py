"""NumPy-backed autograd engine and NN substrate (PyTorch stand-in)."""

from . import init
from .losses import cross_entropy, mse_loss, nll_loss
from .nn import Linear, Module, Parameter
from .ops import concat, dropout, elu, exp, leaky_relu, log, log_softmax, relu, sigmoid
from .optim import SGD, Adam, Optimizer
from .sparse_ops import (
    edge_softmax,
    gather_rows,
    gsddmm_add_uv,
    row_broadcast,
    sddmm_dot,
    spmm,
    spmm_edge,
)
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Tensor",
    "concat",
    "cross_entropy",
    "dropout",
    "edge_softmax",
    "elu",
    "exp",
    "gather_rows",
    "gsddmm_add_uv",
    "init",
    "is_grad_enabled",
    "leaky_relu",
    "log",
    "log_softmax",
    "mse_loss",
    "nll_loss",
    "no_grad",
    "relu",
    "row_broadcast",
    "sddmm_dot",
    "sigmoid",
    "spmm",
    "spmm_edge",
]
