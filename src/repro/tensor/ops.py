"""Dense autograd operations beyond Tensor's operator overloads."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "exp",
    "log",
    "sigmoid",
    "log_softmax",
    "dropout",
    "concat",
]


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * mask)

    return Tensor.make(np.where(mask, x.data, 0.0), (x,), backward, "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * np.where(mask, 1.0, negative_slope))

    return Tensor.make(
        np.where(mask, x.data, negative_slope * x.data), (x,), backward, "leaky_relu"
    )


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, neg)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * np.where(x.data > 0, 1.0, neg + alpha))

    return Tensor.make(out_data, (x,), backward, "elu")


def exp(x: Tensor) -> Tensor:
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * out_data)

    return Tensor.make(out_data, (x,), backward, "exp")


def log(x: Tensor) -> Tensor:
    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad / x.data)

    return Tensor.make(np.log(x.data), (x,), backward, "log")


def sigmoid(x: Tensor) -> Tensor:
    out_data = np.empty_like(x.data)
    pos = x.data >= 0
    out_data[pos] = 1.0 / (1.0 + np.exp(-x.data[pos]))
    ex = np.exp(x.data[~pos])
    out_data[~pos] = ex / (1.0 + ex)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor.make(out_data, (x,), backward, "sigmoid")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return Tensor.make(out_data, (x,), backward, "log_softmax")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * mask)

    return Tensor.make(x.data * mask, (x,), backward, "dropout")


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis (used by TAGCN's hop stack)."""
    tensors = list(tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t.accumulate_grad(grad[tuple(slicer)])

    return Tensor.make(
        np.concatenate([t.data for t in tensors], axis=axis),
        tuple(tensors),
        backward,
        "concat",
    )
