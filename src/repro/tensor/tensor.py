"""A NumPy-backed reverse-mode autograd engine.

This is the reproduction's stand-in for PyTorch: the smallest tensor
library that supports training the paper's five GNN models (GCN, GIN, SGC,
TAGCN, GAT).  Forward passes build a DAG of :class:`Tensor` nodes; calling
:meth:`Tensor.backward` on a scalar loss runs a topological-order sweep of
the recorded backward closures.

Only the dense operations live here.  The sparse operations that give GNNs
their structure (SpMM over a fixed adjacency, SDDMM, edge softmax) are in
:mod:`repro.tensor.sparse_ops` so the dependency points from sparse to
dense, never back.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[0]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum a broadcasted gradient back down to ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph wrapping a ``float64`` ndarray."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        op: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self.op = op

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: Union["Tensor", float, int, np.ndarray]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a result tensor, recording the backward closure when any
        parent requires grad and grad mode is on."""
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs, _parents=parents if needs else (), op=op)
        if needs:
            out._backward = backward
        return out

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Shape & basics
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag}, op={self.op!r})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad)
            other.accumulate_grad(grad)

        return Tensor.make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(-grad)

        return Tensor.make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * other.data)
            other.accumulate_grad(grad * self.data)

        return Tensor.make(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / other.data)
            other.accumulate_grad(-grad * self.data / (other.data ** 2))

        return Tensor.make(self.data / other.data, (self, other), backward, "div")

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad @ other.data.T)
            other.accumulate_grad(self.data.T @ grad)

        return Tensor.make(self.data @ other.data, (self, other), backward, "matmul")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.make(self.data ** exponent, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Reductions & reshapes
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self.accumulate_grad(np.broadcast_to(g, self.data.shape))

        return Tensor.make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward, "sum"
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.reshape(self.data.shape))

        return Tensor.make(self.data.reshape(shape), (self,), backward, "reshape")

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.T)

        return Tensor.make(self.data.T, (self,), backward, "transpose")

    def __getitem__(self, idx) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self.accumulate_grad(full)

        return Tensor.make(self.data[idx], (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
