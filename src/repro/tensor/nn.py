"""Neural-network module substrate: parameters, modules, linear layers."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .init import xavier_uniform
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear"]


class Parameter(Tensor):
    """A tensor flagged as a learnable parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter registration and train/eval mode.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; ``parameters()`` discovers them recursively.
    """

    def __init__(self) -> None:
        self._training = True

    # -- parameter discovery -------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in sorted(vars(self).items()):
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- train / eval ----------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        self._training = True
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train()
        return self

    def eval(self) -> "Module":
        self._training = False
        for value in vars(self).values():
            if isinstance(value, Module):
                value.eval()
        return self

    # -- state dict (for reproducible experiments) ------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            params[name].data = np.asarray(value, dtype=np.float64).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """A dense layer ``X @ W (+ b)`` — the GNN update step's GEMM."""

    def __init__(
        self,
        in_size: int,
        out_size: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(xavier_uniform(rng, in_size, out_size))
        self.bias = Parameter(np.zeros(out_size)) if bias else None
        self.in_size = in_size
        self.out_size = out_size

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_size} -> {self.out_size}, bias={self.bias is not None})"
