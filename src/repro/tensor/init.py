"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in × fan_out) matrix."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int, gain: float = 1.0) -> np.ndarray:
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape)
