"""Sparse autograd operations over a fixed adjacency pattern.

GNN training differentiates through aggregation, attention scoring and
edge softmax, but never through the adjacency *pattern* itself.  Each op
here therefore takes a constant :class:`~repro.sparse.csr.CSRMatrix`
pattern plus dense/edge-value :class:`~repro.tensor.tensor.Tensor`
operands.

Edge-value tensors are 1-D tensors aligned with the pattern's CSR order —
the autograd counterpart of a weighted CSR matrix that shares the pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import gspmm, get_semiring, segment_sum
from ..kernels import edge_softmax as edge_softmax_kernel
from ..sparse import CSRMatrix
from .tensor import Tensor

__all__ = [
    "spmm",
    "spmm_edge",
    "sddmm_dot",
    "gsddmm_add_uv",
    "edge_softmax",
    "row_broadcast",
    "gather_rows",
]


def spmm(
    adj: CSRMatrix,
    x: Tensor,
    *,
    strategy: Optional[str] = None,
    block_nnz: Optional[int] = None,
    num_threads: Optional[int] = None,
    num_workers: Optional[int] = None,
) -> Tensor:
    """``A @ X`` with a constant (possibly weighted) adjacency.

    Backward: ``dX = A^T @ dY``.  The strategy knobs tune the *forward*
    aggregation only (every :data:`~repro.kernels.spmm.SPMM_STRATEGIES`
    member is bitwise-identical, so the executor's pinned strategy is safe
    under autograd); the backward SpMM keeps the reference kernel.
    """
    adj_t = adj.transpose()
    semiring = get_semiring("sum", "mul" if adj.is_weighted else "copy_rhs")

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(gspmm(adj_t, grad, semiring))

    out_data = gspmm(
        adj,
        x.data,
        semiring,
        strategy=strategy,
        block_nnz=block_nnz,
        num_threads=num_threads,
        num_workers=num_workers,
    )
    return Tensor.make(out_data, (x,), backward, "spmm")


def spmm_edge(
    pattern: CSRMatrix,
    edge_vals: Tensor,
    x: Tensor,
    *,
    strategy: Optional[str] = None,
    block_nnz: Optional[int] = None,
    num_threads: Optional[int] = None,
    num_workers: Optional[int] = None,
) -> Tensor:
    """``A(e) @ X`` where the adjacency values are themselves a tensor.

    This is GAT's aggregation with learned attention values.  Backward:
    ``dE_ij = dY[i] · X[j]`` (an SDDMM) and ``dX = A(e)^T @ dY``.  As in
    :func:`spmm`, the strategy knobs apply to the forward pass only.
    """
    if edge_vals.data.shape != (pattern.nnz,):
        raise ValueError("edge values must align with the pattern's nnz")
    weighted = pattern.with_values(edge_vals.data)
    weighted_t = weighted.transpose()
    rows, cols = pattern.row_ids(), pattern.indices

    def backward(grad: np.ndarray) -> None:
        edge_vals.accumulate_grad(np.einsum("ek,ek->e", grad[rows], x.data[cols]))
        x.accumulate_grad(gspmm(weighted_t, grad))

    out_data = gspmm(
        weighted,
        x.data,
        strategy=strategy,
        block_nnz=block_nnz,
        num_threads=num_threads,
        num_workers=num_workers,
    )
    return Tensor.make(out_data, (edge_vals, x), backward, "spmm_edge")


def sddmm_dot(pattern: CSRMatrix, u: Tensor, v: Tensor) -> Tensor:
    """Per-edge dot products ``e_ij = u[i] · v[j]`` as an edge tensor.

    Backward scatters through the pattern: ``du[i] += Σ_j dE_ij v[j]``
    (an SpMM with the gradient as edge values) and symmetrically for v.
    """
    rows, cols = pattern.row_ids(), pattern.indices

    def backward(grad: np.ndarray) -> None:
        weighted = pattern.with_values(grad)
        u.accumulate_grad(gspmm(weighted, v.data))
        v.accumulate_grad(gspmm(weighted.transpose(), u.data))

    out_data = np.einsum("ek,ek->e", u.data[rows], v.data[cols])
    return Tensor.make(out_data, (u, v), backward, "sddmm_dot")


def gsddmm_add_uv(pattern: CSRMatrix, u_score: Tensor, v_score: Tensor) -> Tensor:
    """Per-edge ``e_ij = u_score[i] + v_score[j]`` for scalar node scores.

    This is GAT's decomposed attention logit: ``a^T [Θ_i ‖ Θ_j]`` splits
    into a destination score plus a source score.
    """
    rows, cols = pattern.row_ids(), pattern.indices

    def backward(grad: np.ndarray) -> None:
        u_score.accumulate_grad(
            np.bincount(rows, weights=grad, minlength=pattern.shape[0])
        )
        v_score.accumulate_grad(
            np.bincount(cols, weights=grad, minlength=pattern.shape[1])
        )

    out_data = u_score.data[rows] + v_score.data[cols]
    return Tensor.make(out_data, (u_score, v_score), backward, "gsddmm_add_uv")


def edge_softmax(pattern: CSRMatrix, logits: Tensor) -> Tensor:
    """Row-wise softmax over edge logits; returns an edge tensor α.

    Backward: ``dlogit = α ⊙ (dα − row_sum(dα ⊙ α))`` per destination row.
    """
    alpha_mat = edge_softmax_kernel(pattern, logits.data)
    alpha = alpha_mat.values
    deg = pattern.row_degrees()

    def backward(grad: np.ndarray) -> None:
        weighted_sums = segment_sum(grad * alpha, pattern.indptr)
        logits.accumulate_grad(alpha * (grad - np.repeat(weighted_sums, deg)))

    return Tensor.make(alpha, (logits,), backward, "edge_softmax")


def row_broadcast(d: np.ndarray, x: Tensor) -> Tensor:
    """``diag(d) @ X`` with a constant per-row vector (GCN normalization)."""
    d = np.asarray(d, dtype=np.float64)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(d[:, None] * grad)

    return Tensor.make(d[:, None] * x.data, (x,), backward, "row_broadcast")


def gather_rows(x: Tensor, idx: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward (used by sampled training)."""
    idx = np.asarray(idx, dtype=np.int64)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(x.data)
        np.add.at(full, idx, grad)
        x.accumulate_grad(full)

    return Tensor.make(x.data[idx], (x,), backward, "gather_rows")
