"""Optimizers for the training experiments (Table III's T rows)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .nn import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += param.grad
                param.data -= self.lr * vel
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad ** 2
            param.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
