"""Structured error hierarchy for the guarded execution runtime.

Every failure the runtime can surface deliberately derives from
:class:`GraniiError`, so callers (and the chaos driver) can distinguish
*structured* failures — input rejection, configuration mistakes, budget
breaches, an exhausted fallback ladder — from genuine bugs escaping as
raw ``IndexError`` / ``ValueError`` / NumPy broadcasting noise.

Errors double-inherit from the builtin exception a pre-guard caller
would have seen (``ValueError`` for input/config problems, ``TimeoutError``
/ ``MemoryError`` for budget breaches, ``RuntimeError`` for execution
failure), so introducing the hierarchy never breaks existing
``except ValueError`` call sites.
"""

from __future__ import annotations

__all__ = [
    "GraniiError",
    "GraniiInputError",
    "GraniiConfigError",
    "GraniiBudgetError",
    "GraniiDeadlineError",
    "GraniiMemoryError",
    "GraniiExecutionError",
    "GraniiOverloadError",
    "GraniiAnalysisError",
]


class GraniiError(Exception):
    """Base class of every structured runtime failure."""


class GraniiInputError(GraniiError, ValueError):
    """An input (graph structure, feature matrix) failed admission checks.

    Raised by the guard's admission gate and the sparse constructors with
    an actionable message, instead of letting malformed data surface as a
    downstream NumPy broadcast error or silent index wraparound.
    """


class GraniiConfigError(GraniiError, ValueError):
    """A ``REPRO_*`` environment knob holds an unusable value.

    The message always names the offending variable and the accepted
    values, so a deployment typo fails loudly at parse time instead of
    deep inside kernel setup.
    """


class GraniiBudgetError(GraniiError, RuntimeError):
    """Base class for execution-budget breaches (deadline or memory)."""

    def __init__(self, message: str, budget: float = 0.0, observed: float = 0.0):
        super().__init__(message)
        self.budget = float(budget)
        self.observed = float(observed)


class GraniiDeadlineError(GraniiBudgetError, TimeoutError):
    """A plan ran past its wall-clock deadline."""


class GraniiMemoryError(GraniiBudgetError, MemoryError):
    """A plan's (estimated or observed) resident bytes exceeded the budget."""


class GraniiExecutionError(GraniiError, RuntimeError):
    """Every rung of the fallback ladder failed, including the reference.

    Carries the per-rung failure chain so operators can see *why* each
    fallback was exhausted; ``__cause__`` is the last underlying error.
    """

    def __init__(self, message: str, attempts=()):
        super().__init__(message)
        # (label, reason, repr(error)) per failed rung, outermost first
        self.attempts = list(attempts)


class GraniiOverloadError(GraniiError, RuntimeError):
    """A serving request was shed instead of queued unboundedly.

    Raised at admission time by :class:`repro.serving.GraniiService` when
    a tenant's bounded queue is full (backpressure) or the service is
    draining.  ``retry_after_seconds`` is the load-shedding hint: an
    estimate of when the tenant's queue will have drained enough for a
    resubmission to be admitted (0 means "do not retry": the service is
    closed, not busy).
    """

    def __init__(
        self,
        message: str,
        retry_after_seconds: float = 0.0,
        tenant: str = "",
        depth: int = 0,
    ):
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)
        self.tenant = tenant
        self.depth = int(depth)


class GraniiAnalysisError(GraniiError, KeyError, ValueError):
    """Static analysis rejected an IR tree, plan, or shape binding.

    Raised by :func:`repro.core.ir.ir_shape` / ``ShapeEnv.resolve`` on
    unresolvable or inconsistent symbolic dimensions, and by
    ``repro.analysis.planlint`` when a lowered plan violates a proved
    invariant.  Inherits both ``KeyError`` (what ``resolve`` used to
    raise on a missing symbol) and ``ValueError`` so pre-analysis
    ``except`` sites keep working.

    ``node`` optionally carries the offending IR node's ``describe()`` /
    ``ir_repr`` text; ``diagnostics`` the analyzer findings.
    """

    def __init__(self, message: str, node: str = "", diagnostics=()):
        super().__init__(message)
        self.node = node
        self.diagnostics = list(diagnostics)

    # KeyError.__str__ repr-quotes its single argument, which would turn
    # the message into an escaped blob; restore normal formatting.
    def __str__(self) -> str:
        return Exception.__str__(self)
