"""Learned per-primitive cost models (paper §IV-E2).

One gradient-boosted-tree regressor per (primitive, device), trained on
profiled log-times.  A plan's predicted cost is the sum of its calls'
predicted times — with graph-only setup amortised over the iteration
count — exactly the additive approximation the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware import Device, get_device
from ..kernels import KernelCall
from ..learn import GradientBoostedTrees
from .features import call_features
from .profiler import ProfileDataset, collect_profile

__all__ = [
    "CostModelSet",
    "STRATEGY_PRICING_PRIMITIVES",
    "clear_cost_model_cache",
    "clear_runtime_residuals",
    "cost_model_token",
    "estimate_transient_bytes",
    "export_runtime_residuals",
    "get_cost_models",
    "import_runtime_residuals",
    "load_cost_models",
    "record_runtime_residual",
    "residual_factor",
    "save_cost_models",
    "train_cost_models",
]

# ----------------------------------------------------------------------
# Runtime residuals (autotuner feedback)
# ----------------------------------------------------------------------
# The autotuner measures kernels on the *actual* input and records the
# measured/predicted ratio here; predictions are multiplied by the
# current EWMA factor so future selections price what this machine
# actually runs, in the spirit of the execution-time predictor line of
# work the roadmap cites.  Keys are (device, primitive).
_RUNTIME_RESIDUALS: Dict[Tuple[str, str], float] = {}
_RESIDUAL_ALPHA = 0.5

# Primitives whose residuals change strategy selection — the scope of
# the cache-invalidation token.  Residuals on anything else (gemm, ...)
# cannot flip an aggregation-strategy choice, so they must NOT churn
# serving-cache fingerprints.
STRATEGY_PRICING_PRIMITIVES = (
    "spmm",
    "spmm_unweighted",
    "spmm_blocked",
    "spmm_parallel",
    "spmm_sharded",
    "spmm_fused",
)


def record_runtime_residual(
    device_name: str,
    primitive: str,
    measured_seconds: float,
    predicted_seconds: float,
) -> float:
    """Fold one measured/predicted ratio into the EWMA residual store.

    Returns the updated multiplicative factor for (device, primitive).
    Non-positive inputs are ignored (timer underflow, missing model).
    """
    key = (device_name.lower(), primitive)
    if measured_seconds <= 0.0 or predicted_seconds <= 0.0:
        return _RUNTIME_RESIDUALS.get(key, 1.0)
    ratio = measured_seconds / predicted_seconds
    prev = _RUNTIME_RESIDUALS.get(key)
    value = ratio if prev is None else (
        (1.0 - _RESIDUAL_ALPHA) * prev + _RESIDUAL_ALPHA * ratio
    )
    _RUNTIME_RESIDUALS[key] = value
    return value


def residual_factor(device_name: str, primitive: str) -> float:
    """Current multiplicative correction for (device, primitive); 1.0 if none."""
    return _RUNTIME_RESIDUALS.get((device_name.lower(), primitive), 1.0)


def clear_runtime_residuals() -> None:
    _RUNTIME_RESIDUALS.clear()


def export_runtime_residuals() -> Dict[str, float]:
    """The EWMA residual store as a JSON-friendly ``device|primitive``
    -> factor mapping (the durable-state snapshot payload)."""
    return {f"{dev}|{prim}": value for (dev, prim), value in _RUNTIME_RESIDUALS.items()}


def import_runtime_residuals(data: Dict[str, float]) -> int:
    """Restore residuals exported by :func:`export_runtime_residuals`.

    Replaces the current store (warm start = resume exactly where the
    saved process left off).  Malformed keys and non-finite factors are
    skipped rather than poisoning selection.  Returns the count restored.
    """
    _RUNTIME_RESIDUALS.clear()
    restored = 0
    for key, value in dict(data or {}).items():
        if not isinstance(key, str) or "|" not in key:
            continue
        try:
            factor = float(value)
        except (TypeError, ValueError):
            continue
        if not np.isfinite(factor) or factor <= 0.0:
            continue
        dev, _, prim = key.partition("|")
        _RUNTIME_RESIDUALS[(dev, prim)] = factor
        restored += 1
    return restored


def cost_model_token(
    device_name: str,
    primitives: Sequence[str] = STRATEGY_PRICING_PRIMITIVES,
) -> str:
    """Version token of the strategy-pricing residual state.

    Folded into serving-cache fingerprints so entries selected under a
    stale cost model are recomputed after an autotune refinement —
    without invalidating keys the refinement cannot affect.  A pristine
    store (all factors 1.0) yields the empty token, so fingerprints are
    byte-identical to the pre-autotuner era until a residual is
    actually recorded.
    """
    import hashlib

    entries = [
        (p, round(_RUNTIME_RESIDUALS.get((device_name.lower(), p), 1.0), 6))
        for p in sorted(primitives)
    ]
    if all(r == 1.0 for _, r in entries):
        return ""
    return hashlib.sha1(repr(entries).encode()).hexdigest()[:12]


def estimate_transient_bytes(calls: Iterable[KernelCall]) -> float:
    """Largest per-kernel scratch footprint across a call sequence.

    Complements the plan-level ``peak_memory_bytes`` (which tracks live
    *outputs*): kernels such as g-SpMM also materialise transient message
    buffers sized by the edge count, and the execution guard's memory
    budget must account for the biggest of them.  Transients don't
    accumulate — each kernel frees its scratch before the next runs — so
    the max, not the sum, is the right aggregate.
    """
    from ..kernels.registry import transient_bytes

    peak = 0.0
    for call in calls:
        peak = max(peak, transient_bytes(call.primitive, call.shape))
    return peak


class CostModelSet:
    """Per-primitive regressors for one device."""

    def __init__(self, device_name: str, models: Dict[str, GradientBoostedTrees]) -> None:
        self.device_name = device_name
        self._models = models
        self._memo: Dict[tuple, float] = {}

    @property
    def primitives(self) -> Tuple[str, ...]:
        return tuple(sorted(self._models))

    def predict_call(self, call: KernelCall, graph_vec: np.ndarray) -> float:
        """Predicted execution time (seconds) of one invocation."""
        model = self._models.get(call.primitive)
        if model is None:
            raise KeyError(
                f"no cost model for primitive {call.primitive!r} on "
                f"{self.device_name}"
            )
        key = (
            call.primitive,
            tuple(sorted(call.shape.items())),
            graph_vec.tobytes(),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached * residual_factor(self.device_name, call.primitive)
        feats = call_features(call, graph_vec)
        result = float(np.exp(model.predict_one(feats)))
        # memoise the *base* prediction; the runtime-residual factor is
        # applied on the way out so autotune refinements take effect
        # without a cache flush
        self._memo[key] = result
        return result * residual_factor(self.device_name, call.primitive)

    def predict_calls(
        self, calls: Iterable[KernelCall], graph_vec: np.ndarray, efficiency=None
    ) -> float:
        """Predicted total time of a call sequence.

        ``efficiency`` optionally maps each call to a system-specific
        multiplier (the baseline system's kernel efficiency).
        """
        total = 0.0
        for call in calls:
            t = self.predict_call(call, graph_vec)
            if efficiency is not None:
                t *= efficiency(call)
            total += t
        return total


def train_cost_models(
    device: Device,
    dataset: Optional[ProfileDataset] = None,
    num_rounds: int = 120,
    max_depth: int = 4,
    scale: str = "default",
    seed: int = 0,
) -> CostModelSet:
    """Fit one GBT per primitive from profiled data (paper §V)."""
    if dataset is None:
        dataset = collect_profile(device, scale=scale)
    models: Dict[str, GradientBoostedTrees] = {}
    for primitive in dataset.primitives:
        x, y = dataset.matrices(primitive)
        # hold out a validation slice for early stopping, as the paper does
        rng = np.random.default_rng(seed)
        order = rng.permutation(x.shape[0])
        split = max(1, int(0.85 * x.shape[0]))
        train_idx, val_idx = order[:split], order[split:]
        model = GradientBoostedTrees(
            num_rounds=num_rounds,
            learning_rate=0.12,
            max_depth=max_depth,
            min_samples_leaf=3,
            subsample=0.9,
            early_stopping_rounds=15 if val_idx.size else None,
            seed=seed,
        )
        eval_set = (x[val_idx], y[val_idx]) if val_idx.size else None
        model.fit(x[train_idx], y[train_idx], eval_set=eval_set)
        models[primitive] = model
    return CostModelSet(device.name, models)


def save_cost_models(models: CostModelSet, path) -> None:
    """Persist a trained CostModelSet to a JSON file.

    This realises the paper's "one-time cost per target system": a
    production deployment trains once and ships the serialized models.
    """
    import json
    from pathlib import Path

    payload = {
        "device": models.device_name,
        "models": {name: m.to_dict() for name, m in models._models.items()},
    }
    # tmp + fsync + rename: a crash mid-save leaves the previous intact
    # file, never a truncated one that poisons the next start
    from ..state import atomic_write_text

    atomic_write_text(Path(path), json.dumps(payload))


def load_cost_models(path) -> CostModelSet:
    """Load a CostModelSet saved with :func:`save_cost_models`."""
    import json
    from pathlib import Path

    from ..learn import GradientBoostedTrees

    payload = json.loads(Path(path).read_text())
    models = {
        name: GradientBoostedTrees.from_dict(data)
        for name, data in payload["models"].items()
    }
    return CostModelSet(payload["device"], models)


_COST_MODEL_CACHE: Dict[Tuple[str, str], CostModelSet] = {}


def get_cost_models(
    device_name: str, scale: str = "default", cache_dir=None
) -> CostModelSet:
    """Trained cost models for a device, cached per process.

    This is the paper's "one-time cost per target system": the first call
    profiles the training pool and fits the models; later calls reuse
    them.  With ``cache_dir``, trained models additionally persist to (and
    reload from) ``<cache_dir>/costmodels_<device>_<scale>.json`` across
    processes.
    """
    key = (device_name.lower(), scale)
    if key not in _COST_MODEL_CACHE:
        disk_path = None
        if cache_dir is not None:
            from pathlib import Path

            disk_path = Path(cache_dir) / f"costmodels_{key[0]}_{scale}.json"
            if disk_path.exists():
                # a truncated/corrupt cache file (crash mid-write by an
                # older version, disk fault) costs a retrain, not a crash
                try:
                    _COST_MODEL_CACHE[key] = load_cost_models(disk_path)
                    return _COST_MODEL_CACHE[key]
                except Exception as exc:
                    import logging

                    from ..state import quarantine

                    logging.getLogger(__name__).warning(
                        "cost-model cache %s unreadable (%s); quarantining "
                        "and retraining",
                        disk_path,
                        exc,
                    )
                    quarantine(disk_path)
        _COST_MODEL_CACHE[key] = train_cost_models(
            get_device(device_name), scale=scale
        )
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            save_cost_models(_COST_MODEL_CACHE[key], disk_path)
    return _COST_MODEL_CACHE[key]


def clear_cost_model_cache() -> None:
    _COST_MODEL_CACHE.clear()
