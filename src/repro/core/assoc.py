"""Association-tree enumeration (Algorithm 1, paper §IV-C).

Given a rewritten matrix IR, enumerate *every* legal re-association as a
set of primitive steps.  Each step is content-addressed — its identifier
is the canonical signature ``primitive(arg_refs)`` — so common
subexpressions are shared automatically across and within candidates.
This hash-consing is what realises the paper's post-enumeration CSE scan:
GAT's reuse composition, for example, falls out because the aggregation's
``H·W`` association resolves to the very step the attention prelude
already created.

The enumerator works bottom-up with memoisation: for an n-ary
multiplication level it performs a CYK-style exploration of contiguous
windows matched by the rule table, so enumeration cost is polynomial in
chain length rather than factorial in interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .ir import Add, Attention, IRNode, Leaf, MatMul, Nonlinear, RowBroadcast
from .rules import MatchResult, Operand, match_add_children, match_matmul_window

__all__ = ["Step", "Candidate", "enumerate_candidates", "leaf_operand"]


@dataclass(frozen=True)
class Step:
    """One primitive application; ``out`` is its canonical signature.

    ``meta`` refines the primitive for execution: the nonlinearity name
    for barrier steps ('relu', 'elu', ...) or 'add' for n-ary additions.
    """

    out: str
    primitive: str
    args: Tuple[str, ...]
    arg_descs: Tuple[Operand, ...]
    out_desc: Operand
    meta: str = ""

    def describe(self) -> str:
        suffix = f"[{self.meta}]" if self.meta else ""
        return f"{self.out_desc.ref} = {self.primitive}{suffix}({', '.join(self.args)})"


@dataclass(frozen=True)
class Candidate:
    """One complete primitive composition: a DAG of steps plus the output."""

    steps: FrozenSet[Step]
    output: str

    @property
    def primitives(self) -> Tuple[str, ...]:
        return tuple(sorted(s.primitive for s in self.steps))

    def ordered_steps(self) -> List[Step]:
        """Steps in dependency order (deterministic)."""
        by_out = {s.out: s for s in self.steps}
        ordered: List[Step] = []
        seen = set()

        def visit(ref: str) -> None:
            step = by_out.get(ref)
            if step is None or ref in seen:
                return
            seen.add(ref)
            for arg in step.args:
                visit(arg)
            ordered.append(step)

        for out in sorted(by_out):
            visit(out)
        return ordered

    def describe(self) -> str:
        return " ; ".join(s.describe() for s in self.ordered_steps())


def leaf_operand(leaf: Leaf) -> Operand:
    return Operand(leaf.name, leaf.attr, leaf.subattr, leaf.shape, leaf.nnz)


def _sig(primitive: str, args: Sequence[str]) -> str:
    return f"{primitive}({','.join(args)})"


def _make_step(
    primitive: str, args: Sequence[Operand], match: MatchResult, meta: str = ""
) -> Step:
    refs = tuple(a.ref for a in args)
    sig_name = f"{primitive}.{meta}" if meta else primitive
    out = _sig(sig_name, refs)
    out_desc = Operand(
        out, match.result_attr, match.result_subattr, match.result_shape, match.result_nnz
    )
    return Step(out, primitive, refs, tuple(args), out_desc, meta)


Alternative = Tuple[Operand, FrozenSet[Step]]


class _Enumerator:
    """Bottom-up enumeration with memoised chain exploration."""

    def __init__(self, allow_spgemm: bool = False) -> None:
        self._chain_memo: Dict[Tuple[str, ...], List[Alternative]] = {}
        self._op_cache: Dict[str, Operand] = {}
        self._allow_spgemm = allow_spgemm

    # -- chains ---------------------------------------------------------
    def _chain(self, ops: Tuple[Operand, ...]) -> List[Alternative]:
        """All full associations of a multiplication chain."""
        if len(ops) == 1:
            return [(ops[0], frozenset())]
        key = tuple(o.ref for o in ops)
        cached = self._chain_memo.get(key)
        if cached is not None:
            return cached
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        for width in (2, 3):
            for start in range(len(ops) - width + 1):
                window = ops[start : start + width]
                match = match_matmul_window(window, allow_spgemm=self._allow_spgemm)
                if match is None:
                    continue
                step = _make_step(match.primitive, window, match)
                new_ops = ops[:start] + (step.out_desc,) + ops[start + width :]
                for result_op, steps in self._chain(new_ops):
                    merged = steps | {step}
                    results[(result_op.ref, merged)] = (result_op, merged)
        out = list(results.values())
        self._chain_memo[key] = out
        return out

    # -- generic nodes ----------------------------------------------------
    def enumerate(self, node: IRNode) -> List[Alternative]:
        if isinstance(node, Leaf):
            return [(leaf_operand(node), frozenset())]
        if isinstance(node, RowBroadcast):
            # Un-rewritten broadcasts act as association barriers: the
            # operand is fully resolved first, then one row_broadcast step
            # applies.  The normal pipeline eliminates these via the
            # Appendix C rewrite; this path exists for the rewrite
            # ablation (and for IRs a user chooses not to rewrite).
            return self._enumerate_row_broadcast(node)
        if isinstance(node, MatMul):
            return self._enumerate_matmul(node)
        if isinstance(node, Add):
            return self._enumerate_add(node)
        if isinstance(node, Attention):
            return self._enumerate_attention(node)
        if isinstance(node, Nonlinear):
            return self._enumerate_nonlinear(node)
        raise TypeError(f"unknown IR node {node!r}")

    def _product(
        self, children: Sequence[IRNode]
    ) -> List[Tuple[Tuple[Operand, ...], FrozenSet[Step]]]:
        """Cartesian product of child alternatives with step-union."""
        combos: List[Tuple[Tuple[Operand, ...], FrozenSet[Step]]] = [
            ((), frozenset())
        ]
        for child in children:
            alts = self.enumerate(child)
            combos = [
                (ops + (op,), steps | child_steps)
                for ops, steps in combos
                for op, child_steps in alts
            ]
        return combos

    def _enumerate_matmul(self, node: MatMul) -> List[Alternative]:
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        for ops, steps in self._product(node.children):
            for result_op, chain_steps in self._chain(ops):
                merged = steps | chain_steps
                results[(result_op.ref, merged)] = (result_op, merged)
        return list(results.values())

    def _enumerate_add(self, node: Add) -> List[Alternative]:
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        for ops, steps in self._product(node.children):
            match = match_add_children(ops)
            if match is None:
                continue
            meta = "add" if match.primitive == "elementwise" else ""
            step = _make_step(match.primitive, ops, match, meta)
            merged = steps | {step}
            results[(step.out_desc.ref, merged)] = (step.out_desc, merged)
        return list(results.values())

    def _enumerate_row_broadcast(self, node: RowBroadcast) -> List[Alternative]:
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        vec_alts = self.enumerate(node.vec)
        mat_alts = self.enumerate(node.mat)
        for vec_op, vec_steps in vec_alts:
            for mat_op, mat_steps in mat_alts:
                match = MatchResult(
                    "row_broadcast", "dense", "data", mat_op.shape
                )
                step = _make_step("row_broadcast", (vec_op, mat_op), match)
                merged = vec_steps | mat_steps | {step}
                results[(step.out_desc.ref, merged)] = (step.out_desc, merged)
        return list(results.values())

    def _enumerate_attention(self, node: Attention) -> List[Alternative]:
        pattern_op = leaf_operand(node.pattern)
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        for theta_op, steps in self.enumerate(node.theta):
            match = MatchResult(
                "attention", "sparse", "weighted", node.pattern.shape, node.pattern.nnz
            )
            step = _make_step("attention", (pattern_op, theta_op), match)
            merged = steps | {step}
            results[(step.out_desc.ref, merged)] = (step.out_desc, merged)
        return list(results.values())

    def _enumerate_nonlinear(self, node: Nonlinear) -> List[Alternative]:
        results: Dict[Tuple[str, FrozenSet[Step]], Alternative] = {}
        for child_op, steps in self.enumerate(node.child):
            match = MatchResult(
                "elementwise", child_op.attr, child_op.subattr, child_op.shape, child_op.nnz
            )
            step = _make_step("elementwise", (child_op,), match, meta=node.name)
            merged = steps | {step}
            results[(step.out_desc.ref, merged)] = (step.out_desc, merged)
        return list(results.values())


def enumerate_candidates(
    variants: Sequence[IRNode], allow_spgemm: bool = False
) -> List[Candidate]:
    """Enumerate all association trees over one or more IR variants.

    Candidates from different rewrite variants are merged and deduplicated
    by their step DAGs (two variants can reach the same composition).
    ``allow_spgemm`` admits sparse·sparse associations (extension).
    """
    enumerator = _Enumerator(allow_spgemm=allow_spgemm)
    seen: Dict[Tuple[str, FrozenSet[Step]], Candidate] = {}
    for variant in variants:
        for op, steps in enumerator.enumerate(variant):
            key = (op.ref, steps)
            if key not in seen:
                seen[key] = Candidate(steps, op.ref)
    return list(seen.values())
