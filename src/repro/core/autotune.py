"""Input-driven autotuning of aggregation strategy and tile size.

The cost models predict *simulated device* time; the machine actually
running the NumPy substrate has its own crossover points.  With
``REPRO_AUTOTUNE=1`` the engine measures a small grid of candidate
``(strategy, block_nnz)`` points on the **actual input adjacency** at
selection time, picks the fastest, and folds the measured/predicted
ratios back into the cost models as runtime residuals
(:func:`repro.core.costmodel.record_runtime_residual`) — so future
selections on this process price the strategies the way this host runs
them, and ``REPRO_BLOCK_NNZ`` stops being a hand-set knob.

Scope is deliberately bounded: only in-process strategies are measured
(``row_segment`` as the baseline, ``blocked`` and ``spmm_fused`` over
the tile grid).  Pool-backed strategies (``blocked_parallel``,
``spmm_sharded``) would pay pool spin-up inside the selection path;
their pricing still improves indirectly through the shared residual
store when the guard runs them.

Knobs: ``REPRO_AUTOTUNE`` (enable), ``REPRO_AUTOTUNE_GRID`` (candidate
``block_nnz`` values), ``REPRO_AUTOTUNE_WARMUP`` / ``REPRO_AUTOTUNE_REPEATS``
(measurement discipline).  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import config
from ..hardware.timer import time_fn
from ..kernels import KernelCall, WorkspaceArena, get_semiring, gspmm
from ..sparse import CSRMatrix

__all__ = [
    "AutotunePoint",
    "AutotuneResult",
    "DEFAULT_GRID",
    "autotune_spmm",
    "autotune_selection",
]

# Tile-size candidates bracketing the built-in DEFAULT_BLOCK_NNZ (32768):
# a cache-snug tile, the default, and a dispatch-lean large tile.
DEFAULT_GRID = (8192, 32768, 131072)

# Strategies measured directly; all run in-process with no pool warm-up.
TUNABLE_STRATEGIES = ("row_segment", "blocked", "spmm_fused")

# Strategies whose runtime is insensitive to block_nnz: one point each.
_BLOCK_INSENSITIVE = ("row_segment", "gather_scatter")

_SPMM_SEMIRINGS = {"spmm": ("sum", "mul"), "spmm_unweighted": ("sum", "copy_rhs")}

# strategy -> cost-model primitive used for residual attribution; None
# means "the call's own primitive" (the reference path).
_STRATEGY_PRIMITIVES = {
    "row_segment": None,
    "gather_scatter": None,
    "blocked": "spmm_blocked",
    "blocked_parallel": "spmm_parallel",
    "spmm_sharded": "spmm_sharded",
    "spmm_fused": "spmm_fused",
}


@dataclass(frozen=True)
class AutotunePoint:
    """One measured (strategy, block_nnz) candidate."""

    strategy: str
    block_nnz: Optional[int]
    seconds: float

    def describe(self) -> str:
        block = f"/{self.block_nnz}" if self.block_nnz is not None else ""
        return f"{self.strategy}{block}: {1e3 * self.seconds:.3f} ms"


@dataclass
class AutotuneResult:
    """Outcome of one autotune pass over a (graph, width) workload."""

    strategy: str
    block_nnz: Optional[int]
    points: List[AutotunePoint] = field(default_factory=list)
    residuals: Dict[str, float] = field(default_factory=dict)

    @property
    def best_per_strategy(self) -> Dict[str, float]:
        best: Dict[str, float] = {}
        for p in self.points:
            if p.strategy not in best or p.seconds < best[p.strategy]:
                best[p.strategy] = p.seconds
        return best

    def describe(self) -> str:
        lines = [f"autotune: chose {self.strategy}"
                 + (f" block_nnz={self.block_nnz}" if self.block_nnz else "")]
        lines += [f"  {p.describe()}" for p in sorted(
            self.points, key=lambda p: p.seconds
        )]
        for primitive, factor in sorted(self.residuals.items()):
            lines.append(f"  residual {primitive}: x{factor:.3f}")
        return "\n".join(lines)


def _grid() -> Tuple[int, ...]:
    values = config.autotune_grid()
    return tuple(values) if values else DEFAULT_GRID


def autotune_spmm(
    adj: CSRMatrix,
    k: int,
    semiring_names: Tuple[str, str] = ("sum", "mul"),
    strategies: Sequence[str] = TUNABLE_STRATEGIES,
    grid: Optional[Sequence[int]] = None,
    warmup: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: int = 0,
) -> AutotuneResult:
    """Measure candidate (strategy, block_nnz) points on a real adjacency.

    Times one aggregation of width ``k`` over ``adj`` under every
    candidate point, reusing one :class:`WorkspaceArena` per strategy so
    steady-state (not first-allocation) cost is what's measured.
    Returns the fastest point; no residuals are recorded here — that
    needs cost-model predictions, see :func:`autotune_selection`.
    """
    if grid is None:
        grid = _grid()
    if warmup is None:
        warmup = config.autotune_warmup()
    if repeats is None:
        repeats = config.autotune_repeats()
    semiring = get_semiring(*semiring_names)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((adj.shape[1], max(int(k), 1)))
    result = AutotuneResult(strategy="row_segment", block_nnz=None)
    best_seconds = float("inf")
    for strategy in strategies:
        blocks: Sequence[Optional[int]] = (
            (None,) if strategy in _BLOCK_INSENSITIVE else tuple(grid)
        )
        workspace = WorkspaceArena()
        for block in blocks:
            seconds, _ = time_fn(
                lambda: gspmm(
                    adj, x, semiring,
                    strategy=strategy,
                    block_nnz=block,
                    workspace=workspace,
                ),
                repeats=repeats,
                warmup=warmup,
            )
            point = AutotunePoint(strategy, block, seconds)
            result.points.append(point)
            if seconds < best_seconds:
                best_seconds = seconds
                result.strategy = strategy
                result.block_nnz = block
        workspace.clear()
    return result


def autotune_selection(engine, plan, graph, layer) -> Optional[AutotuneResult]:
    """Autotune one engine selection and feed residuals back.

    Measures the plan's aggregation workload (its spmm/spmm_unweighted
    calls' sparse operand and feature width) on the adjacency the
    executor will actually run, honouring a pinned ``engine.spmm_strategy``
    by tuning only ``block_nnz`` for it.  Measured/predicted ratios are
    recorded into the cost-model residual store under the engine's
    device, which also advances :func:`~repro.core.costmodel.cost_model_token`
    so serving-cache fingerprints derived from the refined models change.

    Returns None when the plan has no aggregation to tune.
    """
    from .costmodel import record_runtime_residual, residual_factor

    env = engine.shape_env(graph, layer)
    setup, per_iter = plan.kernel_calls(env, engine.system.degree_method)
    spmm_calls = [
        c for c in per_iter if c.primitive in ("spmm", "spmm_unweighted")
    ]
    if not spmm_calls:
        return None
    call = spmm_calls[0]
    wants_loops = getattr(layer, "wants_self_loops", True)
    adj = graph.adj_with_self_loops() if wants_loops else graph.adj
    if engine.spmm_strategy != "auto":
        strategies: Sequence[str] = (engine.spmm_strategy,)
    else:
        strategies = TUNABLE_STRATEGIES
    result = autotune_spmm(
        adj,
        int(call.shape.get("k", 1)),
        semiring_names=_SPMM_SEMIRINGS[call.primitive],
        strategies=strategies,
    )
    # residual feedback: measured wall clock vs (base) model prediction
    if engine._cost_models is not None:
        models = engine.cost_models
        eff = engine.system.efficiency
        graph_vec = engine._graph_vec_cache.get(id(graph))
        if graph_vec is None:
            from .features import featurize_graph

            graph_vec = featurize_graph(graph)
            engine._graph_vec_cache[id(graph)] = graph_vec
        for strategy, measured in result.best_per_strategy.items():
            primitive = _STRATEGY_PRIMITIVES.get(strategy) or call.primitive
            variant = KernelCall(primitive, dict(call.shape), tag=call.tag)
            try:
                predicted = models.predict_calls([variant], graph_vec, eff)
            except KeyError:
                continue
            # divide out the live factor so the EWMA sees the base ratio
            # instead of compounding on every refinement
            base = predicted / residual_factor(engine.device.name, primitive)
            factor = record_runtime_residual(
                engine.device.name, primitive, measured, base
            )
            result.residuals[primitive] = factor
    return result
