"""Matrix-IR builders for the model zoo.

Each builder returns the IR of one layer *as written* in the
message-passing baseline — row-broadcasts and all — so the rewrite pass
has real work to do.  The frontend (``repro.core.frontend``) produces the
same IR by parsing the model's ``forward`` source; both paths are
cross-checked in the tests.

Symbolic dimensions: ``N`` nodes, ``K1`` input embedding, ``K2`` output
embedding, ``E`` stored nonzeros of the aggregated adjacency.
"""

from __future__ import annotations

from typing import Dict, List

from .ir import (
    Add,
    Attention,
    IRNode,
    MatMul,
    Nonlinear,
    RowBroadcast,
    dense_data,
    dense_weight,
    diagonal,
    sparse_unweighted,
    sparse_weighted,
)

__all__ = ["build_model_ir", "MODEL_IR_BUILDERS"]


def _adjacency(weighted: bool):
    """The adjacency leaf; Table I's weighted sub-attribute drives the
    rule table toward `spmm` instead of `spmm_unweighted`."""
    if weighted:
        return sparse_weighted("A", "N", "N", "E")
    return sparse_unweighted("A", "N", "N", "E")


def _common_leaves(weighted: bool = False):
    adj = _adjacency(weighted)
    norm = diagonal("D", "N")
    feat = dense_data("H", "N", "K1")
    return adj, norm, feat


def gcn_ir(hops: int = 1, activation: bool = True, weighted: bool = False) -> IRNode:
    """σ(rb(D, A · rb(D, H) · W)) — the dynamic-normalization source form."""
    adj, norm, feat = _common_leaves(weighted)
    weight = dense_weight("W", "K1", "K2")
    body: IRNode = MatMul((adj, RowBroadcast(norm, feat), weight))
    body = RowBroadcast(norm, body)
    return Nonlinear("relu", body) if activation else body


def sgc_ir(hops: int = 2, weighted: bool = False) -> IRNode:
    """(rb(D, A·rb(D, ·)))^hops then W; no nonlinearity by design."""
    adj, norm, feat = _common_leaves(weighted)
    weight = dense_weight("W", "K1", "K2")
    h: IRNode = feat
    for _ in range(hops):
        h = RowBroadcast(norm, MatMul((adj, RowBroadcast(norm, h))))
    return MatMul((h, weight))


def tagcn_ir(hops: int = 2, weighted: bool = False) -> IRNode:
    """Σ_l Ñ^l H W_l with per-hop weights."""
    adj, norm, feat = _common_leaves(weighted)
    terms: List[IRNode] = [MatMul((feat, dense_weight("W0", "K1", "K2")))]
    h: IRNode = feat
    for l in range(1, hops + 1):
        h = RowBroadcast(norm, MatMul((adj, RowBroadcast(norm, h))))
        terms.append(MatMul((h, dense_weight(f"W{l}", "K1", "K2"))))
    return Add(tuple(terms))


def gin_ir(activation: bool = True, weighted: bool = False) -> IRNode:
    """σ(((1+ε)I + A) · H · W); Eps is the (1+ε) diagonal."""
    adj = _adjacency(weighted)
    eps = diagonal("Eps", "N")
    feat = dense_data("H", "N", "K1")
    weight = dense_weight("W", "K1", "K2")
    body: IRNode = MatMul((Add((adj, eps)), feat, weight))
    return Nonlinear("relu", body) if activation else body


def sage_ir(activation: bool = True) -> IRNode:
    """GraphSAGE-mean: ``σ(H·Ws + (D^{-1}·A·H)·Wn)``.

    ``Dm`` is the inverse-degree diagonal; associating (Dm·A) precomputes
    the row-normalised (mean) adjacency, while the dynamic alternative
    broadcasts after aggregating — the same normalization trade-off as
    GCN, on the neighbor branch only.
    """
    adj = sparse_unweighted("A", "N", "N", "E")
    mean_diag = diagonal("Dm", "N")
    feat = dense_data("H", "N", "K1")
    w_self = dense_weight("Wself", "K1", "K2")
    w_neigh = dense_weight("Wneigh", "K1", "K2")
    body: IRNode = Add(
        (
            MatMul((feat, w_self)),
            MatMul((mean_diag, adj, feat, w_neigh)),
        )
    )
    return Nonlinear("relu", body) if activation else body


def appnp_ir(hops: int = 2) -> IRNode:
    """APPNP: Z_{k+1} = (1-α)·Ñ·Z_k + α·Z_0 with Z_0 = H·W.

    ``Ds`` is the (1-α)-scaled left normalization diagonal and ``T`` the
    α teleport diagonal; both are constants of the (graph, α) pair, so
    their associations amortise like any other graph-only setup.
    """
    adj = sparse_unweighted("A", "N", "N", "E")
    norm = diagonal("D", "N")
    scaled_norm = diagonal("Ds", "N")
    teleport = diagonal("T", "N")
    feat = dense_data("H", "N", "K1")
    weight = dense_weight("W", "K1", "K2")
    z0: IRNode = MatMul((feat, weight))
    z: IRNode = z0
    for _ in range(hops):
        z = Add((MatMul((scaled_norm, adj, norm, z)), MatMul((teleport, z0))))
    return z


def gat_ir(activation: bool = True) -> IRNode:
    """σ(Atten(A, H·W) · H · W) — the reuse/recompute ambiguity is in
    whether the trailing H·W association resolves to the prelude's Θ."""
    adj = sparse_unweighted("A", "N", "N", "E")
    feat = dense_data("H", "N", "K1")
    weight = dense_weight("W", "K1", "K2")
    theta = MatMul((feat, weight))
    alpha = Attention(adj, theta)
    body: IRNode = MatMul((alpha, feat, weight))
    return Nonlinear("elu", body) if activation else body


MODEL_IR_BUILDERS = {
    "gcn": gcn_ir,
    "sgc": sgc_ir,
    "tagcn": tagcn_ir,
    "gin": gin_ir,
    "gat": gat_ir,
    "sage": sage_ir,
    "appnp": appnp_ir,
}


def build_model_ir(name: str, **kwargs) -> IRNode:
    """IR of one layer of the named model (pre-rewrite, source form)."""
    name = name.lower()
    if name not in MODEL_IR_BUILDERS:
        raise KeyError(
            f"no IR builder for model {name!r}; choices: {sorted(MODEL_IR_BUILDERS)}"
        )
    return MODEL_IR_BUILDERS[name](**kwargs)
