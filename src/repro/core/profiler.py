"""Profiling-data collection for the cost models (paper §V).

The paper profiles each matrix primitive on SuiteSparse-derived graphs
with embedding sizes from 32 to 2048 and trains one XGBoost model per
(primitive, device).  We do the same against the device timing oracles:
for every training graph and embedding size, emit representative
invocations of each primitive and record the simulated time.  The
training pool is disjoint from the evaluation graphs (the paper's
train/test split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs import Graph, training_graphs
from ..hardware import Device, GraphStats
from ..kernels import KernelCall
from .features import call_features, featurize_graph

__all__ = ["ProfileDataset", "collect_profile", "PROFILED_PRIMITIVES", "DEFAULT_SIZES"]

PROFILED_PRIMITIVES = (
    "gemm",
    "spmm",
    "spmm_unweighted",
    "spmm_blocked",
    "spmm_parallel",
    "spmm_sharded",
    "spmm_fused",
    "sddmm",
    "sddmm_diag",
    "gsddmm_attn",
    "edge_softmax",
    "fused_attn_spmm",
    "spgemm",
    "row_broadcast",
    "elementwise",
    "degree_indptr",
    "degree_binning",
    "diag_mul",
    "spadd_diag",
)

DEFAULT_SIZES = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass
class ProfileDataset:
    """Per-primitive (features, log-time) training data."""

    features: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    log_times: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, primitive: str, feats: np.ndarray, seconds: float) -> None:
        self.features.setdefault(primitive, []).append(feats)
        self.log_times.setdefault(primitive, []).append(float(np.log(seconds)))

    def matrices(self, primitive: str) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.stack(self.features[primitive]),
            np.array(self.log_times[primitive]),
        )

    @property
    def primitives(self) -> Tuple[str, ...]:
        return tuple(sorted(self.features))

    def size(self, primitive: str) -> int:
        return len(self.features.get(primitive, []))


def _representative_calls(
    n: int, nnz: int, k1: int, k2: int
) -> List[KernelCall]:
    """The primitive invocations a GNN layer of this shape would issue."""
    return [
        KernelCall("gemm", {"m": n, "k": k1, "n": k2}),
        KernelCall("gemm", {"m": n, "k": k2, "n": 1}),
        KernelCall("spmm", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spmm_unweighted", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm_unweighted", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spmm_blocked", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm_blocked", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spmm_parallel", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm_parallel", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spmm_sharded", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm_sharded", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spmm_fused", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("spmm_fused", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("sddmm", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("sddmm_diag", {"m": n, "nnz": nnz}),
        KernelCall("gsddmm_attn", {"m": n, "nnz": nnz}),
        KernelCall("edge_softmax", {"m": n, "nnz": nnz}),
        KernelCall("fused_attn_spmm", {"m": n, "nnz": nnz, "k": k1}),
        KernelCall("fused_attn_spmm", {"m": n, "nnz": nnz, "k": k2}),
        KernelCall("spgemm", {
            "m": n, "nnz": nnz, "nnz_rhs": nnz,
            "nnz_out": min(nnz * max(nnz // max(n, 1), 1), n * n),
        }),
        KernelCall("row_broadcast", {"m": n, "k": k1}),
        KernelCall("row_broadcast", {"m": n, "k": k2}),
        KernelCall("elementwise", {"m": n, "k": k2}),
        KernelCall("elementwise", {"m": n, "k": 1}),
        KernelCall("degree_indptr", {"m": n, "nnz": nnz}),
        KernelCall("degree_binning", {"m": n, "nnz": nnz}),
        KernelCall("diag_mul", {"m": n}),
        KernelCall("spadd_diag", {"m": n, "nnz": nnz}),
    ]


def collect_profile(
    device: Device,
    graphs: Optional[Sequence[Graph]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    scale: str = "default",
) -> ProfileDataset:
    """Profile all primitives on the training pool for one device."""
    if graphs is None:
        graphs = training_graphs(scale=scale)
    dataset = ProfileDataset()
    for graph in graphs:
        stats = GraphStats.from_graph(graph)
        graph_vec = featurize_graph(graph)
        n = graph.num_nodes
        nnz = max(graph.num_edges, 1)
        for k1 in sizes:
            for k2 in (sizes[0], sizes[len(sizes) // 2], sizes[-1]):
                for call in _representative_calls(n, nnz, k1, k2):
                    seconds = device.time_call(call, stats)
                    dataset.add(
                        call.primitive, call_features(call, graph_vec), seconds
                    )
    return dataset
