"""Frontend: translate message-passing model code into matrix IR (§IV-B).

The paper's code translation runs a rule-based parser over the Python AST
of the model's ``forward``: graph operations (``update_all`` with
``copy_u``/``sum``) map to multiplications with the adjacency leaf,
row-scalings map to row-broadcasts, weight applications to weight leaves,
and non-linearities become barriers.  Attribute metadata (sparse /
diagonal / weight) is attached to the leaves as in Table I.

This module implements that parser for the vocabulary the baseline models
use.  It is an abstract interpreter: statements are executed over a
symbolic environment mapping variable names to IR expressions, ``for``
loops over ``range(self.hops)`` are statically unrolled against the live
layer instance, and ``self.*`` attribute reads fall back to the real
object so hyper-parameters (hop counts, ε) resolve to constants.

The direct builders in :mod:`repro.core.modelir` construct the same IR;
the test suite asserts both paths agree for every model, which is the
strongest guarantee that the parser's rules are faithful.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, List, Optional

from .ir import (
    Add,
    Attention,
    IRNode,
    Leaf,
    MatMul,
    Nonlinear,
    RowBroadcast,
    dense_data,
    dense_weight,
    diagonal,
    flatten,
    sparse_unweighted,
)

__all__ = ["parse_forward", "FrontendError"]


class FrontendError(ValueError):
    """Raised when the forward source uses an unsupported construct."""


_NONLINEAR_NAMES = {"relu", "elu", "leaky_relu", "sigmoid"}


def parse_forward(layer) -> IRNode:
    """Parse ``type(layer).forward``'s source into matrix IR."""
    source = textwrap.dedent(inspect.getsource(type(layer).forward))
    tree = ast.parse(source)
    func = tree.body[0]
    if not isinstance(func, ast.FunctionDef):
        raise FrontendError("expected a function definition")
    args = [a.arg for a in func.args.args]
    if len(args) < 3:
        raise FrontendError("forward must take (self, g, feat)")
    interpreter = _Interpreter(layer, graph_name=args[1], feat_name=args[2])
    result = interpreter.run(func.body)
    if result is None:
        raise FrontendError("forward never returned an expression")
    return flatten(result)


class _Interpreter:
    def __init__(self, layer, graph_name: str, feat_name: str) -> None:
        self.layer = layer
        self.graph_name = graph_name
        self.env: Dict[str, Any] = {feat_name: dense_data("H", "N", "K1")}
        self.env["self"] = _WeightRef(layer, None)
        self.env[graph_name] = _GraphAttr(self, ())
        from ..framework import fn as _fn_module

        self.env["fn"] = _fn_module
        self.ndata: Dict[str, Any] = {}
        self.adj = sparse_unweighted("A", "N", "N", "E")
        self.norm = diagonal("D", "N")
        self.eps_diag = diagonal("Eps", "N")
        self._pending_message: Optional[Any] = None

    # ------------------------------------------------------------------
    def run(self, body: List[ast.stmt]) -> Optional[IRNode]:
        for stmt in body:
            result = self.exec_stmt(stmt)
            if result is not None:
                return result
        return None

    def exec_stmt(self, stmt: ast.stmt) -> Optional[IRNode]:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                raise FrontendError("forward must return an expression")
            value = self.eval(stmt.value)
            if not _is_ir(value):
                raise FrontendError("forward must return a matrix expression")
            return value
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise FrontendError("only single-target assignments supported")
            value = self.eval(stmt.value)
            self.assign(stmt.targets[0], value)
            return None
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return None
        if isinstance(stmt, ast.For):
            return self.exec_for(stmt)
        raise FrontendError(f"unsupported statement {ast.dump(stmt)[:60]}")

    def exec_for(self, stmt: ast.For) -> Optional[IRNode]:
        if not isinstance(stmt.target, ast.Name):
            raise FrontendError("loop target must be a simple name")
        iterable = self.eval(stmt.iter)
        if not isinstance(iterable, range):
            raise FrontendError("only range(...) loops can be unrolled")
        for value in iterable:
            self.env[stmt.target.id] = value
            result = self.run(stmt.body)
            if result is not None:
                return result
        return None

    def assign(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        raise FrontendError("only simple-name assignment targets supported")

    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            raise FrontendError(f"unknown name {node.id!r}")
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        raise FrontendError(f"unsupported expression {ast.dump(node)[:60]}")

    def eval_attribute(self, node: ast.Attribute) -> Any:
        # `self.x.y` — resolve against the live layer, intercepting weights
        path = _attribute_path(node)
        if path is None:
            base = self.eval(node.value)
            base_path = base.path if isinstance(base, _WeightRef) else None
            new_path = f"{base_path}.{node.attr}" if base_path else None
            return _WeightRef.wrap(getattr(_unwrap(base), node.attr), new_path)
        if path[0] == "self":
            obj: Any = self.layer
            for i, part in enumerate(path[1:], start=1):
                obj = getattr(obj, part)
            return _WeightRef.wrap(obj, ".".join(path[1:]))
        if path[0] == self.graph_name:
            return _GraphAttr(self, path[1:])
        base = self.eval(node.value)
        return _WeightRef.wrap(getattr(_unwrap(base), node.attr), None)

    def eval_subscript(self, node: ast.Subscript) -> Any:
        base = self.eval(node.value)
        index = self.eval(node.slice)
        if isinstance(base, _GraphAttr) and base.path == ("ndata",):
            return self.ndata[index]
        if isinstance(base, _WeightRef):
            item = base.obj[index]
            name = f"{base.path}[{index}]" if base.path else None
            return _WeightRef.wrap(item, name)
        return _unwrap(base)[index]

    def eval_binop(self, node: ast.BinOp) -> Any:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return flatten(MatMul((self._as_ir(left), self._as_ir(right))))
        if isinstance(node.op, ast.Add):
            if _is_ir(left) and _is_ir(right):
                return flatten(Add((left, right)))
            return _unwrap(left) + _unwrap(right)
        if isinstance(node.op, ast.Mult):
            if _is_ir(left) and isinstance(right, (int, float)):
                return self._scalar_mult(left, right)
            if _is_ir(right) and isinstance(left, (int, float)):
                return self._scalar_mult(right, left)
            return _unwrap(left) * _unwrap(right)
        if isinstance(node.op, ast.Sub):
            return _unwrap(left) - _unwrap(right)
        raise FrontendError(f"unsupported operator {type(node.op).__name__}")

    def _scalar_mult(self, expr: "IRNode", scalar: float):
        """Map a scalar multiply onto a known diagonal leaf, or fail.

        The only scalar multiply in the translated vocabulary is GIN's
        ``(1 + ε)`` self term; mapping any *other* scalar to the Eps leaf
        would silently build the wrong IR, so unknown scalars raise and
        the runtime falls back to the model's registered IR builder.
        """
        eps = getattr(self.layer, "eps", None)
        if eps is not None and abs(scalar - (1.0 + eps)) < 1e-12:
            return RowBroadcast(self.eps_diag, expr)
        raise FrontendError(
            f"scalar multiply by {scalar!r} is outside the translated "
            "vocabulary (only GIN's (1+eps) self term is recognised)"
        )

    # ------------------------------------------------------------------
    def eval_call(self, node: ast.Call) -> Any:
        func = node.func
        args = [self.eval(a) for a in node.args]
        # plain-name calls: the functional helper vocabulary
        if isinstance(func, ast.Name):
            name = func.id
            if name == "compute_norm":
                return self.norm
            if name == "row_mul":
                return RowBroadcast(self._as_diag(args[1]), self._as_ir(args[0]))
            if name == "range":
                return range(*[_unwrap(a) for a in args])
            if name == "spmm_edge":
                alpha, theta = args[1], args[2]
                return flatten(MatMul((self._as_ir(alpha), self._as_ir(theta))))
            if name in _NONLINEAR_NAMES:
                return Nonlinear(name, self._as_ir(args[0]))
            raise FrontendError(f"unknown function {name!r}")
        if isinstance(func, ast.Attribute):
            return self.eval_method(func, node, args)
        raise FrontendError("unsupported call form")

    def eval_method(self, func: ast.Attribute, node: ast.Call, args: List[Any]) -> Any:
        method = func.attr
        path = _attribute_path(func.value)
        # graph methods -------------------------------------------------
        if path and path[0] == self.graph_name:
            if method == "set_ndata":
                field = args[0]
                self.ndata[field] = args[1]
                return None
            if method == "update_all":
                return self._update_all(args)
            if method == "unweighted" and path[1:] == ("adj",):
                return self.adj
            raise FrontendError(f"unsupported graph method {method!r}")
        if path and path[0] == "fn":
            module = self.env.get("fn")
            return getattr(module, method)(*[_unwrap(a) for a in args])
        if isinstance(func.value, ast.Attribute) or isinstance(func.value, ast.Name):
            base = self.eval(func.value)
            if isinstance(base, _GraphAttr):
                if method == "unweighted" and base.path == ("adj",):
                    return self.adj
                raise FrontendError(f"unsupported graph attr method {method!r}")
            if method == "_maybe_activate":
                if getattr(self.layer, "activation", False):
                    name = "elu" if type(self.layer).__name__ == "GATLayer" else "relu"
                    return Nonlinear(name, self._as_ir(args[0]))
                return args[0]
            if method == "_attention":
                theta = self._as_ir(args[1])
                return Attention(self.adj, theta)
            if method in _NONLINEAR_NAMES:
                return Nonlinear(method, self._as_ir(args[0]))
        raise FrontendError(f"unsupported method call {method!r}")

    def _update_all(self, args: List[Any]) -> None:
        # g.update_all(fn.copy_u('h', 'm'), fn.sum('m', 'out'))
        if len(args) != 2:
            raise FrontendError("update_all takes (message, reduce)")
        msg, red = args
        if getattr(msg, "name", None) != "copy_u" or getattr(red, "name", None) != "sum":
            raise FrontendError(
                "only copy_u/sum message passing is translated (the models' "
                "aggregation vocabulary)"
            )
        src = self.ndata[msg.src_field]
        self.ndata[red.out_field] = flatten(MatMul((self.adj, self._as_ir(src))))
        return None

    # ------------------------------------------------------------------
    def _as_ir(self, value: Any) -> IRNode:
        if _is_ir(value):
            return value
        if isinstance(value, _WeightRef):
            return self._weight_leaf(value)
        raise FrontendError(f"expected a matrix expression, got {value!r}")

    def _as_diag(self, value: Any) -> IRNode:
        if isinstance(value, Leaf) and value.is_diagonal:
            return value
        raise FrontendError("row_mul scale must be a normalization vector")

    def _weight_leaf(self, ref: "_WeightRef") -> Leaf:
        path = ref.path or ""
        if path.startswith("filters["):
            index = path[len("filters["):].split("]")[0]
            return dense_weight(f"W{index}", "K1", "K2")
        return dense_weight("W", "K1", "K2")


class _GraphAttr:
    """Marker for `g.<attr>` chains (g.ndata, g.adj, ...)."""

    def __init__(self, interp: _Interpreter, path) -> None:
        self.interp = interp
        self.path = tuple(path)


class _WeightRef:
    """A reference into the live layer object, tracked for weight naming."""

    def __init__(self, obj: Any, path: Optional[str]) -> None:
        self.obj = obj
        self.path = path

    @classmethod
    def wrap(cls, obj: Any, path: Optional[str]) -> Any:
        if isinstance(obj, (int, float, bool, str, range)):
            return obj
        return cls(obj, path)


def _unwrap(value: Any) -> Any:
    return value.obj if isinstance(value, _WeightRef) else value


def _is_ir(value: Any) -> bool:
    return isinstance(value, (Leaf, MatMul, Add, RowBroadcast, Nonlinear, Attention))


def _attribute_path(node: ast.expr) -> Optional[tuple]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
