"""Association rules: which windows of operands form which primitive.

These are the rules Algorithm 1's ``getCandidates`` consults (paper
§IV-C, Appendix D): given a window of adjacent, already-resolved operands
inside an associative multiplication level, decide whether GRANII may
associate them and which sparse/dense matrix primitive realises the
association.  Operands are described by :class:`Operand` records —
attribute, sub-attribute and symbolic shape — so the rules never look at
actual data.

The rule table:

======================================  ==================  =================
window (attr.subattr)                   primitive           result
======================================  ==================  =================
diagonal · sparse · diagonal            sddmm_diag          sparse.weighted
diagonal · sparse                       sddmm_diag          sparse.weighted
sparse · diagonal                       sddmm_diag          sparse.weighted
diagonal · diagonal                     diag_mul            diagonal
sparse.unweighted · dense               spmm_unweighted     dense.data
sparse.weighted · dense                 spmm                dense.data
diagonal · dense                        row_broadcast       dense.data
dense · dense                           gemm                dense.data
(addition) sparse + diagonal            spadd_diag          sparse.weighted
(addition) dense + ... + dense          elementwise         dense.data
======================================  ==================  =================

Sparse·sparse products (SpGEMM) are deliberately *not* a rule: neither
DGL nor WiseGraph exposes an SpGEMM kernel, so those associations are
illegal and the enumerator must find another grouping (e.g. SGC's hops
associate right-to-left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .ir import Dim

__all__ = ["Operand", "MatchResult", "match_matmul_window", "match_add_children"]


@dataclass(frozen=True)
class Operand:
    """Symbolic description of one resolved operand."""

    ref: str  # environment name: a leaf name or an intermediate id
    attr: str  # 'dense' | 'sparse'
    subattr: str
    shape: Tuple[Dim, Dim]
    nnz: Optional[Dim] = None  # sparse only

    @property
    def is_diagonal(self) -> bool:
        return self.subattr == "diagonal"

    @property
    def is_sparse_matrix(self) -> bool:
        return self.attr == "sparse" and not self.is_diagonal

    @property
    def is_dense(self) -> bool:
        return self.attr == "dense"


@dataclass(frozen=True)
class MatchResult:
    """A rule match: the primitive plus the result operand's description."""

    primitive: str
    result_attr: str
    result_subattr: str
    result_shape: Tuple[Dim, Dim]
    result_nnz: Optional[Dim] = None


def _product_nnz_symbol(a_nnz: Optional[Dim], b_nnz: Optional[Dim]) -> Dim:
    """Symbolic nnz of a sparse·sparse product: "E"-powers compose.

    "E" is depth 1; "E@k" depth k; the product of depths a and b has
    depth a+b.  The shape environment supplies per-depth estimates (or
    exact counts when the inspector computed them).
    """

    def depth(sym: Optional[Dim]) -> int:
        if sym == "E":
            return 1
        if isinstance(sym, str) and sym.startswith("E@"):
            return int(sym.split("@", 1)[1])
        raise ValueError(f"cannot compose nnz symbol {sym!r}")

    return f"E@{depth(a_nnz) + depth(b_nnz)}"


def match_matmul_window(
    window: Sequence[Operand], allow_spgemm: bool = False
) -> Optional[MatchResult]:
    """Match a window of 2 or 3 adjacent multiplication operands.

    ``allow_spgemm`` admits the sparse·sparse production — an extension
    beyond the paper's backends (see ``repro.kernels.spgemm``).
    """
    if len(window) == 3:
        a, b, c = window
        if a.is_diagonal and b.is_sparse_matrix and c.is_diagonal:
            return MatchResult(
                "sddmm_diag", "sparse", "weighted",
                (a.shape[0], c.shape[1]), b.nnz,
            )
        return None
    if len(window) != 2:
        return None
    x, y = window
    if x.is_diagonal and y.is_diagonal:
        return MatchResult(
            "diag_mul", "sparse", "diagonal", (x.shape[0], y.shape[1]), x.shape[0]
        )
    if x.is_diagonal and y.is_sparse_matrix:
        return MatchResult(
            "sddmm_diag", "sparse", "weighted", (x.shape[0], y.shape[1]), y.nnz
        )
    if x.is_sparse_matrix and y.is_diagonal:
        return MatchResult(
            "sddmm_diag", "sparse", "weighted", (x.shape[0], y.shape[1]), x.nnz
        )
    if x.is_sparse_matrix and y.is_dense:
        primitive = "spmm_unweighted" if x.subattr == "unweighted" else "spmm"
        return MatchResult(
            primitive, "dense", "data", (x.shape[0], y.shape[1])
        )
    if x.is_diagonal and y.is_dense:
        return MatchResult(
            "row_broadcast", "dense", "data", (x.shape[0], y.shape[1])
        )
    if x.is_dense and y.is_dense:
        return MatchResult("gemm", "dense", "data", (x.shape[0], y.shape[1]))
    if allow_spgemm and x.is_sparse_matrix and y.is_sparse_matrix:
        try:
            out_nnz = _product_nnz_symbol(x.nnz, y.nnz)
        except ValueError:
            return None
        return MatchResult(
            "spgemm", "sparse", "weighted", (x.shape[0], y.shape[1]), out_nnz
        )
    # dense·sparse (and, by default, sparse·sparse) are unsupported
    return None


def match_add_children(children: Sequence[Operand]) -> Optional[MatchResult]:
    """Match a full addition level (all children resolved)."""
    if len(children) < 2:
        return None
    if all(c.is_dense for c in children):
        return MatchResult(
            "elementwise", "dense", "data", children[0].shape
        )
    if len(children) == 2:
        a, b = children
        if a.is_sparse_matrix and b.is_diagonal:
            return MatchResult(
                "spadd_diag", "sparse", "weighted", a.shape, _nnz_plus_n(a.nnz)
            )
        if a.is_diagonal and b.is_sparse_matrix:
            return MatchResult(
                "spadd_diag", "sparse", "weighted", b.shape, _nnz_plus_n(b.nnz)
            )
    return None


def _nnz_plus_n(nnz: Optional[Dim]) -> Dim:
    """Symbolic nnz of a sparse-plus-diagonal pattern union."""
    if isinstance(nnz, str):
        return f"{nnz}+N"
    raise ValueError("spadd_diag requires a symbolic nnz")
