"""Guarded execution: input admission, budgets, and the fallback ladder.

GRANII's runtime always holds *several* legal compositions of the same
layer — the surviving association trees all compute the same function
(paper §III).  That redundancy is wasted if the engine commits to the
single predicted-cheapest plan and dies with it.  This module turns the
plan pool into a graceful-degradation ladder:

- :func:`validate_inputs` — an admission gate rejecting malformed inputs
  (shape/width mismatches against the plan's :class:`ShapeEnv`,
  non-float dtypes, NaN/Inf contamination, broken adjacency structure)
  with structured :class:`~repro.errors.GraniiInputError`\\ s instead of
  downstream NumPy broadcast errors or silent index wraparound;
- :class:`ExecutionBudget` — per-plan wall-clock deadlines (cost-model
  prediction × ``REPRO_DEADLINE_SLACK``, floored at
  ``REPRO_DEADLINE_FLOOR_MS``) and memory budgets
  (``REPRO_MEM_BUDGET_MB``), checked before execution against the plan's
  estimated peak and *during* execution between kernels;
- :class:`CircuitBreaker` — per-(primitive, strategy) failure counters
  that trip after ``REPRO_BREAKER_THRESHOLD`` failures, excluding the
  strategy from :meth:`GraniiEngine.select_spmm_strategy` until a
  ``REPRO_BREAKER_COOLDOWN``-second cooldown elapses;
- :class:`GuardedExecutor` — the drop-in ``layer.forward`` replacement
  that walks the ladder: chosen plan under its selected strategy → same
  plan under the reference ``row_segment`` kernels → next-cheapest
  surviving plans → the baseline message-passing forward.  Every
  demotion is recorded on the :class:`SelectionReport`; if even the
  reference fails, a :class:`~repro.errors.GraniiExecutionError` carries
  the whole failure chain.

Fault paths are exercised deterministically by :mod:`repro.faults`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..errors import (
    GraniiDeadlineError,
    GraniiExecutionError,
    GraniiInputError,
    GraniiMemoryError,
)
from ..sparse import CSRMatrix, DiagonalMatrix
from ..tensor import Tensor
from .bindings import build_binding
from .ir import ShapeEnv
from .plan import EdgeSparse, KernelExecutionConfig, Plan

__all__ = [
    "CircuitBreaker",
    "DemotionRecord",
    "ExecutionBudget",
    "GuardedExecutor",
    "reference_forward",
    "shape_env_for",
    "validate_inputs",
    "value_nbytes",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def reference_forward(layer, g, feat):
    """Run the baseline message-passing forward from either execution mode.

    ``forward`` is written against Tensors; numpy-mode callers (plain
    ndarray features) get an ndarray back so the fallback is a drop-in
    replacement for the plan output.
    """
    if isinstance(feat, Tensor):
        return layer.forward(g, feat)
    out = layer.forward(g, Tensor(np.asarray(feat, dtype=np.float64)))
    return np.asarray(out.data)


def shape_env_for(adj: CSRMatrix, layer) -> ShapeEnv:
    """A :class:`ShapeEnv` for the adjacency a plan will actually execute.

    Mirrors :meth:`GraniiEngine.shape_env` but starts from the (possibly
    self-looped) adjacency the executor receives, so memory estimates
    describe the real matrix.
    """
    from ..kernels import spgemm_output_nnz_estimate

    env = ShapeEnv()
    env["N"] = adj.shape[0]
    env["E"] = adj.nnz
    env["K1"] = layer.in_size
    env["K2"] = layer.out_size
    current = adj.nnz
    for depth in range(2, 7):
        current = spgemm_output_nnz_estimate(adj.shape[0], current, adj.nnz)
        env[f"E@{depth}"] = current
    return env


def value_nbytes(value) -> float:
    """Resident bytes of one runtime value (ndarray/Tensor/sparse/diag)."""
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    if isinstance(value, Tensor):
        return float(np.asarray(value.data).nbytes)
    if isinstance(value, CSRMatrix):
        total = value.indptr.nbytes + value.indices.nbytes
        if value.values is not None:
            total += value.values.nbytes
        return float(total)
    if isinstance(value, DiagonalMatrix):
        return float(value.diag.nbytes)
    if isinstance(value, EdgeSparse):
        return value_nbytes(value.pattern) + value_nbytes(value.values)
    return 0.0


# ----------------------------------------------------------------------
# Input admission
# ----------------------------------------------------------------------
def validate_inputs(layer, g, feat, env: Optional[ShapeEnv] = None) -> None:
    """Admission gate for one executor call; raises :class:`GraniiInputError`.

    Checks, in order of cost:

    1. adjacency structure — square shape, ``indptr`` consistency, and
       column indices within ``num_nodes`` (a corrupted graph would
       otherwise wrap around silently inside the kernels);
    2. feature dtype — must be real floating or safely castable
       (integer); object/complex arrays fail fast;
    3. feature shape — one row per node, width equal to the layer's
       ``in_size`` (the plan's ``K1``);
    4. NaN/Inf contamination — a poisoned feature matrix propagates
       through every aggregation and corrupts all downstream rows.

    Skippable via ``REPRO_SKIP_VALIDATION=1`` for trusted pipelines.
    """
    adj = g.adj
    num_nodes = adj.shape[0]
    if adj.shape[0] != adj.shape[1]:
        raise GraniiInputError(
            f"adjacency must be square; got {adj.shape}"
        )
    if adj.indptr.shape[0] != num_nodes + 1 or int(adj.indptr[-1]) != adj.nnz:
        raise GraniiInputError(
            f"adjacency indptr is inconsistent: length {adj.indptr.shape[0]} "
            f"for {num_nodes} nodes, end {int(adj.indptr[-1])} for "
            f"{adj.nnz} edges"
        )
    if adj.nnz and int(adj.indices.max()) >= num_nodes:
        raise GraniiInputError(
            f"edge endpoint {int(adj.indices.max())} is out of range for a "
            f"graph with {num_nodes} nodes — rebuild the graph or drop the "
            f"offending edges before optimizing"
        )
    if adj.nnz and int(adj.indices.min()) < 0:
        raise GraniiInputError(
            f"negative edge endpoint {int(adj.indices.min())}; NumPy would "
            f"silently wrap it to the end of the feature matrix"
        )

    data = feat.data if isinstance(feat, Tensor) else feat
    data = np.asarray(data)
    if data.dtype == object or np.issubdtype(data.dtype, np.complexfloating):
        raise GraniiInputError(
            f"feature dtype {data.dtype} is not usable; supply a real "
            f"floating (or integer) array"
        )
    if data.ndim != 2:
        raise GraniiInputError(
            f"features must be 2-D (num_nodes, in_size); got shape "
            f"{data.shape}"
        )
    if data.shape[0] != num_nodes:
        raise GraniiInputError(
            f"features have {data.shape[0]} rows but the graph has "
            f"{num_nodes} nodes (after self-loop handling); align the "
            f"feature matrix with the node set"
        )
    expected_k = env["K1"] if env is not None and "K1" in env else getattr(
        layer, "in_size", None
    )
    if expected_k is not None and data.shape[1] != expected_k:
        raise GraniiInputError(
            f"features have width {data.shape[1]} but the layer (and its "
            f"compiled plans) expect in_size={expected_k}"
        )
    if np.issubdtype(data.dtype, np.floating) and data.size:
        finite = np.isfinite(data)
        if not finite.all():
            bad = int(data.size - int(finite.sum()))
            rows = np.unique(np.nonzero(~finite)[0])[:5]
            raise GraniiInputError(
                f"features contain {bad} non-finite values (NaN/Inf), e.g. "
                f"in rows {rows.tolist()}; aggregation would spread them to "
                f"every reachable node"
            )


# ----------------------------------------------------------------------
# Execution budgets
# ----------------------------------------------------------------------
@dataclass
class ExecutionBudget:
    """Wall-clock and memory limits for one plan execution.

    ``deadline_seconds``/``memory_budget_bytes`` of ``None`` disable the
    respective check.  ``on_step`` is called by :meth:`Plan.execute`
    after every kernel, so breaches surface between steps instead of
    after a doomed run completes.
    """

    deadline_seconds: Optional[float] = None
    memory_budget_bytes: Optional[float] = None
    _started: float = field(default=0.0, repr=False)
    _resident_bytes: float = field(default=0.0, repr=False)

    @classmethod
    def for_plan(
        cls, predicted_seconds: Optional[float] = None
    ) -> "ExecutionBudget":
        """Budget from the env knobs plus an optional cost prediction."""
        floor = config.deadline_floor_seconds()
        deadline: Optional[float] = floor if floor > 0 else None
        if predicted_seconds is not None and predicted_seconds > 0:
            slack = config.deadline_slack()
            if slack > 0:
                deadline = max(floor, predicted_seconds * slack)
        return cls(
            deadline_seconds=deadline,
            memory_budget_bytes=config.mem_budget_bytes(),
        )

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._started

    def start(self) -> None:
        self._started = time.perf_counter()
        self._resident_bytes = 0.0

    def check_estimate(
        self,
        plan: Plan,
        env: ShapeEnv,
        precomputed: Optional[float] = None,
        extra_bytes: float = 0.0,
    ) -> None:
        """Pre-execution gate on the plan's estimated peak memory.

        ``precomputed`` supplies an estimate already derived for this
        exact (plan, env) — the static analyzer proves one at selection
        time — so the hot path skips re-walking every step's liveness.
        ``extra_bytes`` accounts strategy-specific residency outside the
        plan's own intermediates (the sharded strategy's shared-memory
        segments live in /dev/shm, but they are this plan's footprint).
        """
        if self.memory_budget_bytes is None:
            return
        estimate = (
            precomputed if precomputed is not None
            else plan.peak_memory_bytes(env)
        ) + extra_bytes
        if estimate > self.memory_budget_bytes:
            detail = (
                f" (includes {extra_bytes / 2**20:.1f} MiB of shared-memory "
                f"segments)" if extra_bytes else ""
            )
            raise GraniiMemoryError(
                f"plan {plan.name!r} estimates a peak of "
                f"{estimate / 2**20:.1f} MiB{detail}, over the "
                f"{self.memory_budget_bytes / 2**20:.1f} MiB budget "
                f"(REPRO_MEM_BUDGET_MB)",
                budget=self.memory_budget_bytes,
                observed=estimate,
            )

    def on_step(self, step, value) -> None:
        """Per-kernel budget check, raising on the first breach."""
        if self.deadline_seconds is not None:
            elapsed = self.elapsed_seconds
            if elapsed > self.deadline_seconds:
                raise GraniiDeadlineError(
                    f"step {getattr(step, 'out', step)!r} pushed execution "
                    f"to {elapsed * 1e3:.0f} ms, past the "
                    f"{self.deadline_seconds * 1e3:.0f} ms deadline "
                    f"(REPRO_DEADLINE_SLACK / REPRO_DEADLINE_FLOOR_MS)",
                    budget=self.deadline_seconds,
                    observed=elapsed,
                )
        if self.memory_budget_bytes is not None:
            self._resident_bytes += value_nbytes(value)
            if self._resident_bytes > self.memory_budget_bytes:
                raise GraniiMemoryError(
                    f"intermediates reached "
                    f"{self._resident_bytes / 2**20:.1f} MiB after step "
                    f"{getattr(step, 'out', step)!r}, over the "
                    f"{self.memory_budget_bytes / 2**20:.1f} MiB budget",
                    budget=self.memory_budget_bytes,
                    observed=self._resident_bytes,
                )


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-key failure counters with trip threshold and cooldown.

    Keys are ``(primitive, strategy)`` pairs.  After ``threshold``
    recorded failures the key *trips*: :meth:`is_open` returns True for
    ``cooldown_seconds``, during which the engine's strategy selection
    excludes it and the guarded executor skips rungs that would use it.
    When the cooldown elapses the key resets fully (closed, count zero),
    restoring the strategy to the candidate pool.

    All mutation happens under an internal lock: the serving runtime
    calls one breaker from many worker threads at once (per-tenant
    breakers are shared by every in-flight request of that tenant), so
    count/trip transitions must be atomic — two threads racing the
    threshold must produce exactly one trip.

    ``clock`` is injectable so tests can drive cooldown expiry without
    sleeping.
    """

    def __init__(
        self,
        threshold: Optional[int] = None,
        cooldown_seconds: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self.threshold = (
            threshold if threshold is not None else config.breaker_threshold()
        )
        self.cooldown_seconds = (
            cooldown_seconds
            if cooldown_seconds is not None
            else config.breaker_cooldown_seconds()
        )
        self._clock = clock
        self._lock = threading.RLock()
        self._failures: Dict[Tuple[str, str], int] = {}
        self._open_until: Dict[Tuple[str, str], float] = {}

    def _expire(self, key: Tuple[str, str]) -> None:
        until = self._open_until.get(key)
        if until is not None and self._clock() >= until:
            del self._open_until[key]
            self._failures.pop(key, None)

    def record_failure(self, primitive: str, strategy: str) -> bool:
        """Count one failure; returns True if the key just tripped."""
        key = (primitive, strategy)
        with self._lock:
            self._expire(key)
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.threshold and key not in self._open_until:
                self._open_until[key] = self._clock() + self.cooldown_seconds
                return True
            return False

    def record_success(self, primitive: str, strategy: str) -> None:
        """A successful call closes the failure streak for its key."""
        key = (primitive, strategy)
        with self._lock:
            if key not in self._open_until:
                self._failures.pop(key, None)

    def is_open(self, primitive: str, strategy: str) -> bool:
        key = (primitive, strategy)
        with self._lock:
            self._expire(key)
            return key in self._open_until

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Serializable view of the breaker state (for reports)."""
        with self._lock:
            now = self._clock()
            state: Dict[str, Dict[str, float]] = {}
            for key, count in self._failures.items():
                entry = state.setdefault(
                    "/".join(key), {"failures": float(count), "open": 0.0}
                )
                entry["failures"] = float(count)
            for key, until in self._open_until.items():
                entry = state.setdefault(
                    "/".join(key),
                    {"failures": float(self._failures.get(key, 0)), "open": 0.0},
                )
                entry["open"] = 1.0
                entry["reopens_in_seconds"] = max(0.0, until - now)
            return state


# ----------------------------------------------------------------------
# The fallback ladder
# ----------------------------------------------------------------------
@dataclass
class DemotionRecord:
    """One rung-to-rung demotion of a guarded executor."""

    from_label: str
    to_label: str
    reason: str  # kernel_error | deadline | memory | verification | breaker_open | input
    error_type: str = ""
    message: str = ""
    step: str = ""
    primitive: str = ""
    seconds: float = 0.0

    def describe(self) -> str:
        detail = f" at step {self.step!r}" if self.step else ""
        err = f" [{self.error_type}]" if self.error_type else ""
        return (
            f"{self.from_label} -> {self.to_label} ({self.reason}{err}"
            f"{detail}, {1e3 * self.seconds:.1f} ms)"
        )


def _failure_reason(exc: BaseException) -> str:
    if isinstance(exc, GraniiDeadlineError):
        return "deadline"
    if isinstance(exc, (GraniiMemoryError, MemoryError)):
        return "memory"
    return "kernel_error"


class GuardedExecutor:
    """Walks the plan ladder, demoting on failure; final rung is the
    baseline message-passing forward.

    Rungs are ``(planned, strategy)`` pairs: the chosen plan under its
    selected aggregation strategy first, then the same plan under the
    reference ``row_segment`` kernels (a strategy bug must not disqualify
    a healthy composition), then the remaining surviving plans cheapest
    first.  A rung that fails is retired for the life of the executor;
    the per-(primitive, strategy) circuit breaker additionally steers
    *future* selections away from a repeatedly failing strategy until
    its cooldown elapses.
    """

    def __init__(self, engine, layer, selection) -> None:
        self.engine = engine
        self.layer = layer
        self.selection = selection
        self.rungs: List[Tuple[object, str]] = []
        chosen = selection.chosen
        primary = selection.spmm_strategy
        self.rungs.append((chosen, primary))
        if primary == "spmm_sharded":
            # worker death / IPC timeout demotes to the in-process tiled
            # kernel before falling all the way back to row_segment
            self.rungs.append((chosen, "blocked"))
        if primary == "spmm_fused":
            # a compiled-plan failure demotes to the step-by-step tiled
            # interpreter first — same workspace, no fusion
            self.rungs.append((chosen, "blocked"))
        if primary != "row_segment":
            self.rungs.append((chosen, "row_segment"))
        for planned in getattr(selection, "ranked", []):
            if planned is not chosen:
                self.rungs.append((planned, "row_segment"))
        self.rung = 0
        self._verified_rungs: set = set()
        self._setup_caches: Dict[Tuple[int, str, int], Dict[str, object]] = {}
        self._env_cache: Dict[int, ShapeEnv] = {}
        self._reference_demotion_logged = False

    # ------------------------------------------------------------------
    @property
    def on_reference(self) -> bool:
        return self.rung >= len(self.rungs)

    def _rung_label(self, index: int) -> str:
        if index >= len(self.rungs):
            return "reference"
        planned, strategy = self.rungs[index]
        return f"{planned.label}#{planned.plan.name}@{strategy}"

    def _predicted_seconds(self, planned) -> Optional[float]:
        costs = getattr(self.selection, "predicted_costs", None) or {}
        return costs.get(f"{planned.label}#{planned.plan.name}")

    def _env_for(self, g) -> ShapeEnv:
        key = id(g)
        env = self._env_cache.get(key)
        if env is None:
            env = shape_env_for(g.adj, self.layer)
            self._env_cache[key] = env
        return env

    def _demote(
        self,
        reason: str,
        exc: Optional[BaseException] = None,
        seconds: float = 0.0,
    ) -> None:
        record = DemotionRecord(
            from_label=self._rung_label(self.rung),
            to_label=self._rung_label(self.rung + 1),
            reason=reason,
            error_type=type(exc).__name__ if exc is not None else "",
            message=str(exc) if exc is not None else "",
            step=str(getattr(exc, "granii_step", "") or ""),
            primitive=str(getattr(exc, "granii_primitive", "") or ""),
            seconds=seconds,
        )
        planned, strategy = self.rungs[self.rung]
        if exc is not None and reason in ("kernel_error", "deadline", "memory"):
            primitive = record.primitive or "plan"
            self.engine.breakers.record_failure(primitive, strategy)
            if primitive in ("spmm_unweighted", "spmm_fused"):
                # strategy-level accounting shared by the spmm flavours
                # (the ladder's breaker gate keys on ("spmm", strategy))
                self.engine.breakers.record_failure("spmm", strategy)
        self.selection.record_demotion(
            record, breaker_state=self.engine.breakers.snapshot()
        )
        self.rung += 1

    # ------------------------------------------------------------------
    def _static_peak_estimate(self, plan, env) -> Optional[float]:
        """Peak-memory estimate proved at selection time, if applicable.

        The analyzer's verdict binds a specific (plan, shape-env) pair;
        the fact is only reused when the executor is about to run that
        exact pair — otherwise return None and let the budget recompute.
        Reuse is recorded on ``selection.runtime_checks_skipped``.
        """
        verdict = getattr(self.selection, "analysis", None)
        if (
            verdict is None
            or not verdict.ok
            or plan is not self.selection.chosen.plan
        ):
            return None
        estimate = verdict.facts.get("peak_memory_bytes")
        if estimate is None:
            return None
        from ..analysis.planlint import analysis_env_key

        if verdict.env_key != analysis_env_key(env):
            return None
        self.selection.record_runtime_check_skipped("memory_estimate:static")
        return estimate

    # ------------------------------------------------------------------
    def _run_rung(self, g, feat):
        planned, strategy = self.rungs[self.rung]
        plan = planned.plan
        mode = "tensor" if isinstance(feat, Tensor) else "numpy"
        # the compiled fused schedule bypasses the autograd tape, so only
        # inference may take the one-pass numpy path; a training-mode
        # engine keeps tensor mode (the bare fused kernel still runs
        # inside the taped spmm op, bitwise-identical forward)
        fused_inference = (
            strategy == "spmm_fused"
            and mode == "tensor"
            and self.engine.mode == "inference"
        )
        if fused_inference:
            mode = "numpy"
        env = self._env_for(g)
        budget = ExecutionBudget.for_plan(self._predicted_seconds(planned))
        deadline_at = getattr(self.selection, "deadline_at", None)
        if deadline_at is not None:
            # a serving request's end-to-end deadline clamps every rung's
            # kernel budget: no rung may outlive the request it serves
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise GraniiDeadlineError(
                    "request deadline exhausted before plan execution "
                    "started (REPRO_SERVE_DEADLINE_MS / request deadline)",
                    budget=0.0,
                    observed=-remaining,
                )
            if budget.deadline_seconds is None:
                budget.deadline_seconds = remaining
            else:
                budget.deadline_seconds = min(
                    budget.deadline_seconds, remaining
                )
        precomputed = None
        if budget.memory_budget_bytes is not None:
            precomputed = self._static_peak_estimate(plan, env)
        extra_bytes = 0.0
        if strategy == "spmm_sharded" and budget.memory_budget_bytes is not None:
            from ..kernels.sharded import estimate_segment_bytes

            extra_bytes = estimate_segment_bytes(
                int(env["N"]), int(env["N"]), int(env["E"]), int(env["K1"])
            )
        budget.check_estimate(
            plan, env, precomputed=precomputed, extra_bytes=extra_bytes
        )
        kernel_config = None
        if strategy != "row_segment":
            kernel_config = KernelExecutionConfig(
                strategy=strategy,
                block_nnz=self.engine.block_nnz,
                num_threads=self.engine.num_threads,
                num_workers=self.engine.num_workers,
            )
        binding = build_binding(
            self.layer, g, feat, mode, self.engine.system.degree_method
        )
        cache = self._setup_caches.setdefault((id(g), mode, self.rung), {})
        try:
            out = plan.execute(
                binding,
                mode=mode,
                setup_cache=cache,
                kernel_config=kernel_config,
                budget=budget,
            )
        except Exception:
            # a failed run may have left a partially warmed workspace in
            # the rung's setup cache; drop it so a retry starts clean
            from .plan import WORKSPACE_CACHE_KEY

            arena = cache.pop(WORKSPACE_CACHE_KEY, None)
            if arena is not None:
                arena.drop_buffers()
            raise
        self.engine.breakers.record_success("spmm", strategy)
        if fused_inference:
            out = Tensor(np.asarray(out))  # callers expect the feat's kind
        return out

    def __call__(self, g, feat, *args, **kwargs):
        if not config.skip_validation():
            validate_inputs(self.layer, g, feat, env=None)
        attempts: List[Tuple[str, str, str]] = []
        while not self.on_reference:
            planned, strategy = self.rungs[self.rung]
            if strategy != "row_segment" and self.engine.breakers.is_open(
                "spmm", strategy
            ):
                self._demote("breaker_open")
                continue
            t0 = time.perf_counter()
            try:
                out = self._run_rung(g, feat)
            except GraniiInputError:
                raise  # inputs are bad for every rung; no demotion helps
            except Exception as exc:
                elapsed = time.perf_counter() - t0
                attempts.append(
                    (self._rung_label(self.rung), _failure_reason(exc), repr(exc))
                )
                self._demote(_failure_reason(exc), exc, seconds=elapsed)
                deadline_at = getattr(self.selection, "deadline_at", None)
                if (
                    isinstance(exc, GraniiDeadlineError)
                    and deadline_at is not None
                    and time.monotonic() >= deadline_at
                ):
                    # the *request* deadline (not just this rung's budget)
                    # is spent: walking further down the ladder can only
                    # finish later than the caller will wait
                    raise
                continue
            if self.engine.verify_plans and self.rung not in self._verified_rungs:
                self._verified_rungs.add(self.rung)
                ok, note = self.engine._verify_against_reference(
                    self.layer, planned.plan, g, feat, out
                )
                self.selection.record_verification(ok, note)
                if not ok:
                    attempts.append(
                        (self._rung_label(self.rung), "verification", note)
                    )
                    self._demote("verification", seconds=time.perf_counter() - t0)
                    continue
            return out
        # final rung: the baseline message-passing composition
        if not self._reference_demotion_logged:
            self._reference_demotion_logged = True
        try:
            return reference_forward(self.layer, g, feat)
        except Exception as exc:
            raise GraniiExecutionError(
                f"every rung of the fallback ladder failed for "
                f"{type(self.layer).__name__}; attempts: "
                f"{[a[0] for a in attempts] + ['reference']}",
                attempts=attempts
                + [("reference", _failure_reason(exc), repr(exc))],
            ) from exc
