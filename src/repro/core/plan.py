"""Executable plans lowered from association-tree candidates.

A :class:`Plan` is one promoted candidate made concrete:

- **kernel calls** — the symbolic :class:`~repro.kernels.registry.KernelCall`
  list for costing, split into *setup* calls (graph-only sparse
  precomputation, amortised across iterations — e.g. GCN's Ñ, GIN's B)
  and *per-iteration* calls;
- **backward calls** — the training-mode gradient kernels induced by the
  chosen forward (GRANII does not optimise the backward pass, §VI-C, but
  its shape follows the forward choice);
- **executors** — NumPy-mode (inference) and Tensor-mode (autograd)
  interpreters that actually run the composition.

Classification policy: a step is *setup* iff all its transitive inputs
are graph leaves (adjacency, degree diagonal, ε) **and** it produces a
sparse result — i.e. it materialises a reusable sparse matrix.  Dynamic
normalization's broadcasts and degree reads stay per-iteration, exactly
as message-passing frameworks execute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..kernels import (
    KernelCall,
    WorkspaceArena,
    elu,
    gemm,
    get_semiring,
    gspmm,
    leaky_relu,
    relu,
    row_broadcast,
    sddmm_diag_scale,
    sigmoid,
    spadd_diag,
    spmm,
    spmm_unweighted,
)
from ..kernels.registry import dispatch_kernel, transient_bytes
from ..sparse import CSRMatrix, DiagonalMatrix
from ..tensor import Tensor
from ..tensor import elu as t_elu
from ..tensor import leaky_relu as t_leaky_relu
from ..tensor import relu as t_relu
from ..tensor import row_broadcast as t_row_broadcast
from ..tensor import spmm as t_spmm
from ..tensor import spmm_edge as t_spmm_edge
from .assoc import Candidate, Step
from .ir import ShapeEnv

__all__ = [
    "EdgeSparse",
    "KernelExecutionConfig",
    "LayerBinding",
    "Plan",
    "GRAPH_LEAVES",
    "WORKSPACE_CACHE_KEY",
]

GRAPH_LEAVES = {"A", "D", "Dm", "Ds", "Eps", "T"}

# Reserved setup-cache slot holding the plan's WorkspaceArena.  Kept out
# of the value environment (it is not a step result) but persisted with
# the cache so scratch tiles survive across iterations.
WORKSPACE_CACHE_KEY = "__workspace__"


@dataclass(frozen=True)
class KernelExecutionConfig:
    """How the executor should run its sparse aggregations.

    ``strategy`` is one of :data:`~repro.kernels.spmm.SPMM_STRATEGIES`;
    ``block_nnz``/``num_threads``/``num_workers`` tune the blocked and
    sharded strategies and are ignored by the one-shot ones.  ``None``
    knobs defer to the kernel defaults (``REPRO_BLOCK_NNZ`` /
    ``REPRO_NUM_THREADS`` / ``REPRO_NUM_WORKERS``).  In tensor mode the
    config steers the *forward* aggregation only — backward SpMMs stay on
    the reference kernel (see :mod:`repro.tensor.sparse_ops`).
    """

    strategy: str = "row_segment"
    block_nnz: Optional[int] = None
    num_threads: Optional[int] = None
    num_workers: Optional[int] = None


def _tensor_spmm_knobs(kernel_config: Optional["KernelExecutionConfig"]) -> dict:
    """Keyword knobs for the tensor-mode spmm ops (empty -> kernel defaults)."""
    if kernel_config is None:
        return {}
    return {
        "strategy": kernel_config.strategy,
        "block_nnz": kernel_config.block_nnz,
        "num_threads": kernel_config.num_threads,
        "num_workers": kernel_config.num_workers,
    }


_SPMM_SEMIRINGS = {"spmm": ("sum", "mul"), "spmm_unweighted": ("sum", "copy_rhs")}


@dataclass
class EdgeSparse:
    """A sparse matrix whose values are an autograd edge tensor (GAT's α)."""

    pattern: CSRMatrix
    values: Tensor


@dataclass
class LayerBinding:
    """Runtime values for a plan's leaves plus the attention sub-programs."""

    values: Dict[str, object]
    attention_fn: Optional[Callable] = None  # (pattern, theta, mode) -> CSR | EdgeSparse
    fused_attention_fn: Optional[Callable] = None  # (pattern, theta, value, mode)


def _resolve(env: ShapeEnv, dim) -> int:
    """Resolve a symbolic dim, supporting 'X+Y' sums."""
    if isinstance(dim, int):
        return dim
    if "+" in dim:
        return sum(env.resolve(part) for part in dim.split("+"))
    return env.resolve(dim)


class Plan:
    """One lowered candidate."""

    def __init__(self, candidate: Candidate, name: str = "") -> None:
        self.candidate = candidate
        self.name = name or candidate.output[:60]
        self.steps: List[Step] = candidate.ordered_steps()
        self._graph_only = self._taint_graph_only()
        self._setup_steps = [
            s for s in self.steps
            if self._graph_only[s.out] and s.out_desc.attr == "sparse"
        ]
        setup_outs = {s.out for s in self._setup_steps}
        # setup also includes steps feeding only setup steps
        changed = True
        while changed:
            changed = False
            consumers: Dict[str, Set[str]] = {}
            for s in self.steps:
                for a in s.args:
                    consumers.setdefault(a, set()).add(s.out)
            for s in self.steps:
                if s.out in setup_outs or not self._graph_only[s.out]:
                    continue
                cons = consumers.get(s.out, set())
                if cons and cons <= setup_outs:
                    setup_outs.add(s.out)
                    changed = True
        self._setup_outs = setup_outs
        self._iter_steps = [s for s in self.steps if s.out not in setup_outs]
        self._setup_steps = [s for s in self.steps if s.out in setup_outs]
        self._calls_memo: Dict[tuple, Tuple[List[KernelCall], List[KernelCall]]] = {}
        self._bwd_memo: Dict[tuple, List[KernelCall]] = {}

    # ------------------------------------------------------------------
    def _taint_graph_only(self) -> Dict[str, bool]:
        taint: Dict[str, bool] = {}

        def leaf_taint(ref: str) -> bool:
            return ref in GRAPH_LEAVES

        for step in self.steps:
            flags = []
            for arg in step.args:
                flags.append(taint[arg] if arg in taint else leaf_taint(arg))
            taint[step.out] = all(flags)
        return taint

    @property
    def setup_steps(self) -> List[Step]:
        return list(self._setup_steps)

    @property
    def iteration_steps(self) -> List[Step]:
        return list(self._iter_steps)

    @property
    def primitives(self) -> Tuple[str, ...]:
        return self.candidate.primitives

    def describe(self) -> str:
        return self.candidate.describe()

    # ------------------------------------------------------------------
    # Kernel-call expansion
    # ------------------------------------------------------------------
    def _step_calls(self, step: Step, env: ShapeEnv) -> List[KernelCall]:
        p = step.primitive
        descs = step.arg_descs
        out = step.out_desc
        n_rows = _resolve(env, out.shape[0])
        if p == "gemm":
            a, b = descs
            return [KernelCall("gemm", {
                "m": _resolve(env, a.shape[0]),
                "k": _resolve(env, a.shape[1]),
                "n": _resolve(env, b.shape[1]),
            }, tag=step.out)]
        if p in ("spmm", "spmm_unweighted"):
            sp, dn = descs
            return [KernelCall(p, {
                "m": _resolve(env, sp.shape[0]),
                "nnz": _resolve(env, sp.nnz),
                "k": _resolve(env, dn.shape[1]),
            }, tag=step.out)]
        if p == "sddmm_diag":
            sp = next(d for d in descs if d.is_sparse_matrix)
            return [KernelCall("sddmm_diag", {
                "m": n_rows, "nnz": _resolve(env, sp.nnz),
            }, tag=step.out)]
        if p == "diag_mul":
            return [KernelCall("diag_mul", {"m": n_rows}, tag=step.out)]
        if p == "spadd_diag":
            sp = next(d for d in descs if d.is_sparse_matrix)
            return [KernelCall("spadd_diag", {
                "m": n_rows, "nnz": _resolve(env, sp.nnz),
            }, tag=step.out)]
        if p == "spgemm":
            lhs, rhs = descs
            return [KernelCall("spgemm", {
                "m": n_rows,
                "nnz": _resolve(env, lhs.nnz),
                "nnz_rhs": _resolve(env, rhs.nnz),
                "nnz_out": _resolve(env, out.nnz),
            }, tag=step.out)]
        if p == "row_broadcast":
            _, dn = descs
            return [KernelCall("row_broadcast", {
                "m": _resolve(env, dn.shape[0]),
                "k": _resolve(env, dn.shape[1]),
            }, tag=step.out)]
        if p == "elementwise":
            k_cols = _resolve(env, out.shape[1]) if out.attr == "dense" else 1
            copies = max(1, len(descs) - 1)
            return [
                KernelCall("elementwise", {"m": n_rows, "k": k_cols}, tag=step.out)
                for _ in range(copies)
            ]
        if p == "attention":
            pattern, theta = descs
            n = _resolve(env, pattern.shape[0])
            nnz = _resolve(env, pattern.nnz)
            k = _resolve(env, theta.shape[1])
            return [
                KernelCall("gemm", {"m": n, "k": k, "n": 1}, tag=f"{step.out}:score_l"),
                KernelCall("gemm", {"m": n, "k": k, "n": 1}, tag=f"{step.out}:score_r"),
                KernelCall("gsddmm_attn", {"m": n, "nnz": nnz}, tag=f"{step.out}:logits"),
                KernelCall("edge_softmax", {"m": n, "nnz": nnz}, tag=f"{step.out}:softmax"),
            ]
        if p == "fused_attn_spmm":
            pattern, theta, value = descs
            n = _resolve(env, pattern.shape[0])
            nnz = _resolve(env, pattern.nnz)
            k_theta = _resolve(env, theta.shape[1])
            k_value = _resolve(env, value.shape[1])
            # the per-node attention scores stay as two thin GEMVs; the
            # logits + softmax + aggregation run as one fused kernel
            return [
                KernelCall("gemm", {"m": n, "k": k_theta, "n": 1}, tag=f"{step.out}:score_l"),
                KernelCall("gemm", {"m": n, "k": k_theta, "n": 1}, tag=f"{step.out}:score_r"),
                KernelCall(
                    "fused_attn_spmm", {"m": n, "nnz": nnz, "k": k_value},
                    tag=f"{step.out}:fused",
                ),
            ]
        raise KeyError(f"no kernel expansion for primitive {p!r}")

    def _leaf_prep_calls(
        self, env: ShapeEnv, degree_method: str
    ) -> Tuple[List[KernelCall], List[KernelCall]]:
        """(setup, per-iteration) preparation calls for graph leaves."""
        setup: List[KernelCall] = []
        per_iter: List[KernelCall] = []
        used_by_iter = {a for s in self._iter_steps for a in s.args}
        used_at_all = {a for s in self.steps for a in s.args}
        for diag_leaf in ("D", "Dm", "Ds"):
            if diag_leaf in used_at_all:
                n = env.resolve("N")
                nnz = env.resolve("E")
                degree = KernelCall(
                    f"degree_{degree_method}", {"m": n, "nnz": nnz},
                    tag=f"prep:{diag_leaf}:degree",
                )
                power = KernelCall(
                    "elementwise", {"m": n, "k": 1}, tag=f"prep:{diag_leaf}:pow"
                )
                target = per_iter if diag_leaf in used_by_iter else setup
                target.extend([degree, power])
        return setup, per_iter

    def kernel_calls(
        self, env: ShapeEnv, degree_method: str = "indptr"
    ) -> Tuple[List[KernelCall], List[KernelCall]]:
        """(setup_calls, per_iteration_calls) of the forward pass."""
        memo_key = (tuple(sorted(env.items())), degree_method)
        cached = self._calls_memo.get(memo_key)
        if cached is not None:
            return cached
        setup, per_iter = self._leaf_prep_calls(env, degree_method)
        for step in self._setup_steps:
            setup.extend(self._step_calls(step, env))
        for step in self._iter_steps:
            per_iter.extend(self._step_calls(step, env))
        self._calls_memo[memo_key] = (setup, per_iter)
        return setup, per_iter

    def backward_calls(self, env: ShapeEnv) -> List[KernelCall]:
        """Per-iteration gradient kernels induced by this forward plan."""
        memo_key = tuple(sorted(env.items()))
        cached = self._bwd_memo.get(memo_key)
        if cached is not None:
            return cached
        calls: List[KernelCall] = []
        for step in self._iter_steps:
            p = step.primitive
            fwd = self._step_calls(step, env)
            if p == "gemm":
                # dA = dY·B^T and dB = A^T·dY
                calls.extend(
                    KernelCall("gemm", dict(c.shape), tag=f"bwd:{c.tag}")
                    for c in fwd for _ in range(2)
                )
            elif p in ("spmm", "spmm_unweighted"):
                # dX = A^T·dY; plus dE (an SDDMM) when the sparse operand
                # itself carries gradients (attention values).
                calls.extend(
                    KernelCall(p, dict(c.shape), tag=f"bwd:{c.tag}") for c in fwd
                )
                sp = step.arg_descs[0]
                if not self._graph_only.get(sp.ref, sp.ref in GRAPH_LEAVES):
                    calls.append(KernelCall("sddmm", {
                        "m": _resolve(env, sp.shape[0]),
                        "nnz": _resolve(env, sp.nnz),
                        "k": _resolve(env, step.arg_descs[1].shape[1]),
                    }, tag=f"bwd:{step.out}:dedge"))
            elif p == "attention":
                # softmax backward + logit scatter + score GEMV grads
                calls.extend(
                    KernelCall(c.primitive, dict(c.shape), tag=f"bwd:{c.tag}")
                    for c in fwd
                )
            else:
                calls.extend(
                    KernelCall(c.primitive, dict(c.shape), tag=f"bwd:{c.tag}")
                    for c in fwd
                )
        self._bwd_memo[memo_key] = calls
        return calls

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def _value_bytes(self, desc, env: ShapeEnv) -> float:
        if desc.attr == "dense":
            return 8.0 * _resolve(env, desc.shape[0]) * _resolve(env, desc.shape[1])
        if desc.is_diagonal:
            return 8.0 * _resolve(env, desc.shape[0])
        # CSR: values + column indices + row pointer
        return 16.0 * _resolve(env, desc.nnz) + 8.0 * _resolve(env, desc.shape[0])

    def peak_memory_bytes(self, env: ShapeEnv) -> float:
        """Liveness-based peak resident bytes of one forward execution.

        Counts leaf inputs, intermediate results (freed after their last
        consumer), and per-step transient workspace (this substrate's
        SpMM/SDDMM materialise per-edge messages; the fused attention
        kernel notably does not — part of fusion's appeal).  The paper's
        Figure 8 leaves cells empty where baselines ran out of memory;
        this estimate is what lets the runtime select around such cells.
        """
        last_use: Dict[str, int] = {}
        for i, step in enumerate(self.steps):
            for arg in step.args:
                last_use[arg] = i
        leaf_descs = {}
        for step in self.steps:
            for arg, desc in zip(step.args, step.arg_descs):
                leaf_descs[arg] = desc
        # resident leaves: everything ever referenced
        live: Dict[str, float] = {
            ref: self._value_bytes(desc, env)
            for ref, desc in leaf_descs.items()
            if "(" not in ref  # leaves only; intermediates added as produced
        }
        peak = total = sum(live.values())
        for i, step in enumerate(self.steps):
            workspace = 0.0
            s_calls = self._step_calls(step, env)
            for call in s_calls:
                workspace += transient_bytes(call.primitive, call.shape)  # streaming, no nnz×k blowup
            out_bytes = self._value_bytes(step.out_desc, env)
            total += out_bytes
            peak = max(peak, total + workspace)
            # free intermediates whose last consumer is this step
            for arg in step.args:
                if "(" in arg and last_use.get(arg) == i and arg in live:
                    total -= live.pop(arg)
            live[step.out] = out_bytes
        return peak

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        binding: LayerBinding,
        mode: str = "numpy",
        setup_cache: Optional[Dict[str, object]] = None,
        kernel_config: Optional[KernelExecutionConfig] = None,
        budget=None,
    ):
        """Run the plan; returns the output value.

        ``setup_cache`` (if provided) persists graph-only sparse results
        across calls — the runtime passes one cache per (plan, graph).
        When ``kernel_config`` selects a blocked strategy, the cache also
        carries the :class:`~repro.kernels.workspace.WorkspaceArena`, so
        scratch tiles are allocated once and reused every iteration.

        ``budget`` (an :class:`~repro.core.guard.ExecutionBudget`) is
        consulted after every step — wall-clock deadline and resident
        intermediate bytes — so a runaway plan is stopped *between*
        kernels rather than only noticed at the end.  Every step runs
        through :func:`~repro.kernels.registry.dispatch_kernel`, the
        wrappable seam faults and instrumentation attach to; an escaping
        exception is annotated with ``granii_step`` / ``granii_primitive``
        so the guard can attribute the failure.
        """
        if mode not in ("numpy", "tensor"):
            raise ValueError("mode must be 'numpy' or 'tensor'")
        workspace = None
        if kernel_config is not None and kernel_config.strategy in (
            "blocked", "spmm_fused"
        ):
            if setup_cache is not None:
                workspace = setup_cache.get(WORKSPACE_CACHE_KEY)
                if workspace is None:
                    workspace = WorkspaceArena()
                    setup_cache[WORKSPACE_CACHE_KEY] = workspace
            else:
                workspace = WorkspaceArena()
        env: Dict[str, object] = dict(binding.values)
        if setup_cache:
            env.update(
                (k, v) for k, v in setup_cache.items()
                if k != WORKSPACE_CACHE_KEY
            )
        if budget is not None:
            budget.start()
        if (
            mode == "numpy"
            and kernel_config is not None
            and kernel_config.strategy == "spmm_fused"
        ):
            # local import: codegen imports Plan from this module
            from .codegen import compile_plan

            schedule = compile_plan(self).schedule
        else:
            schedule = [("step", s) for s in self.steps]
        for kind, item in schedule:
            if kind == "fused":
                segment = item
                if segment.out in env:
                    continue
                try:
                    value = dispatch_kernel(
                        "spmm_fused",
                        lambda: _execute_fused_segment(
                            segment, env, kernel_config, workspace
                        ),
                        tag=segment.out,
                    )
                except Exception as exc:
                    _annotate_failure(exc, segment.spmm)
                    raise
                env[segment.out] = value
                if budget is not None:
                    tail = (
                        segment.epilogues[-1] if segment.epilogues
                        else segment.spmm
                    )
                    budget.on_step(tail, value)
                continue
            step = item
            if step.out in env:
                continue
            try:
                value = dispatch_kernel(
                    step.primitive,
                    lambda: _execute_step(
                        step, env, mode, binding, kernel_config, workspace
                    ),
                    tag=step.out,
                )
            except Exception as exc:
                _annotate_failure(exc, step)
                raise
            env[step.out] = value
            if setup_cache is not None and step.out in self._setup_outs:
                setup_cache[step.out] = value
            if budget is not None:
                budget.on_step(step, value)
        return env[self.candidate.output]


def _annotate_failure(exc: BaseException, step: Step) -> None:
    """Tag an escaping exception with the step that raised it (best effort)."""
    if getattr(exc, "granii_step", None) is not None:
        return
    try:
        exc.granii_step = step.out
        exc.granii_primitive = step.primitive
    except (AttributeError, TypeError):  # pragma: no cover - slotted exc
        pass


def _execute_fused_segment(
    segment,
    env: Dict[str, object],
    kernel_config: Optional[KernelExecutionConfig] = None,
    workspace: Optional[WorkspaceArena] = None,
):
    """Run one compiled fused segment through ``gspmm_fused``.

    ``segment`` is a :class:`~repro.analysis.planlint.FusionSegmentSpec`:
    the aggregation step plus the (legality-proven) absorbed pre-scale
    ``row_broadcast`` and epilogue chain.  Absorbed member outputs never
    enter ``env`` — only the tail value does.
    """
    from ..kernels.compiled import gspmm_fused

    spmm_step = segment.spmm
    p = spmm_step.primitive
    sp = env[spmm_step.args[0]]
    if isinstance(sp, EdgeSparse):
        sp = sp.pattern.with_values(sp.values.data)
        p = "spmm"
    pre = None
    if segment.pre_scale is not None:
        # the spmm's dense operand is the absorbed broadcast's input
        pre = np.asarray(
            env[segment.pre_scale.args[0]].diag, dtype=np.float64
        )
        dn = env[segment.pre_scale.args[1]]
    else:
        dn = env[spmm_step.args[1]]
    epilogues = []
    for step in segment.epilogues:
        if step.primitive == "row_broadcast":
            epilogues.append(
                ("scale", np.asarray(env[step.args[0]].diag, dtype=np.float64))
            )
        else:
            epilogues.append(("nonlinear", step.meta))
    return gspmm_fused(
        sp,
        _as_numpy(dn),
        get_semiring(*_SPMM_SEMIRINGS[p]),
        block_nnz=kernel_config.block_nnz if kernel_config else None,
        workspace=workspace,
        pre_scale=pre,
        epilogues=tuple(epilogues),
    )


def _execute_step(
    step: Step,
    env: Dict[str, object],
    mode: str,
    binding: LayerBinding,
    kernel_config: Optional[KernelExecutionConfig] = None,
    workspace: Optional[WorkspaceArena] = None,
):
    p = step.primitive
    args = [env[a] for a in step.args]
    if p == "gemm":
        a, b = args
        if mode == "tensor":
            return _as_tensor(a) @ _as_tensor(b)
        return gemm(_as_numpy(a), _as_numpy(b))
    if p in ("spmm", "spmm_unweighted"):
        sp, dn = args
        if isinstance(sp, EdgeSparse):
            if mode == "tensor":
                return t_spmm_edge(
                    sp.pattern,
                    sp.values,
                    _as_tensor(dn),
                    **_tensor_spmm_knobs(kernel_config),
                )
            sp = sp.pattern.with_values(sp.values.data)
            p = "spmm"
        elif mode == "tensor":
            return t_spmm(sp, _as_tensor(dn), **_tensor_spmm_knobs(kernel_config))
        if kernel_config is not None:
            return gspmm(
                sp,
                _as_numpy(dn),
                get_semiring(*_SPMM_SEMIRINGS[p]),
                strategy=kernel_config.strategy,
                block_nnz=kernel_config.block_nnz,
                num_threads=kernel_config.num_threads,
                num_workers=kernel_config.num_workers,
                workspace=workspace,
            )
        if p == "spmm_unweighted":
            return spmm_unweighted(sp, _as_numpy(dn))
        return spmm(sp, _as_numpy(dn))
    if p == "sddmm_diag":
        descs = step.arg_descs
        sparse_idx = next(i for i, d in enumerate(descs) if d.is_sparse_matrix)
        sp = args[sparse_idx]
        diags = [a for i, a in enumerate(args) if i != sparse_idx]
        left = diags[0] if sparse_idx > 0 else DiagonalMatrix(np.ones(sp.shape[0]))
        if sparse_idx == 0:
            right = diags[0]
        else:
            right = diags[1] if len(diags) > 1 else DiagonalMatrix(np.ones(sp.shape[1]))
        return sddmm_diag_scale(sp, left, right)
    if p == "diag_mul":
        a, b = args
        return DiagonalMatrix(a.diag * b.diag)
    if p == "spadd_diag":
        descs = step.arg_descs
        sparse_idx = next(i for i, d in enumerate(descs) if d.is_sparse_matrix)
        sp = args[sparse_idx]
        dg = args[1 - sparse_idx]
        return spadd_diag(sp, dg.diag)
    if p == "spgemm":
        from ..kernels import spgemm as k_spgemm

        return k_spgemm(args[0], args[1])
    if p == "row_broadcast":
        d, x = args
        if mode == "tensor":
            return t_row_broadcast(d.diag, _as_tensor(x))
        return row_broadcast(d.diag, _as_numpy(x))
    if p == "elementwise":
        if step.meta == "add" or len(args) > 1:
            total = args[0]
            for other in args[1:]:
                total = total + other
            return total
        return _apply_nonlinear(step.meta, args[0], mode)
    if p == "attention":
        if binding.attention_fn is None:
            raise RuntimeError("plan needs an attention_fn in its binding")
        pattern, theta = args
        return binding.attention_fn(pattern, theta, mode)
    if p == "fused_attn_spmm":
        if binding.fused_attention_fn is None:
            raise RuntimeError("plan needs a fused_attention_fn in its binding")
        pattern, theta, value = args
        return binding.fused_attention_fn(pattern, theta, value, mode)
    raise KeyError(f"no executor for primitive {p!r}")


_NONLINEAR_NUMPY = {"relu": relu, "elu": elu, "leaky_relu": leaky_relu, "sigmoid": sigmoid}
_NONLINEAR_TENSOR = {"relu": t_relu, "elu": t_elu, "leaky_relu": t_leaky_relu}


def _apply_nonlinear(name: str, value, mode: str):
    if mode == "tensor":
        try:
            return _NONLINEAR_TENSOR[name](_as_tensor(value))
        except KeyError:
            raise KeyError(f"no tensor nonlinearity {name!r}") from None
    try:
        return _NONLINEAR_NUMPY[name](_as_numpy(value))
    except KeyError:
        raise KeyError(f"no numpy nonlinearity {name!r}") from None


def _as_numpy(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value)


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)
