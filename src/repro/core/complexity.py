"""Analytic per-operation complexities (paper Figure 3).

Derives, for each promoted composition of a model, the symbolic
complexity of every primitive it executes — the same per-operation
complexity annotations Figure 3 attaches to the GCN and GAT
compositions (N nodes, E edges, K1/K2 embedding sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .assoc import Step
from .codegen import CompiledModel, compile_model

__all__ = ["ComplexityRow", "composition_complexities", "step_complexity"]


@dataclass(frozen=True)
class ComplexityRow:
    composition: str
    primitive: str
    complexity: str
    phase: str  # 'setup' or 'iteration'


def _sym(dim) -> str:
    return str(dim)


def step_complexity(step: Step) -> str:
    """Symbolic big-O of one step (per Figure 3's conventions)."""
    p = step.primitive
    descs = step.arg_descs
    out = step.out_desc
    if p == "gemm":
        a, b = descs
        return f"O({_sym(a.shape[0])}·{_sym(a.shape[1])}·{_sym(b.shape[1])})"
    if p in ("spmm", "spmm_unweighted"):
        sp, dn = descs
        return f"O({_sym(sp.nnz)}·{_sym(dn.shape[1])})"
    if p in ("sddmm_diag", "spadd_diag"):
        sp = next(d for d in descs if d.is_sparse_matrix)
        return f"O({_sym(sp.nnz)})"
    if p == "diag_mul":
        return f"O({_sym(out.shape[0])})"
    if p == "row_broadcast":
        _, dn = descs
        return f"O({_sym(dn.shape[0])}·{_sym(dn.shape[1])})"
    if p == "elementwise":
        cols = out.shape[1] if out.attr == "dense" else 1
        return f"O({_sym(out.shape[0])}·{_sym(cols)})"
    if p == "attention":
        pattern, theta = descs
        return f"O({_sym(pattern.nnz)} + {_sym(pattern.shape[0])}·{_sym(theta.shape[1])})"
    if p == "fused_attn_spmm":
        pattern, _, value = descs
        return f"O({_sym(pattern.nnz)}·{_sym(value.shape[1])})"
    if p == "spgemm":
        lhs, rhs = descs
        return f"O({_sym(lhs.nnz)}·{_sym(rhs.nnz)}/N)"
    raise KeyError(f"no complexity rule for {p!r}")


def composition_complexities(model_name: str, **model_kwargs) -> List[ComplexityRow]:
    """Figure 3-style rows for every promoted composition of a model."""
    compiled: CompiledModel = compile_model(model_name, **model_kwargs)
    rows: List[ComplexityRow] = []
    for planned in compiled.promoted:
        plan = planned.plan
        setup_outs = {s.out for s in plan.setup_steps}
        label = f"{planned.label} [{'/'.join(planned.scenarios)}]"
        for step in plan.steps:
            rows.append(
                ComplexityRow(
                    composition=label,
                    primitive=step.primitive,
                    complexity=step_complexity(step),
                    phase="setup" if step.out in setup_outs else "iteration",
                )
            )
    return rows
