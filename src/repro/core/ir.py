"""GRANII's matrix intermediate representation (paper §IV-B).

The IR is a tree whose leaves are *matrices with attributes* (Table I) and
whose interior nodes are matrix operations.  Two properties distinguish it
from ordinary tensor computation graphs:

1. **Associative operations are n-ary**: adjacent multiplications collapse
   into one ``MatMul`` level (Figure 6(b)), which is what lets the
   association-tree generator enumerate *all* re-associations instead of
   being stuck with the order the user happened to write.
2. **Leaves carry matrix attributes** — dense (data/weight), sparse
   (weighted/unweighted/diagonal) — which the rule table uses to decide
   which sparse/dense primitive realises each association.

Shapes are symbolic: dimensions are strings ("N", "K1", "K2") resolved by
a :class:`ShapeEnv` at selection time, so one compiled candidate set
serves every input graph and embedding size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import GraniiAnalysisError

__all__ = [
    "Dim",
    "ShapeEnv",
    "Leaf",
    "MatMul",
    "Add",
    "RowBroadcast",
    "Nonlinear",
    "Attention",
    "IRNode",
    "dense_data",
    "dense_weight",
    "sparse_unweighted",
    "sparse_weighted",
    "diagonal",
    "flatten",
]

Dim = Union[str, int]


class ShapeEnv(dict):
    """Maps symbolic dimension names to concrete integers."""

    def resolve(self, dim: Dim) -> int:
        if isinstance(dim, int):
            return dim
        if dim not in self:
            raise GraniiAnalysisError(
                f"unresolved symbolic dimension {dim!r} "
                f"(bound symbols: {sorted(map(str, self))})"
            )
        return int(self[dim])


@dataclass(frozen=True)
class Leaf:
    """A matrix leaf: name, symbolic shape, and Table I attributes.

    Sparse leaves additionally carry a symbolic nonzero count (``nnz``,
    e.g. "E") so association candidates can be costed without the input.
    """

    name: str
    shape: Tuple[Dim, Dim]
    attr: str  # 'dense' | 'sparse'
    subattr: str  # dense: 'data'|'weight'; sparse: 'weighted'|'unweighted'|'diagonal'
    nnz: Optional[Dim] = None

    def __post_init__(self) -> None:
        valid = {
            "dense": {"data", "weight"},
            "sparse": {"weighted", "unweighted", "diagonal"},
        }
        if self.attr not in valid:
            raise ValueError(f"unknown attr {self.attr!r}")
        if self.subattr not in valid[self.attr]:
            raise ValueError(
                f"sub-attribute {self.subattr!r} invalid for attr {self.attr!r}"
            )
        if self.attr == "sparse" and self.nnz is None:
            # diagonal nnz equals the dimension; other sparse leaves must say.
            if self.subattr == "diagonal":
                object.__setattr__(self, "nnz", self.shape[0])
            else:
                raise ValueError("non-diagonal sparse leaves need an nnz symbol")

    @property
    def is_diagonal(self) -> bool:
        return self.subattr == "diagonal"

    def describe(self) -> str:
        return f"{self.name}[{self.shape[0]}x{self.shape[1]}:{self.attr}.{self.subattr}]"


@dataclass(frozen=True)
class MatMul:
    """An n-ary associative matrix-multiplication level."""

    children: Tuple["IRNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("MatMul needs at least two children")


@dataclass(frozen=True)
class Add:
    """An n-ary associative (and commutative) matrix addition."""

    children: Tuple["IRNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("Add needs at least two children")


@dataclass(frozen=True)
class RowBroadcast:
    """Row broadcast ``c[i,j] = d[i] * x[i,j]`` (Equation 1).

    ``vec`` must be a diagonal leaf; the rewrite pass eliminates this node
    by converting it into a multiplication by the diagonal matrix.
    """

    vec: "IRNode"
    mat: "IRNode"


@dataclass(frozen=True)
class Nonlinear:
    """A non-linear function — a re-association barrier (§IV-B)."""

    name: str  # 'relu' | 'elu' | 'leaky_relu' | ...
    child: "IRNode"


@dataclass(frozen=True)
class Attention:
    """GAT's attention computation (Equation 4) as an opaque sub-program.

    Produces a sparse weighted matrix α over ``pattern``'s nonzeros from
    the updated features ``theta`` (itself an IR expression, normally
    ``MatMul(H, W)`` — the shared subexpression the reuse composition
    exploits).
    """

    pattern: Leaf
    theta: "IRNode"


IRNode = Union[Leaf, MatMul, Add, RowBroadcast, Nonlinear, Attention]


# ----------------------------------------------------------------------
# Leaf constructors
# ----------------------------------------------------------------------
def dense_data(name: str, rows: Dim, cols: Dim) -> Leaf:
    return Leaf(name, (rows, cols), "dense", "data")


def dense_weight(name: str, rows: Dim, cols: Dim) -> Leaf:
    return Leaf(name, (rows, cols), "dense", "weight")


def sparse_unweighted(name: str, rows: Dim, cols: Dim, nnz: Dim = "E") -> Leaf:
    return Leaf(name, (rows, cols), "sparse", "unweighted", nnz)


def sparse_weighted(name: str, rows: Dim, cols: Dim, nnz: Dim = "E") -> Leaf:
    return Leaf(name, (rows, cols), "sparse", "weighted", nnz)


def diagonal(name: str, size: Dim) -> Leaf:
    return Leaf(name, (size, size), "sparse", "diagonal")


# ----------------------------------------------------------------------
# Structural helpers
# ----------------------------------------------------------------------
def flatten(node: IRNode) -> IRNode:
    """Collapse nested associative levels: MatMul-in-MatMul, Add-in-Add."""
    if isinstance(node, Leaf):
        return node
    if isinstance(node, MatMul):
        children: List[IRNode] = []
        for child in node.children:
            child = flatten(child)
            if isinstance(child, MatMul):
                children.extend(child.children)
            else:
                children.append(child)
        return MatMul(tuple(children))
    if isinstance(node, Add):
        children = []
        for child in node.children:
            child = flatten(child)
            if isinstance(child, Add):
                children.extend(child.children)
            else:
                children.append(child)
        return Add(tuple(children))
    if isinstance(node, RowBroadcast):
        return RowBroadcast(flatten(node.vec), flatten(node.mat))
    if isinstance(node, Nonlinear):
        return Nonlinear(node.name, flatten(node.child))
    if isinstance(node, Attention):
        return Attention(node.pattern, flatten(node.theta))
    raise TypeError(f"unknown IR node {node!r}")


def dims_compatible(a: Dim, b: Dim) -> bool:
    """Whether two symbolic dims can denote the same size.

    Equal values always can; a symbol vs. an integer *might* (the binding
    is unknown until a :class:`ShapeEnv` resolves it); two distinct
    symbols, or two distinct integers, cannot.
    """
    if a == b:
        return True
    return isinstance(a, str) != isinstance(b, str)


def ir_shape(node: IRNode) -> Tuple[Dim, Dim]:
    """Symbolic (rows, cols) of an IR expression.

    Raises :class:`~repro.errors.GraniiAnalysisError` (naming the
    offending node) when the tree is dimensionally inconsistent: a
    ``MatMul`` whose adjacent factors disagree on the contraction dim, an
    ``Add`` over unequal shapes, or a ``RowBroadcast`` whose vector
    length cannot match the matrix rows.
    """
    if isinstance(node, Leaf):
        return node.shape
    if isinstance(node, MatMul):
        shapes = [ir_shape(c) for c in node.children]
        for left, right, lsh, rsh in zip(
            node.children, node.children[1:], shapes, shapes[1:]
        ):
            if not dims_compatible(lsh[1], rsh[0]):
                raise GraniiAnalysisError(
                    f"MatMul contraction mismatch: {ir_repr(left)} has "
                    f"{lsh[1]!r} columns but {ir_repr(right)} has "
                    f"{rsh[0]!r} rows, in {ir_repr(node)}",
                    node=ir_repr(node),
                )
        return (shapes[0][0], shapes[-1][1])
    if isinstance(node, Add):
        shapes = [ir_shape(c) for c in node.children]
        first = shapes[0]
        for child, shape in zip(node.children[1:], shapes[1:]):
            if not (
                dims_compatible(first[0], shape[0])
                and dims_compatible(first[1], shape[1])
            ):
                raise GraniiAnalysisError(
                    f"Add over unequal shapes: {ir_repr(node.children[0])} "
                    f"is {first!r} but {ir_repr(child)} is {shape!r}, "
                    f"in {ir_repr(node)}",
                    node=ir_repr(node),
                )
        return first
    if isinstance(node, RowBroadcast):
        vec_shape = ir_shape(node.vec)
        mat_shape = ir_shape(node.mat)
        if not dims_compatible(vec_shape[0], mat_shape[0]):
            raise GraniiAnalysisError(
                f"RowBroadcast length mismatch: vector {ir_repr(node.vec)} "
                f"has {vec_shape[0]!r} rows but matrix {ir_repr(node.mat)} "
                f"has {mat_shape[0]!r}",
                node=ir_repr(node),
            )
        return mat_shape
    if isinstance(node, Nonlinear):
        return ir_shape(node.child)
    if isinstance(node, Attention):
        theta_shape = ir_shape(node.theta)
        if not dims_compatible(node.pattern.shape[1], theta_shape[0]):
            raise GraniiAnalysisError(
                f"Attention mismatch: pattern {node.pattern.describe()} "
                f"columns {node.pattern.shape[1]!r} vs theta "
                f"{ir_repr(node.theta)} rows {theta_shape[0]!r}",
                node=ir_repr(node),
            )
        return node.pattern.shape
    raise TypeError(f"unknown IR node {node!r}")


def ir_leaves(node: IRNode) -> Iterator[Leaf]:
    """All leaves in an IR expression (depth-first, with duplicates)."""
    if isinstance(node, Leaf):
        yield node
    elif isinstance(node, (MatMul, Add)):
        for child in node.children:
            yield from ir_leaves(child)
    elif isinstance(node, RowBroadcast):
        yield from ir_leaves(node.vec)
        yield from ir_leaves(node.mat)
    elif isinstance(node, Nonlinear):
        yield from ir_leaves(node.child)
    elif isinstance(node, Attention):
        yield node.pattern
        yield from ir_leaves(node.theta)
    else:
        raise TypeError(f"unknown IR node {node!r}")


def ir_repr(node: IRNode) -> str:
    """Compact textual form, e.g. ``(D . A . D . H . W)``."""
    if isinstance(node, Leaf):
        return node.name
    if isinstance(node, MatMul):
        return "(" + " . ".join(ir_repr(c) for c in node.children) + ")"
    if isinstance(node, Add):
        return "(" + " + ".join(ir_repr(c) for c in node.children) + ")"
    if isinstance(node, RowBroadcast):
        return f"rb({ir_repr(node.vec)}, {ir_repr(node.mat)})"
    if isinstance(node, Nonlinear):
        return f"{node.name}({ir_repr(node.child)})"
    if isinstance(node, Attention):
        return f"atten({node.pattern.name}, {ir_repr(node.theta)})"
    raise TypeError(f"unknown IR node {node!r}")
