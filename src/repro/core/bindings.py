"""Binding builders: map model layers onto plan leaf values.

A plan's leaves are symbolic names (A, D, Eps, H, W, W0..); executing it
for a concrete layer requires the runtime values behind those names plus,
for GAT, the attention sub-program closure.  This module knows each model
type's mapping.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..framework import MPGraph
from ..kernels import edge_softmax as k_edge_softmax
from ..kernels import leaky_relu as k_leaky_relu, norm_diagonal
from ..models import (
    APPNPLayer,
    GATLayer,
    GCNLayer,
    GINLayer,
    SAGELayer,
    SGCLayer,
    TAGCNLayer,
)
from ..sparse import CSRMatrix, DiagonalMatrix
from ..tensor import Tensor, gsddmm_add_uv, leaky_relu
from ..tensor import edge_softmax as t_edge_softmax
from .plan import EdgeSparse, LayerBinding

__all__ = ["build_binding", "model_ir_name", "model_ir_kwargs"]


def model_ir_name(layer) -> str:
    """The IR-builder name for a layer instance."""
    mapping = {
        GCNLayer: "gcn",
        GINLayer: "gin",
        SGCLayer: "sgc",
        TAGCNLayer: "tagcn",
        GATLayer: "gat",
        SAGELayer: "sage",
        APPNPLayer: "appnp",
    }
    for cls, name in mapping.items():
        if isinstance(layer, cls):
            return name
    raise TypeError(f"GRANII has no IR builder for {type(layer).__name__}")


def model_ir_kwargs(layer) -> Dict[str, object]:
    """Hyper-parameters that change the layer's IR shape."""
    name = model_ir_name(layer)
    if name in ("gcn", "gat", "gin", "sage"):
        return {"activation": layer.activation}
    if name in ("sgc", "tagcn", "appnp"):
        return {"hops": layer.hops}
    return {}


def _weight(value, mode: str):
    return value if mode == "tensor" else value.data


def _gat_fused_attention_fn(layer: GATLayer):
    """The fused variant: scores → logits → softmax → aggregate, one step."""

    def fused(pattern: CSRMatrix, theta, value, mode: str):
        if mode == "tensor":
            theta_t = theta if isinstance(theta, Tensor) else Tensor(theta)
            value_t = value if isinstance(value, Tensor) else Tensor(value)
            score_dst = (theta_t @ layer.attn_l.reshape(-1, 1)).reshape(-1)
            score_src = (theta_t @ layer.attn_r.reshape(-1, 1)).reshape(-1)
            logits = gsddmm_add_uv(pattern, score_dst, score_src)
            logits = leaky_relu(logits, layer.negative_slope)
            alpha = t_edge_softmax(pattern, logits)
            from ..tensor import spmm_edge

            return spmm_edge(pattern, alpha, value_t)
        from ..kernels import fused_attention_aggregate

        theta_np = theta.data if isinstance(theta, Tensor) else np.asarray(theta)
        value_np = value.data if isinstance(value, Tensor) else np.asarray(value)
        return fused_attention_aggregate(
            pattern,
            value_np,
            theta_np @ layer.attn_l.data,
            theta_np @ layer.attn_r.data,
            layer.negative_slope,
        )

    return fused


def _gat_attention_fn(layer: GATLayer):
    """The attention sub-program (Equation 4) as a plan closure."""

    def attention(pattern: CSRMatrix, theta, mode: str):
        if mode == "tensor":
            theta_t = theta if isinstance(theta, Tensor) else Tensor(theta)
            score_dst = (theta_t @ layer.attn_l.reshape(-1, 1)).reshape(-1)
            score_src = (theta_t @ layer.attn_r.reshape(-1, 1)).reshape(-1)
            logits = gsddmm_add_uv(pattern, score_dst, score_src)
            logits = leaky_relu(logits, layer.negative_slope)
            return EdgeSparse(pattern, t_edge_softmax(pattern, logits))
        theta_np = theta.data if isinstance(theta, Tensor) else np.asarray(theta)
        score_dst = theta_np @ layer.attn_l.data
        score_src = theta_np @ layer.attn_r.data
        rows, cols = pattern.row_ids(), pattern.indices
        logits = k_leaky_relu(
            score_dst[rows] + score_src[cols], layer.negative_slope
        )
        return k_edge_softmax(pattern, logits)

    return attention


def _norm_diag(
    adj: CSRMatrix, power: float, degree_method: str = "indptr"
) -> DiagonalMatrix:
    """Degree diagonal; weighted adjacencies use weighted degrees."""
    if adj.is_weighted:
        from ..sparse import degree_vector

        return DiagonalMatrix(degree_vector(adj, "out")).power(power)
    return norm_diagonal(adj, power, method=degree_method)


def build_binding(
    layer, g: MPGraph, feat, mode: str, degree_method: str = "indptr"
) -> LayerBinding:
    """Runtime leaf values for one (layer, graph, features) triple.

    Weighted adjacencies are preserved for the convolutional models
    (their plans compile against a weighted A leaf); GAT always operates
    on the pattern — its attention defines the edge values.
    ``degree_method`` selects the degree kernel behind the D/Dm/Ds leaves
    ('indptr' | 'binning'), matching the system personality executing the
    plan.
    """
    name = model_ir_name(layer)
    adj = g.adj if g.adj.is_weighted and name != "gat" else g.adj.unweighted()
    if mode == "tensor" and not isinstance(feat, Tensor):
        feat = Tensor(feat)
    if mode == "numpy" and isinstance(feat, Tensor):
        feat = feat.data
    values: Dict[str, object] = {"A": adj, "H": feat}
    if name in ("gcn", "sgc"):
        values["D"] = _norm_diag(adj, -0.5, degree_method)
        values["W"] = _weight(layer.linear.weight, mode)
        return LayerBinding(values)
    if name == "tagcn":
        values["D"] = _norm_diag(adj, -0.5, degree_method)
        for i, filt in enumerate(layer.filters):
            values[f"W{i}"] = _weight(filt.weight, mode)
        return LayerBinding(values)
    if name == "gin":
        values["Eps"] = DiagonalMatrix(
            np.full(adj.shape[0], 1.0 + layer.eps)
        )
        values["W"] = _weight(layer.linear.weight, mode)
        return LayerBinding(values)
    if name == "gat":
        values["W"] = _weight(layer.linear.weight, mode)
        return LayerBinding(
            values,
            attention_fn=_gat_attention_fn(layer),
            fused_attention_fn=_gat_fused_attention_fn(layer),
        )
    if name == "sage":
        values["Dm"] = _norm_diag(adj, -1.0, degree_method)
        values["Wself"] = _weight(layer.self_linear.weight, mode)
        values["Wneigh"] = _weight(layer.neigh_linear.weight, mode)
        return LayerBinding(values)
    if name == "appnp":
        norm = _norm_diag(adj, -0.5, degree_method)
        values["D"] = norm
        values["Ds"] = DiagonalMatrix((1.0 - layer.alpha) * norm.diag)
        values["T"] = DiagonalMatrix(
            np.full(adj.shape[0], layer.alpha)
        )
        values["W"] = _weight(layer.linear.weight, mode)
        return LayerBinding(values)
    raise TypeError(f"no binding builder for model {name!r}")
