"""Differential plan-equivalence verification (the correctness harness).

GRANII's premise is that every enumerated association tree computes the
same mathematical function (paper §III) — which makes the candidate pool
*free differential-test coverage*: every plan, executed under every SpMM
strategy, must agree with the model's baseline message-passing forward
on any input graph.  This module systematises that check, in the spirit
of the differential testing autotuning compilers (TVM, Halide) apply to
their schedule spaces:

- :func:`adversarial_battery` — generated graphs targeting the
  structural edge cases that historically break sparse kernels (empty
  pattern, zero-degree rows, explicit self-loops, duplicate input edges,
  single node, disconnected components, power-law skew) plus zero-width
  feature matrices;
- :class:`ToleranceModel` — accept/reject thresholds that scale with
  the *accumulation depth* (max in-degree — the length of the longest
  floating-point reduction) instead of one fixed epsilon;
- :func:`sweep` — the zoo × systems × {inference, training} × plans ×
  strategies product.  Training checks run whole autograd iterations
  under :func:`~repro.kernels.spmm.spmm_strategy_override`, so each
  strategy's kernels are exercised in the backward pass too, and compare
  parameter/input gradients against the reference composition;
- :func:`shrink_failure` — a delta-debugging shrinker that bisects
  nodes, then undirected edges, down to a minimal failing graph;
- :func:`emit_pytest_repro` — renders a shrunk failure as a
  ready-to-commit pytest file driving :func:`run_single_check`;
- :func:`seeded_fault` — fault injection for exercising the harness
  itself (and demonstrating that a wrong kernel is caught and shrunk).

The same comparison machinery backs the engine's opt-in runtime
verification mode (``GraniiEngine(verify_plans=True)``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..framework import MPGraph, get_system
from ..graphs import (
    Graph,
    disconnected_cliques,
    duplicated_edges,
    empty_graph,
    isolated_union,
    path,
    rmat,
    self_loop_cycle,
    single_node,
    star,
)
from ..kernels import SPMM_STRATEGIES, spmm_strategy_override
from ..models import build_layer, uses_self_loops
from ..models.zoo import MODEL_NAMES
from ..sparse import CSRMatrix
from ..tensor import Tensor
from ..analysis.planlint import PlanVerdict, analyze_plan
from .bindings import build_binding, model_ir_kwargs
from .codegen import CompiledModel, PlannedCandidate, compile_model, select_default_plan
from .plan import KernelExecutionConfig

__all__ = [
    "CheckResult",
    "Tolerance",
    "ToleranceModel",
    "VerificationReport",
    "adversarial_battery",
    "emit_pytest_repro",
    "run_single_check",
    "seeded_fault",
    "shrink_failure",
    "sweep",
]

# (in_size, out_size) scenarios swept per graph: one per embedding-size
# branch of Figure 7, plus the zero-width feature matrix.
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((5, 3), (2, 4), (0, 3))

VERIFY_MODES: Tuple[str, ...] = ("inference", "training")


# ----------------------------------------------------------------------
# Tolerance model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Tolerance:
    """Accept thresholds for one (graph, mode, plan) comparison."""

    rtol: float
    atol: float
    depth: int

    def allclose(self, a: np.ndarray, b: np.ndarray) -> bool:
        if a.shape != b.shape:
            return False
        return bool(np.allclose(a, b, rtol=self.rtol, atol=self.atol))


class ToleranceModel:
    """Depth-scaled tolerances for plan-equivalence comparisons.

    Summing ``d`` float64 terms carries a worst-case relative error of
    O(d·eps); reassociating the sum (which is exactly what a different
    plan does) can realise that bound.  A fixed epsilon is therefore
    either too loose on sparse graphs or too tight on skewed ones.  The
    thresholds here grow linearly with the *accumulation depth* — the
    maximum in-degree, i.e. the longest per-row reduction — and with the
    plan's step count (each chained kernel compounds rounding).
    Training doubles the chain (forward + backward), covered by
    ``training_factor``.
    """

    def __init__(
        self,
        base_rtol: float = 4e-12,
        base_atol: float = 1e-12,
        training_factor: float = 4.0,
    ) -> None:
        self.base_rtol = float(base_rtol)
        self.base_atol = float(base_atol)
        self.training_factor = float(training_factor)

    def accumulation_depth(self, adj: CSRMatrix) -> int:
        deg = adj.row_degrees()
        return int(deg.max()) if deg.size else 0

    def for_graph(
        self, adj: CSRMatrix, mode: str = "inference", num_steps: int = 1
    ) -> Tolerance:
        depth = self.accumulation_depth(adj)
        factor = (1.0 + depth) * max(1, int(num_steps))
        if mode == "training":
            factor *= self.training_factor
        return Tolerance(self.base_rtol * factor, self.base_atol * factor, depth)


# ----------------------------------------------------------------------
# Battery
# ----------------------------------------------------------------------
def adversarial_battery(quick: bool = False) -> List[Graph]:
    """Generated graphs spanning the structural edge cases.

    Every graph is small enough for exhaustive plan × strategy sweeps;
    the non-quick battery adds larger skewed instances so depth-scaled
    tolerances and blocking boundaries (multi-span tiles) are exercised.
    """
    graphs = [
        empty_graph(8),                      # every row empty
        single_node(),                       # smallest valid input
        isolated_union(18, 6, seed=1),       # zero-degree rows amid real ones
        self_loop_cycle(10),                 # explicit self-loops kept
        duplicated_edges(12, 4.0, seed=2),   # duplicate COO input collapsed
        disconnected_cliques(2, 4),          # reducible block-diagonal
        star(16),                            # worst-case degree skew
        rmat(48, 4.0, seed=5, name="rmat_48"),  # power-law degrees
    ]
    if not quick:
        graphs += [
            path(40),                        # max diameter, min density
            star(96),                        # deep single-row accumulation
            isolated_union(48, 16, seed=7),
            rmat(160, 8.0, seed=11, name="rmat_160"),
            disconnected_cliques(4, 6),
        ]
    return graphs


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class CheckResult:
    """One (model, system, mode, graph, plan, strategy) comparison."""

    model: str
    system: str
    mode: str
    strategy: str
    graph: str
    num_nodes: int
    num_edges: int
    plan_index: int
    plan_label: str
    plan_signature: str
    in_size: int
    out_size: int
    rtol: float
    atol: float
    depth: int
    max_abs_err: float
    max_rel_err: float
    passed: bool
    worst_quantity: str = "output"
    system_default: bool = False
    detail: str = ""
    repro_path: str = ""
    # populated when the failure was delta-debugged: the minimal graph
    # the emitted repro pins (-1 = not shrunk)
    shrunk_num_nodes: int = -1
    shrunk_num_edges: int = -1

    def describe(self) -> str:
        status = "ok" if self.passed else "DIVERGED"
        return (
            f"[{status}] {self.model}/{self.system}/{self.mode} "
            f"graph={self.graph} plan#{self.plan_index}({self.plan_label}) "
            f"strategy={self.strategy} K=({self.in_size}->{self.out_size}) "
            f"max_abs={self.max_abs_err:.3e} max_rel={self.max_rel_err:.3e} "
            f"(rtol={self.rtol:.1e}, atol={self.atol:.1e}, depth={self.depth})"
        )


@dataclass
class VerificationReport:
    """The sweep's full result set plus run metadata."""

    results: List[CheckResult] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_checks(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"plan-equivalence sweep: {self.num_checks} checks, "
            f"{len(self.failures)} divergent"
        ]
        finite = [
            r.max_abs_err for r in self.results if np.isfinite(r.max_abs_err)
        ]
        if finite:
            lines.append(f"worst absolute error: {max(finite):.3e}")
        for r in self.failures:
            lines.append("  " + r.describe())
            if r.repro_path:
                lines.append(f"    repro: {r.repro_path}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON form: per-(model, system, mode, strategy) roll-ups plus
        full rows for failures only — a committed artifact stays small
        while every divergence remains fully diagnosable."""
        cells: Dict[Tuple[str, str, str, str], Dict[str, object]] = {}
        for r in self.results:
            key = (r.model, r.system, r.mode, r.strategy)
            cell = cells.setdefault(
                key,
                {
                    "model": r.model,
                    "system": r.system,
                    "mode": r.mode,
                    "strategy": r.strategy,
                    "checks": 0,
                    "divergent": 0,
                    "max_abs_err": 0.0,
                    "max_rel_err": 0.0,
                },
            )
            cell["checks"] += 1
            if not r.passed:
                cell["divergent"] += 1
            if np.isfinite(r.max_abs_err):
                cell["max_abs_err"] = max(cell["max_abs_err"], r.max_abs_err)
                cell["max_rel_err"] = max(cell["max_rel_err"], r.max_rel_err)
        return {
            "meta": dict(self.meta),
            "summary": {
                "checks": self.num_checks,
                "divergent": len(self.failures),
                "passed": self.passed,
            },
            "cells": [cells[k] for k in sorted(cells)],
            "failures": [vars(r).copy() for r in self.failures],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, default=float)
            fh.write("\n")


# ----------------------------------------------------------------------
# Single-check execution
# ----------------------------------------------------------------------
def _max_errors(a: np.ndarray, b: np.ndarray) -> Tuple[float, float]:
    """(max absolute, max relative) error; inf on shape mismatch or NaN."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf"), float("inf")
    if a.size == 0:
        return 0.0, 0.0
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        if np.array_equal(a, b):  # identical infs are agreement
            return 0.0, 0.0
        return float("inf"), float("inf")
    diff = np.abs(a - b)
    denom = np.abs(b)
    rel = diff / np.where(denom > 0, denom, 1.0)
    return float(diff.max()), float(rel.max())


def _mp_graph(graph: Graph, model: str) -> MPGraph:
    adj = graph.adj_with_self_loops() if uses_self_loops(model) else graph.adj
    return MPGraph(adj)


def _make_feats(graph: Graph, in_size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 1009 * graph.num_nodes + in_size)
    return rng.standard_normal((graph.num_nodes, in_size))


def _make_cotangent(n: int, out_size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 7919)
    return rng.standard_normal((n, out_size))


def _zero_param_grads(layer) -> None:
    for p in layer.parameters():
        p.zero_grad()


def _collect_grads(layer, feat: Tensor) -> Dict[str, np.ndarray]:
    grads: Dict[str, np.ndarray] = {}
    for name, p in layer.named_parameters():
        grads[f"grad:{name}"] = (
            np.zeros_like(p.data) if p.grad is None else p.grad.copy()
        )
    grads["grad:input"] = (
        np.zeros_like(feat.data) if feat.grad is None else feat.grad.copy()
    )
    return grads


def _reference_outputs(
    layer, mp: MPGraph, feats: np.ndarray, mode: str, cotangent: np.ndarray
) -> Dict[str, np.ndarray]:
    """Run the baseline message-passing forward (and backward)."""
    feat = Tensor(feats, requires_grad=(mode == "training"))
    if mode == "inference":
        from ..tensor import no_grad

        with no_grad():
            out = layer.forward(mp, feat)
        return {"output": np.asarray(out.data)}
    _zero_param_grads(layer)
    out = layer.forward(mp, feat)
    out.backward(cotangent)
    quantities = {"output": np.asarray(out.data)}
    quantities.update(_collect_grads(layer, feat))
    return quantities


def _plan_outputs(
    layer,
    planned: PlannedCandidate,
    mp: MPGraph,
    feats: np.ndarray,
    mode: str,
    strategy: str,
    degree_method: str,
    cotangent: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Execute one plan under one strategy, mirroring the reference."""
    if mode == "inference":
        binding = build_binding(layer, mp, feats, "numpy", degree_method)
        config = KernelExecutionConfig(strategy=strategy)
        out = planned.plan.execute(binding, mode="numpy", kernel_config=config)
        return {"output": np.asarray(out)}
    _zero_param_grads(layer)
    feat = Tensor(feats, requires_grad=True)
    binding = build_binding(layer, mp, feat, "tensor", degree_method)
    with spmm_strategy_override(strategy):
        out = planned.plan.execute(binding, mode="tensor")
        out.backward(cotangent)
    quantities = {"output": np.asarray(out.data)}
    quantities.update(_collect_grads(layer, feat))
    return quantities


def _check_plan(
    layer,
    planned: PlannedCandidate,
    plan_index: int,
    graph: Graph,
    model: str,
    system_name: str,
    mode: str,
    strategy: str,
    in_size: int,
    out_size: int,
    tol_model: ToleranceModel,
    seed: int,
    reference: Optional[Dict[str, np.ndarray]] = None,
    system_default: bool = False,
) -> CheckResult:
    system = get_system(system_name)
    mp = _mp_graph(graph, model)
    feats = _make_feats(graph, in_size, seed)
    cotangent = _make_cotangent(graph.num_nodes, out_size, seed)
    if reference is None:
        reference = _reference_outputs(layer, mp, feats, mode, cotangent)
    tol = tol_model.for_graph(
        mp.adj, mode=mode, num_steps=len(planned.plan.steps)
    )
    detail = ""
    try:
        candidate = _plan_outputs(
            layer, planned, mp, feats, mode, strategy,
            system.degree_method, cotangent,
        )
    except Exception as exc:  # crash is a divergence too
        candidate = None
        detail = f"{type(exc).__name__}: {exc}"
    max_abs = max_rel = float("inf")
    worst = "output"
    passed = False
    if candidate is not None:
        passed = True
        max_abs = max_rel = 0.0
        for name, ref_val in reference.items():
            got = candidate.get(name)
            if got is None:
                passed, worst = False, name
                max_abs = max_rel = float("inf")
                detail = f"missing quantity {name!r}"
                break
            abs_err, rel_err = _max_errors(got, ref_val)
            if abs_err > max_abs:
                max_abs, worst = abs_err, name
            max_rel = max(max_rel, rel_err)
            if not tol.allclose(got, ref_val):
                passed = False
                worst = name
    return CheckResult(
        model=model,
        system=system_name,
        mode=mode,
        strategy=strategy,
        graph=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        plan_index=plan_index,
        plan_label=planned.label,
        plan_signature=planned.plan.candidate.output,
        in_size=in_size,
        out_size=out_size,
        rtol=tol.rtol,
        atol=tol.atol,
        depth=tol.depth,
        max_abs_err=max_abs,
        max_rel_err=max_rel,
        passed=passed,
        worst_quantity=worst,
        system_default=system_default,
        detail=detail,
    )


def _compile_for_model(model: str, layer) -> CompiledModel:
    return compile_model(model, **model_ir_kwargs(layer))


def run_single_check(
    model: str,
    system: str,
    mode: str,
    strategy: str,
    plan_signature: str,
    rows: Sequence[int],
    cols: Sequence[int],
    num_nodes: int,
    in_size: int,
    out_size: int,
    seed: int = 0,
    tol_model: Optional[ToleranceModel] = None,
) -> CheckResult:
    """Re-run one comparison from its serialised coordinates.

    This is the entry point emitted into pytest repro files: the graph
    arrives as raw COO (full directed edge list, duplicates summed into
    the pattern) and the plan is located by its stable candidate output
    signature.
    """
    adj = CSRMatrix.from_coo(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        None,
        (num_nodes, num_nodes),
    ).unweighted()
    graph = Graph(adj, name=f"repro_{num_nodes}")
    layer = build_layer(
        model, in_size, out_size, rng=np.random.default_rng(seed)
    )
    compiled = _compile_for_model(model, layer)
    matches = [
        (i, p) for i, p in enumerate(compiled.promoted)
        if p.plan.candidate.output == plan_signature
    ]
    if not matches:
        raise ValueError(
            f"no promoted {model} plan with signature {plan_signature!r}"
        )
    plan_index, planned = matches[0]
    return _check_plan(
        layer, planned, plan_index, graph, model, system, mode, strategy,
        in_size, out_size, tol_model or ToleranceModel(), seed,
    )


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------
def _undirected_edges(adj: CSRMatrix) -> np.ndarray:
    """Unique undirected edges (u <= v) including self-loops, as (m, 2)."""
    rows, cols, _ = adj.to_coo()
    mask = rows <= cols
    return np.stack([rows[mask], cols[mask]], axis=1)


def _graph_from_edges(edges: np.ndarray, n: int, name: str) -> Graph:
    if edges.size:
        u, v = edges[:, 0], edges[:, 1]
        non_loop = u != v
        rows = np.concatenate([u, v[non_loop]])
        cols = np.concatenate([v, u[non_loop]])
    else:
        rows = cols = np.empty(0, dtype=np.int64)
    adj = CSRMatrix.from_coo(rows, cols, None, (n, n)).unweighted()
    return Graph(adj, name=name)


def shrink_failure(
    still_fails: Callable[[Graph], bool],
    graph: Graph,
    max_checks: int = 200,
) -> Graph:
    """Delta-debug ``graph`` down to a minimal input where the check fails.

    Greedy two-phase ddmin: drop contiguous node chunks (induced
    subgraph) at halving granularity, then drop undirected-edge chunks
    the same way.  ``still_fails`` must return True while the failure
    reproduces; the budget bounds total predicate evaluations so a slow
    check cannot stall the sweep.
    """
    budget = [max_checks]

    def check(g: Graph) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return bool(still_fails(g))
        except Exception:
            return True  # a crash on the smaller input still reproduces

    # --- node phase -------------------------------------------------
    current = graph
    chunk = max(1, current.num_nodes // 2)
    while chunk >= 1 and budget[0] > 0:
        shrunk = False
        start = 0
        while start < current.num_nodes and current.num_nodes > 1:
            n = current.num_nodes
            keep = np.concatenate(
                [np.arange(0, start), np.arange(min(start + chunk, n), n)]
            )
            if keep.size == 0 or keep.size == n:
                start += chunk
                continue
            candidate = current.induced_subgraph(
                keep, name=f"{graph.name}_shrunk"
            )
            if check(candidate):
                current = candidate
                shrunk = True  # same start now addresses the next chunk
            else:
                start += chunk
        if not shrunk:
            chunk //= 2
        else:
            chunk = min(chunk, max(1, current.num_nodes // 2))

    # --- edge phase -------------------------------------------------
    edges = _undirected_edges(current.adj)
    n = current.num_nodes
    chunk = max(1, edges.shape[0] // 2)
    while chunk >= 1 and edges.shape[0] > 0 and budget[0] > 0:
        shrunk = False
        start = 0
        while start < edges.shape[0]:
            keep = np.concatenate(
                [edges[:start], edges[start + chunk:]], axis=0
            )
            if keep.shape[0] == edges.shape[0]:
                start += chunk
                continue
            candidate = _graph_from_edges(keep, n, f"{graph.name}_shrunk")
            if check(candidate):
                edges = keep
                current = candidate
                shrunk = True
            else:
                start += chunk
        if not shrunk:
            chunk //= 2
    return current


_REPRO_TEMPLATE = '''"""Auto-generated by `python -m repro.verify` — minimal failing case.

{header}
Delete this file once the underlying divergence is fixed; it pins the
shrunk graph so the regression cannot silently return.
"""

import numpy as np

from repro.core.verify import run_single_check

ROWS = {rows}
COLS = {cols}
NUM_NODES = {num_nodes}


def test_plan_equivalence_regression():
    result = run_single_check(
        model={model!r},
        system={system!r},
        mode={mode!r},
        strategy={strategy!r},
        plan_signature={signature!r},
        rows=ROWS,
        cols=COLS,
        num_nodes=NUM_NODES,
        in_size={in_size},
        out_size={out_size},
        seed={seed},
    )
    assert result.passed, result.describe()
'''


def emit_pytest_repro(
    path: str, failure: CheckResult, graph: Graph, seed: int = 0
) -> str:
    """Write a self-contained pytest file reproducing ``failure``."""
    rows, cols, _ = graph.adj.to_coo()
    header = (
        f"model={failure.model} system={failure.system} mode={failure.mode} "
        f"strategy={failure.strategy}\nplan#{failure.plan_index} "
        f"({failure.plan_label}): {failure.plan_signature}\n"
        f"max_abs_err={failure.max_abs_err:.3e} "
        f"(rtol={failure.rtol:.1e}, atol={failure.atol:.1e})"
    )
    body = _REPRO_TEMPLATE.format(
        header=header,
        rows=[int(r) for r in rows],
        cols=[int(c) for c in cols],
        num_nodes=graph.num_nodes,
        model=failure.model,
        system=failure.system,
        mode=failure.mode,
        strategy=failure.strategy,
        signature=failure.plan_signature,
        in_size=failure.in_size,
        out_size=failure.out_size,
        seed=seed,
    )
    with open(path, "w") as fh:
        fh.write(body)
    return path


# ----------------------------------------------------------------------
# Fault injection (testing the tester)
# ----------------------------------------------------------------------
@contextmanager
def seeded_fault(scale: float = 1.001) -> Iterator[None]:
    """Multiplicatively perturb the blocked g-SpMM kernel.

    Used to demonstrate (and test) that the harness catches a wrong
    kernel: any plan executed under the ``blocked`` (and usually
    ``blocked_parallel``) strategy on a non-trivial graph diverges from
    the reference by ~``scale - 1`` relative error, far outside the
    depth-scaled tolerance.
    """
    from ..kernels import blocked as blocked_mod

    original = blocked_mod.gspmm_blocked

    def faulty(adj, x, semiring=None, block_nnz=None, workspace=None):
        out = original(
            adj, x, semiring, block_nnz=block_nnz, workspace=workspace
        )
        return out * scale

    blocked_mod.gspmm_blocked = faulty
    try:
        yield
    finally:
        blocked_mod.gspmm_blocked = original


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def sweep(
    models: Optional[Sequence[str]] = None,
    systems: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    strategies: Optional[Sequence[str]] = None,
    graphs: Optional[Sequence[Graph]] = None,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    tol_model: Optional[ToleranceModel] = None,
    seed: int = 0,
    shrink: bool = True,
    repro_dir: str = ".",
    max_shrinks: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> VerificationReport:
    """Differentially test every plan × strategy against the reference.

    For each (model, graph, embedding-size) instance the baseline
    message-passing ``forward`` is executed once per mode as the
    reference; every promoted plan then runs under every strategy (and,
    in training mode, a full backward pass per strategy) and must agree
    within the depth-scaled tolerance.  Failures are optionally shrunk
    to minimal graphs and emitted as pytest repro files.
    """
    models = list(models or MODEL_NAMES)
    systems = list(systems or ("dgl", "wisegraph"))
    modes = list(modes or VERIFY_MODES)
    strategies = list(strategies or SPMM_STRATEGIES)
    graphs = list(graphs if graphs is not None else adversarial_battery())
    sizes = list(sizes or DEFAULT_SIZES)
    tol_model = tol_model or ToleranceModel()
    report = VerificationReport(
        meta={
            "models": models,
            "systems": systems,
            "modes": modes,
            "strategies": strategies,
            "graphs": [g.name for g in graphs],
            "sizes": [list(s) for s in sizes],
            "seed": seed,
            "base_rtol": tol_model.base_rtol,
            "base_atol": tol_model.base_atol,
        }
    )
    shrinks_left = [max_shrinks]

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    # Static gate: a plan planlint rejects must never reach execution —
    # the sweep both enforces that and records it, so VERIFY_REPORT.json
    # documents analyzer/harness agreement (see meta["analysis"]).
    gate_cache: Dict[int, "PlanVerdict"] = {}
    statically_rejected: List[str] = []

    def static_verdict(planned: PlannedCandidate) -> "PlanVerdict":
        key = id(planned.plan)
        verdict = gate_cache.get(key)
        if verdict is None:
            verdict = analyze_plan(
                planned.plan,
                strategies=(
                    "blocked", "blocked_parallel", "spmm_sharded",
                    "spmm_fused",
                ),
            )
            gate_cache[key] = verdict
            if not verdict.ok:
                statically_rejected.append(planned.plan.name)
                say(f"planlint rejected {planned.plan.name}: "
                    f"{len(verdict.errors)} error(s) — excluded from sweep")
        return verdict

    for model in models:
        for in_size, out_size in sizes:
            layer = build_layer(
                model, in_size, out_size, rng=np.random.default_rng(seed)
            )
            compiled = _compile_for_model(model, layer)
            for graph in graphs:
                mp = _mp_graph(graph, model)
                feats = _make_feats(graph, in_size, seed)
                cotangent = _make_cotangent(
                    graph.num_nodes, out_size, seed
                )
                for mode in modes:
                    reference = _reference_outputs(
                        layer, mp, feats, mode, cotangent
                    )
                    for system_name in systems:
                        system = get_system(system_name)
                        default_planned = select_default_plan(
                            compiled, system, in_size, out_size
                        )
                        for plan_index, planned in enumerate(
                            compiled.promoted
                        ):
                            if not static_verdict(planned).ok:
                                continue
                            for strategy in strategies:
                                result = _check_plan(
                                    layer, planned, plan_index, graph,
                                    model, system_name, mode, strategy,
                                    in_size, out_size, tol_model, seed,
                                    reference=reference,
                                    system_default=(
                                        planned is default_planned
                                    ),
                                )
                                if not result.passed:
                                    say(result.describe())
                                    if shrink and shrinks_left[0] > 0:
                                        shrinks_left[0] -= 1
                                        result.repro_path = _shrink_and_emit(
                                            result, layer, planned, graph,
                                            tol_model, seed, repro_dir,
                                        )
                                report.results.append(result)
                say(
                    f"{model} K=({in_size}->{out_size}) {graph.name}: "
                    f"{len(report.results)} checks, "
                    f"{len(report.failures)} divergent"
                )
    report.meta["repro_files"] = sorted(
        {r.repro_path for r in report.results if r.repro_path}
    )
    # analyzer/harness agreement: every executed check belongs to a
    # statically-ok plan (rejected ones were excluded above), so dynamic
    # divergences among them are exactly the analyzer's blind spots
    report.meta["analysis"] = {
        "plans_analyzed": len(gate_cache),
        "statically_rejected": sorted(set(statically_rejected)),
        "verdict_agreement": {
            "static_ok_checks": report.num_checks,
            "dynamic_divergent": len(report.failures),
            "agree": report.passed,
        },
    }
    return report


def _shrink_and_emit(
    failure: CheckResult,
    layer,
    planned: PlannedCandidate,
    graph: Graph,
    tol_model: ToleranceModel,
    seed: int,
    repro_dir: str,
) -> str:
    """Shrink one failure and write its pytest repro; returns the path."""
    import os

    def still_fails(candidate: Graph) -> bool:
        result = _check_plan(
            layer, planned, failure.plan_index, candidate, failure.model,
            failure.system, failure.mode, failure.strategy,
            failure.in_size, failure.out_size, tol_model, seed,
        )
        return not result.passed

    minimal = shrink_failure(still_fails, graph)
    failure.shrunk_num_nodes = minimal.num_nodes
    failure.shrunk_num_edges = minimal.num_edges
    fname = (
        f"test_repro_{failure.model}_{failure.mode}_{failure.strategy}"
        f"_plan{failure.plan_index}.py"
    )
    path = os.path.join(repro_dir, fname)
    return emit_pytest_repro(path, minimal_failure(failure, minimal), minimal, seed)


def minimal_failure(failure: CheckResult, minimal: Graph) -> CheckResult:
    """The original failure re-annotated with the shrunk graph's stats."""
    out = CheckResult(**vars(failure))
    out.graph = minimal.name
    out.num_nodes = minimal.num_nodes
    out.num_edges = minimal.num_edges
    return out
