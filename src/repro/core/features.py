"""The input featurizer (paper §IV-E1).

Builds the feature vector a per-primitive cost model consumes: the
hand-crafted structural graph features of
:mod:`repro.graphs.features` concatenated with the (log-scaled)
dimensions of the primitive invocation.  Feature extraction is O(N+E)
and runs once per input graph at runtime; its wall-clock cost is part of
GRANII's reported overhead.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graphs import GRAPH_FEATURE_NAMES, Graph, graph_feature_vector
from ..hardware import bytes_moved
from ..kernels import KernelCall

__all__ = ["FEATURE_NAMES", "call_features", "featurize_graph", "num_features"]

_DIM_KEYS = ("m", "k", "n", "nnz")

FEATURE_NAMES: List[str] = (
    list(GRAPH_FEATURE_NAMES)
    + [f"log_{key}" for key in _DIM_KEYS]
    + ["log_flops", "log_bytes"]
)


def num_features() -> int:
    return len(FEATURE_NAMES)


def featurize_graph(graph: Graph) -> np.ndarray:
    """The graph half of the feature vector (cache this per graph)."""
    return graph_feature_vector(graph)


def call_features(call: KernelCall, graph_vec: np.ndarray) -> np.ndarray:
    """Full feature vector for one primitive invocation.

    Besides the raw dimensions, the analytic work estimates (operation
    count and memory traffic) are included: they are the strongest
    predictors of kernel time and let the tree models interpolate across
    sizes instead of memorising a dimension grid.
    """
    dims = np.array(
        [np.log1p(float(call.shape.get(key, 0.0))) for key in _DIM_KEYS]
    )
    work = np.array(
        [np.log1p(call.flops), np.log1p(bytes_moved(call))]
    )
    return np.concatenate([graph_vec, dims, work])
