"""GRANII's online runtime: featurize, predict, select, attach (paper §IV).

The engine wires the offline artifacts (compiled candidate sets, trained
cost models) to a concrete (model, graph, embedding sizes) instance:

1. resolve the embedding-size scenario and keep only viable candidates
   (the cheap Figure-7 conditions);
2. if more than one candidate remains, featurize the input graph once and
   sum per-primitive cost-model predictions for each candidate, with
   graph-only setup amortised over the expected iteration count;
3. lower the winner to an executor and attach it to the model.

Both decision overheads (feature extraction, selection) are measured and
reported, mirroring the paper's overhead accounting (§VI-C1).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..framework import MPGraph, get_system
from ..graphs import Graph
from ..hardware import get_device
from ..kernels import SPMM_STRATEGIES, KernelCall
from ..tensor import Tensor
from .bindings import build_binding, model_ir_kwargs, model_ir_name
from .codegen import CompiledModel, PlannedCandidate, compile_model
from .costmodel import CostModelSet, get_cost_models
from .features import featurize_graph
from .guard import CircuitBreaker, DemotionRecord, GuardedExecutor
from .ir import ShapeEnv
from .plan import KernelExecutionConfig, Plan

__all__ = ["SelectionReport", "OptimizationReport", "GraniiEngine"]

# Cost-model primitive that prices each alternative execution strategy of
# the plan's spmm/spmm_unweighted calls.  ``row_segment`` is priced by the
# original calls themselves; ``gather_scatter`` has no dedicated model (it
# shares the scatter cost profile already folded into ``spmm``) and is
# only selectable explicitly.
_SPMM_STRATEGY_PRIMITIVES = {
    "blocked": "spmm_blocked",
    "blocked_parallel": "spmm_parallel",
    "spmm_sharded": "spmm_sharded",
    "spmm_fused": "spmm_fused",
}


@dataclass
class SelectionReport:
    """What the online stage decided for one layer."""

    model_name: str
    chosen: PlannedCandidate
    scenario: str
    predicted_costs: Dict[str, float]  # plan label -> predicted seconds/run
    viable_count: int
    feature_seconds: float
    selection_seconds: float
    peak_memory_bytes: float = 0.0
    memory_filtered_count: int = 0  # plans dropped for exceeding the limit
    spmm_strategy: str = "row_segment"  # how the executor runs aggregations
    strategy_costs: Dict[str, float] = field(default_factory=dict)
    # runtime verification outcome: None until the first verified call,
    # then True (plan agreed with the reference) or False (diverged; the
    # executor fell back to the reference composition — see verify_note)
    verified: Optional[bool] = None
    verify_note: str = ""
    # guarded-execution bookkeeping: surviving candidates cheapest-first
    # (the fallback ladder), demotions taken at runtime, and the breaker
    # snapshot at the time of the last demotion
    ranked: List[PlannedCandidate] = field(default_factory=list)
    demotions: List[DemotionRecord] = field(default_factory=list)
    breaker_state: Dict[str, Dict[str, float]] = field(default_factory=dict)
    last_error: str = ""
    # static-analysis verdict for the chosen plan under the selection env
    # (a repro.analysis.planlint.PlanVerdict), and the runtime checks the
    # guard skipped because the verdict already proved them
    analysis: Optional[object] = None
    runtime_checks_skipped: List[str] = field(default_factory=list)
    # monotonic timestamp after which execution must not start a kernel;
    # set by the serving runtime to propagate a request deadline into the
    # guarded executor's per-plan budgets
    deadline_at: Optional[float] = None

    def __post_init__(self) -> None:
        # Serving executes one selection from several worker threads
        # (retries share the report); all list/state mutation goes through
        # the record_* methods under this lock.  The lock is identity
        # state, not data: it is dropped on pickle and recreated fresh.
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record_demotion(
        self, record: DemotionRecord, breaker_state=None
    ) -> None:
        """Thread-safely append one demotion (and the breaker snapshot)."""
        with self._lock:
            self.demotions.append(record)
            self.last_error = record.message
            if breaker_state is not None:
                self.breaker_state = breaker_state

    def record_verification(self, ok: bool, note: str) -> None:
        """Thread-safely store a runtime-verification outcome."""
        with self._lock:
            self.verified = ok
            self.verify_note = note

    def record_runtime_check_skipped(self, note: str) -> None:
        """Thread-safely note a runtime check proved statically (once)."""
        with self._lock:
            if note not in self.runtime_checks_skipped:
                self.runtime_checks_skipped.append(note)

    @property
    def label(self) -> str:
        return self.chosen.label

    def describe(self) -> str:
        """Human-readable selection summary, including any fallback chain."""
        lines = [
            f"{self.model_name}: chose {self.label}#{self.chosen.plan.name} "
            f"@ {self.spmm_strategy} "
            f"(scenario={self.scenario}, candidates={self.viable_count})"
        ]
        if self.verified is not None:
            status = "ok" if self.verified else "DIVERGED"
            lines.append(f"  verification: {status} — {self.verify_note}")
        if self.analysis is not None:
            status = "ok" if self.analysis.ok else "REJECTED"
            lines.append(
                f"  analysis: {status} "
                f"(proved {len(self.analysis.proved)}, "
                f"obligations {len(self.analysis.obligations)})"
            )
        for skipped in self.runtime_checks_skipped:
            lines.append(f"  runtime check skipped (statically proved): {skipped}")
        for record in self.demotions:
            lines.append(f"  demoted: {record.describe()}")
        for key, entry in sorted(self.breaker_state.items()):
            state = "OPEN" if entry.get("open") else "closed"
            lines.append(
                f"  breaker {key}: {state} "
                f"({int(entry.get('failures', 0))} failures)"
            )
        return "\n".join(lines)


@dataclass
class OptimizationReport:
    """Per-layer selections plus total decision overhead."""

    selections: List[SelectionReport] = field(default_factory=list)

    @property
    def total_overhead_seconds(self) -> float:
        return sum(s.feature_seconds + s.selection_seconds for s in self.selections)

    def describe(self) -> str:
        lines = []
        for i, sel in enumerate(self.selections):
            lines.append(
                f"layer {i}: {sel.model_name} -> {sel.label} "
                f"(scenario={sel.scenario}, candidates={sel.viable_count}, "
                f"overhead={1e3 * (sel.feature_seconds + sel.selection_seconds):.2f} ms)"
            )
        return "\n".join(lines)


def _reference_forward(layer, g: MPGraph, feat):
    """Run the baseline message-passing forward from either execution mode.

    ``forward`` is written against Tensors; numpy-mode callers (plain
    ndarray features) get an ndarray back so the fallback is a drop-in
    replacement for the plan output.
    """
    if isinstance(feat, Tensor):
        return layer.forward(g, feat)
    out = layer.forward(g, Tensor(np.asarray(feat, dtype=np.float64)))
    return np.asarray(out.data)


class GraniiEngine:
    """The compiler + runtime pair of Figure 5."""

    def __init__(
        self,
        device: str = "h100",
        system: str = "dgl",
        iterations: int = 100,
        mode: str = "inference",
        scale: str = "default",
        cost_models: Optional[CostModelSet] = None,
        memory_limit_bytes: Optional[float] = None,
        spmm_strategy: str = "auto",
        block_nnz: Optional[int] = None,
        num_threads: Optional[int] = None,
        num_workers: Optional[int] = None,
        verify_plans: Optional[bool] = None,
        guarded: Optional[bool] = None,
        breakers: Optional[CircuitBreaker] = None,
    ) -> None:
        if mode not in ("inference", "training"):
            raise ValueError("mode must be 'inference' or 'training'")
        if spmm_strategy != "auto" and spmm_strategy not in SPMM_STRATEGIES:
            raise ValueError(
                f"spmm_strategy must be 'auto' or one of {SPMM_STRATEGIES}"
            )
        self.device = get_device(device)
        self.system = get_system(system)
        self.iterations = int(iterations)
        self.mode = mode
        self.scale = scale
        self.memory_limit_bytes = memory_limit_bytes
        self.spmm_strategy = spmm_strategy
        self.block_nnz = block_nnz
        self.num_threads = num_threads
        self.num_workers = num_workers
        if verify_plans is None:
            verify_plans = config.verify_plans()
        # double-execute the chosen plan against the reference composition
        # on its first iteration; on divergence fall back to the reference
        self.verify_plans = bool(verify_plans)
        # guarded execution (REPRO_GUARD): executors run behind the
        # admission gate, budgets, and the fallback ladder of core.guard
        self.guarded = config.guard_enabled() if guarded is None else bool(guarded)
        self.breakers = breakers if breakers is not None else CircuitBreaker()
        self._cost_models = cost_models
        self._graph_vec_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def cost_models(self) -> CostModelSet:
        if self._cost_models is None:
            self._cost_models = get_cost_models(self.device.name, scale=self.scale)
        return self._cost_models

    _WEIGHTED_IR_MODELS = frozenset({"gcn", "sgc", "tagcn", "gin"})

    def compile_for(self, layer, graph: Optional[Graph] = None) -> CompiledModel:
        """Offline stage for this layer's model type (cached globally).

        The frontend parses the layer's message-passing ``forward`` source
        into matrix IR (paper §IV-B); models outside the translated
        vocabulary fall back to the registered direct IR builder.

        When the input graph carries edge weights, convolutional models
        compile with a *weighted* adjacency leaf, which removes the
        pattern-only aggregation fast path from the candidate pool
        (Appendix B applies to unweighted graphs only).  Attention models
        define their own edge values and ignore input weights.
        """
        name = model_ir_name(layer)
        kwargs = dict(model_ir_kwargs(layer))
        weighted = bool(
            graph is not None
            and graph.adj.is_weighted
            and name in self._WEIGHTED_IR_MODELS
        )
        if weighted:
            # the translated source vocabulary models unweighted
            # aggregation; weighted inputs compile via the IR builder
            return compile_model(name, weighted=True, **kwargs)
        from .frontend import FrontendError, parse_forward

        try:
            ir = parse_forward(layer)
        except FrontendError:
            ir = None
        return compile_model(name, ir=ir, **kwargs)

    def shape_env(self, graph: Graph, layer) -> ShapeEnv:
        wants_loops = getattr(layer, "wants_self_loops", True)
        adj = graph.adj_with_self_loops() if wants_loops else graph.adj
        env = ShapeEnv()
        env["N"] = graph.num_nodes
        env["E"] = adj.nnz
        env["K1"] = layer.in_size
        env["K2"] = layer.out_size
        # estimated nonzeros of adjacency powers, for SpGEMM-extension
        # candidates (compile_model(..., spgemm=True)); "E@k" is the
        # symbolic nnz of a depth-k sparse product
        from ..kernels import spgemm_output_nnz_estimate

        current = adj.nnz
        for depth in range(2, 7):
            current = spgemm_output_nnz_estimate(graph.num_nodes, current, adj.nnz)
            env[f"E@{depth}"] = current
        return env

    # ------------------------------------------------------------------
    def predict_plan_cost(
        self,
        plan: Plan,
        env: ShapeEnv,
        graph_vec: np.ndarray,
    ) -> float:
        """Cost-model estimate of one amortised iteration of this plan."""
        setup, per_iter = plan.kernel_calls(env, self.system.degree_method)
        eff = self.system.efficiency
        total = self.cost_models.predict_calls(per_iter, graph_vec, eff)
        if self.mode == "training":
            total += self.cost_models.predict_calls(
                plan.backward_calls(env), graph_vec, eff
            )
        total += self.cost_models.predict_calls(setup, graph_vec, eff) / max(
            self.iterations, 1
        )
        return total

    def select_spmm_strategy(
        self, plan: Plan, env: ShapeEnv, graph_vec: np.ndarray
    ) -> Tuple[str, Dict[str, float]]:
        """Pick the aggregation strategy for this (plan, graph) pairing.

        With ``spmm_strategy='auto'`` the plan's per-iteration
        spmm/spmm_unweighted calls are re-priced under each strategy's
        cost-model primitive (``spmm_blocked``, ``spmm_parallel``) and the
        cheapest wins — the same input-aware mechanism the paper applies
        to composition choice, one level down at the kernel.  Auto only
        consults models that are already materialised: it never triggers
        the offline training pass on its own (a single-candidate
        selection must stay overhead-free), falling back to
        ``row_segment`` when no models are loaded.

        Strategies whose ``("spmm", strategy)`` circuit breaker is open
        (repeated runtime failures within the cooldown window) are
        excluded from auto selection; they rejoin the pool automatically
        once the cooldown elapses.  ``row_segment`` — the reference
        strategy — is never excluded.

        A *pinned* strategy (``spmm_strategy != 'auto'``, typically via
        ``REPRO_SPMM_STRATEGY``) is routed through the same static
        legality gate the pruner applies to auto selections: if
        ``analyze_plan`` rejects this plan under the pinned strategy
        (alias hazards, unbalanced workspace lifetimes), the executor
        falls back to ``row_segment`` with a warning instead of running
        an unvetted composition.
        """
        if self.spmm_strategy != "auto":
            pinned = self.spmm_strategy
            if pinned != "row_segment":
                from ..analysis.planlint import analyze_plan

                verdict = analyze_plan(plan, strategies=(pinned,))
                if not verdict.ok:
                    rules = sorted({d.rule for d in verdict.errors})
                    warnings.warn(
                        f"pinned spmm strategy {pinned!r} rejected by plan "
                        f"analysis ({', '.join(rules)}); falling back to "
                        f"row_segment",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return "row_segment", {}
            return pinned, {}
        if self._cost_models is None:
            return "row_segment", {}
        setup, per_iter = plan.kernel_calls(env, self.system.degree_method)
        spmm_calls = [
            c for c in per_iter if c.primitive in ("spmm", "spmm_unweighted")
        ]
        if not spmm_calls:
            return "row_segment", {}
        eff = self.system.efficiency
        models = self.cost_models
        costs = {
            "row_segment": models.predict_calls(spmm_calls, graph_vec, eff)
        }
        for strategy, primitive in _SPMM_STRATEGY_PRIMITIVES.items():
            if self.breakers.is_open("spmm", strategy):
                continue
            variant = [
                KernelCall(primitive, dict(c.shape), tag=c.tag)
                for c in spmm_calls
            ]
            try:
                costs[strategy] = models.predict_calls(variant, graph_vec, eff)
            except KeyError:
                # model set predates these primitives; skip the strategy
                continue
        return min(costs, key=costs.get), costs

    def select(
        self, compiled: CompiledModel, graph: Graph, layer
    ) -> SelectionReport:
        """Online stage: pick the cheapest viable composition (Figure 7)."""
        env = self.shape_env(graph, layer)
        scenario = "in_ge_out" if env["K1"] >= env["K2"] else "in_lt_out"
        viable = compiled.viable(env["K1"], env["K2"])
        if not viable:  # pragma: no cover - pruning guarantees at least one
            raise RuntimeError("no viable composition")
        memory_filtered = 0
        if self.memory_limit_bytes is not None:
            fitting = [
                p for p in viable
                if p.plan.peak_memory_bytes(env) <= self.memory_limit_bytes
            ]
            memory_filtered = len(viable) - len(fitting)
            if fitting:
                viable = fitting
            else:
                # nothing fits: degrade gracefully to the leanest plan
                # rather than refusing to run (the baseline would OOM too)
                viable = [
                    min(viable, key=lambda p: p.plan.peak_memory_bytes(env))
                ]
        if len(viable) > 1:
            # cost-model training is a one-time offline cost (paper §V);
            # force it here so it never pollutes the measured online overhead
            _ = self.cost_models
        t0 = time.perf_counter()
        key = id(graph)
        if key in self._graph_vec_cache:
            graph_vec = self._graph_vec_cache[key]
            feature_seconds = 0.0
        else:
            graph_vec = featurize_graph(graph)
            self._graph_vec_cache[key] = graph_vec
            feature_seconds = time.perf_counter() - t0
        t1 = time.perf_counter()
        predicted: Dict[str, float] = {}
        if len(viable) == 1:
            chosen = viable[0]
            ranked = list(viable)
        else:
            costs = [
                self.predict_plan_cost(p.plan, env, graph_vec) for p in viable
            ]
            for p, c in zip(viable, costs):
                predicted[f"{p.label}#{p.plan.name}"] = c
            order = np.argsort(costs, kind="stable")
            ranked = [viable[int(i)] for i in order]
            chosen = ranked[0]
        spmm_strategy, strategy_costs = self.select_spmm_strategy(
            chosen.plan, env, graph_vec
        )
        if config.autotune_enabled():
            from .autotune import autotune_selection

            tuned = autotune_selection(self, chosen.plan, graph, layer)
            if tuned is not None:
                spmm_strategy = tuned.strategy
                if tuned.block_nnz is not None:
                    self.block_nnz = tuned.block_nnz
                strategy_costs = dict(strategy_costs)
                for strat, seconds in tuned.best_per_strategy.items():
                    strategy_costs[f"measured:{strat}"] = seconds
        selection_seconds = time.perf_counter() - t1
        # static verdict for the winner: proved facts let the guarded
        # executor skip re-deriving them on the hot path (see guard.py);
        # the workspace-lifetime trace covers the strategy that will run
        analysis_strategies = ("blocked",)
        if spmm_strategy not in analysis_strategies:
            analysis_strategies = analysis_strategies + (spmm_strategy,)
        from ..analysis.planlint import analyze_plan

        verdict = analyze_plan(
            chosen.plan, env=env, strategies=analysis_strategies
        )
        return SelectionReport(
            model_name=compiled.model_name,
            chosen=chosen,
            scenario=scenario,
            predicted_costs=predicted,
            viable_count=len(viable),
            feature_seconds=feature_seconds,
            selection_seconds=selection_seconds,
            peak_memory_bytes=chosen.plan.peak_memory_bytes(env),
            memory_filtered_count=memory_filtered,
            spmm_strategy=spmm_strategy,
            strategy_costs=strategy_costs,
            ranked=ranked,
            analysis=verdict,
        )

    # ------------------------------------------------------------------
    def make_executor(
        self,
        layer,
        planned: PlannedCandidate,
        spmm_strategy: str = "row_segment",
        selection: Optional[SelectionReport] = None,
        guarded: Optional[bool] = None,
    ):
        """Wrap the chosen plan as a drop-in replacement for layer.forward.

        With ``verify_plans`` enabled the first call additionally runs the
        layer's baseline message-passing ``forward`` and compares outputs
        under the depth-scaled tolerance of
        :class:`~repro.core.verify.ToleranceModel`.  On divergence the
        executor warns, records the outcome on ``selection``, and
        permanently falls back to the reference composition — a wrong
        plan degrades performance, never correctness.

        With ``guarded`` (default: the engine's ``REPRO_GUARD`` setting)
        the executor is a :class:`~repro.core.guard.GuardedExecutor`
        instead: inputs pass an admission gate, every run is budgeted,
        and failures demote down the plan ladder rather than escaping.
        """
        if guarded is None:
            guarded = self.guarded
        if guarded:
            if selection is None:
                selection = SelectionReport(
                    model_name=model_ir_name(layer),
                    chosen=planned,
                    scenario="",
                    predicted_costs={},
                    viable_count=1,
                    feature_seconds=0.0,
                    selection_seconds=0.0,
                    spmm_strategy=spmm_strategy,
                    ranked=[planned],
                )
            elif planned is not selection.chosen:
                selection.chosen = planned
            if selection.spmm_strategy != spmm_strategy:
                selection.spmm_strategy = spmm_strategy
            return GuardedExecutor(self, layer, selection)
        plan = planned.plan
        setup_caches: Dict[Tuple[int, str], Dict[str, object]] = {}
        kernel_config = None
        if spmm_strategy != "row_segment":
            kernel_config = KernelExecutionConfig(
                strategy=spmm_strategy,
                block_nnz=self.block_nnz,
                num_threads=self.num_threads,
                num_workers=self.num_workers,
            )
        degree_method = self.system.degree_method
        verify_state = {"pending": self.verify_plans, "fallback": False}

        def executor(g: MPGraph, feat, *args, **kwargs):
            if verify_state["fallback"]:
                return _reference_forward(layer, g, feat)
            mode = "tensor" if isinstance(feat, Tensor) else "numpy"
            # fused schedules bypass the autograd tape: only inference
            # may drop to the one-pass numpy path (see GuardedExecutor)
            fused_inference = (
                spmm_strategy == "spmm_fused"
                and mode == "tensor"
                and self.mode == "inference"
            )
            if fused_inference:
                mode = "numpy"
            binding = build_binding(layer, g, feat, mode, degree_method)
            cache = setup_caches.setdefault((id(g), mode), {})
            out = plan.execute(
                binding,
                mode=mode,
                setup_cache=cache,
                kernel_config=kernel_config,
            )
            if fused_inference:
                out = Tensor(np.asarray(out))
            if verify_state["pending"]:
                verify_state["pending"] = False
                ok, note = self._verify_against_reference(
                    layer, plan, g, feat, out
                )
                if selection is not None:
                    selection.record_verification(ok, note)
                if not ok:
                    verify_state["fallback"] = True
                    warnings.warn(note, RuntimeWarning, stacklevel=2)
                    return _reference_forward(layer, g, feat)
            return out

        return executor

    def _verify_against_reference(
        self, layer, plan: Plan, g: MPGraph, feat, out
    ) -> Tuple[bool, str]:
        """Compare one plan output against the baseline forward."""
        from ..tensor import no_grad
        from .verify import ToleranceModel, _max_errors

        with no_grad():
            ref = _reference_forward(layer, g, feat)
        ref_data = ref.data if isinstance(ref, Tensor) else np.asarray(ref)
        out_data = out.data if isinstance(out, Tensor) else np.asarray(out)
        tol = ToleranceModel().for_graph(
            g.adj, mode=self.mode, num_steps=len(plan.steps)
        )
        abs_err, _ = _max_errors(out_data, ref_data)
        ok = tol.allclose(out_data, ref_data)
        if ok:
            note = (
                f"plan verified against reference composition "
                f"(max_abs_err={abs_err:.3e}, atol={tol.atol:.1e})"
            )
        else:
            note = (
                f"plan {plan.candidate.output!r} diverged from the "
                f"reference composition (max_abs_err={abs_err:.3e}, "
                f"rtol={tol.rtol:.1e}, atol={tol.atol:.1e}); "
                f"falling back to layer.forward"
            )
        return ok, note

    def optimize(self, model, graph: Graph, feats=None, labels=None) -> OptimizationReport:
        """The GRANII(...) call of Figure 4: select and attach per layer.

        Containers (multi-layer stacks, multi-head attention) expose their
        independently-optimisable sub-layers through ``granii_layers()``.
        """
        report = OptimizationReport()
        layers = model.granii_layers() if hasattr(model, "granii_layers") else [model]
        for layer in layers:
            compiled = self.compile_for(layer, graph)
            selection = self.select(compiled, graph, layer)
            layer.attach_executor(
                self.make_executor(
                    layer,
                    selection.chosen,
                    selection.spmm_strategy,
                    selection=selection,
                )
            )
            report.selections.append(selection)
        return report
