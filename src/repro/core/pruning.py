"""Input-oblivious pruning of association-tree candidates (paper §IV-C).

Pruning happens offline, before the input graph is known, under the two
embedding-size scenarios the paper identifies:

- ``in_ge_out``: input embedding size ≥ output size (K1 ≥ K2)
- ``in_lt_out``: input embedding size < output size (K1 < K2)

Within one scenario a candidate is *dominated* when another candidate's
primitive multiset maps injectively into its own with every mapped
instance no larger (same primitive, component-wise ≤ dimensions under the
scenario's K1/K2 ordering), and the domination is strict (extra
primitives, or at least one strictly smaller instance).  A candidate
dominated in **both** scenarios can never win and is pruned; survivors
are annotated with the scenarios where they remain viable, which later
becomes the embedding-size dispatch condition (§IV-D).

Cost-equivalent duplicates (identical primitive+dimension multisets) are
collapsed to one representative first — the "removes duplicates" clause
of the paper's first rule — which also keeps the dominance pass
quadratic in the number of *distinct* cost signatures rather than raw
trees (TAGCN enumerates thousands of trees but has far fewer distinct
cost signatures).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .assoc import Candidate, Step

__all__ = ["SCENARIOS", "PrunedCandidate", "prune_candidates", "cost_signature"]

SCENARIOS = ("in_ge_out", "in_lt_out")

# Symbolic dimension magnitudes per scenario; used only for *ordering*
# K-dims against each other.  N/E stay symbolic: cross-symbol comparisons
# other than K1 vs K2 (and E vs E+N) are treated as incomparable.
_K_ORDER = {
    "in_ge_out": {"K1": 2, "K2": 1},
    "in_lt_out": {"K1": 1, "K2": 2},
}


def _dim_leq(a, b, scenario: str) -> Optional[bool]:
    """Whether dim a ≤ dim b under the scenario; None if incomparable."""
    if a == b:
        return True
    order = _K_ORDER[scenario]
    if a in order and b in order:
        return order[a] <= order[b]
    if isinstance(a, str) and isinstance(b, str):
        if b == f"{a}+N":
            return True
        if a == f"{b}+N":
            return False
    if isinstance(a, int) and isinstance(b, int):
        return a <= b
    return None


@dataclass(frozen=True)
class _Instance:
    """One primitive instance with its cost-relevant symbolic dims."""

    primitive: str
    dims: Tuple


def _instances(candidate: Candidate) -> List[_Instance]:
    out: List[_Instance] = []
    for step in candidate.ordered_steps():
        p = step.primitive
        descs = step.arg_descs
        od = step.out_desc
        if p == "gemm":
            dims = (descs[0].shape[0], descs[0].shape[1], descs[1].shape[1])
        elif p in ("spmm", "spmm_unweighted"):
            dims = (descs[0].nnz, descs[1].shape[1])
        elif p in ("sddmm_diag", "spadd_diag"):
            dims = (next(d for d in descs if d.is_sparse_matrix).nnz,)
        elif p == "diag_mul":
            dims = (od.shape[0],)
        elif p == "row_broadcast":
            dims = (descs[1].shape[0], descs[1].shape[1])
        elif p == "elementwise":
            cols = od.shape[1] if od.attr == "dense" else 1
            dims = (od.shape[0], cols)
            out.extend(_Instance(p, dims) for _ in range(max(0, len(descs) - 2)))
        elif p == "attention":
            dims = (descs[0].nnz, descs[1].shape[1])
        elif p == "fused_attn_spmm":
            dims = (descs[0].nnz, descs[2].shape[1])
        elif p == "spgemm":
            dims = (descs[0].nnz, descs[1].nnz, od.nnz)
        else:
            raise KeyError(f"no cost instance rule for {p!r}")
        out.append(_Instance(p, dims))
    return out


def cost_signature(candidate: Candidate):
    """Hashable multiset of primitive instances (cost-equivalence key)."""
    return frozenset(Counter(_instances(candidate)).items())


def _instance_leq(a: _Instance, b: _Instance, scenario: str) -> Optional[bool]:
    """a ≤ b (a no more expensive), None if incomparable; strictness aware."""
    if a.primitive != b.primitive or len(a.dims) != len(b.dims):
        return None
    strict = False
    for da, db in zip(a.dims, b.dims):
        cmp = _dim_leq(da, db, scenario)
        if cmp is None or cmp is False:
            return None
        if da != db:
            strict = True
    return True  # holds; strictness checked separately via _instance_lt


def _instance_lt(a: _Instance, b: _Instance, scenario: str) -> bool:
    return _instance_leq(a, b, scenario) is True and a.dims != b.dims


def _dominates(
    small: List[_Instance], big: List[_Instance], scenario: str
) -> bool:
    """True if `small` maps injectively into `big`, all ≤, strictly overall."""
    if len(small) > len(big):
        return False

    used = [False] * len(big)
    strict_possible = len(small) < len(big)

    def assign(i: int, any_strict: bool) -> bool:
        if i == len(small):
            return any_strict or strict_possible
        for j, b_inst in enumerate(big):
            if used[j]:
                continue
            if _instance_leq(small[i], b_inst, scenario) is True:
                used[j] = True
                if assign(i + 1, any_strict or _instance_lt(small[i], b_inst, scenario)):
                    used[j] = False
                    return True
                used[j] = False
        return False

    return assign(0, False)


@dataclass
class PrunedCandidate:
    """A promoted candidate annotated with its viable scenarios."""

    candidate: Candidate
    scenarios: Tuple[str, ...]  # subset of SCENARIOS where not dominated

    @property
    def needs_cost_model(self) -> bool:
        """Viable in both scenarios → embedding sizes alone cannot decide."""
        return len(self.scenarios) == len(SCENARIOS)


def prune_candidates(
    candidates: Sequence[Candidate], analyze: bool = True
) -> List[PrunedCandidate]:
    """The paper's offline pruning: dedupe, dominate, annotate, promote.

    With ``analyze`` (the default) every candidate first passes the
    static plan verifier (:mod:`repro.analysis.planlint`); trees the
    abstract interpreter rejects never reach cost signatures, let alone
    the cost models.  A healthy rule table produces no rejections, so
    this is a cheap invariant check in the common case — but it is the
    load-bearing gate when rules or the enumerator change.  If *every*
    candidate is statically illegal the enumeration itself is broken and
    we raise :class:`~repro.errors.GraniiAnalysisError` carrying the
    first verdict's diagnostics.
    """
    if analyze and candidates:
        # imported lazily: repro.analysis imports this package's siblings
        from ..analysis.planlint import reject_illegal
        from ..errors import GraniiAnalysisError

        legal, rejected = reject_illegal(candidates)
        if rejected and not legal:
            cand, verdict = rejected[0]
            raise GraniiAnalysisError(
                f"static analysis rejected every enumerated candidate "
                f"({len(rejected)} total); first verdict:\n"
                + verdict.describe(),
                node=cand.output,
                diagnostics=verdict.diagnostics,
            )
        candidates = legal
    # 1. collapse cost-equivalent duplicates
    by_sig: Dict[object, Candidate] = {}
    for cand in sorted(candidates, key=lambda c: (len(c.steps), c.describe())):
        sig = cost_signature(cand)
        by_sig.setdefault(sig, cand)
    distinct = list(by_sig.values())
    inst = {id(c): _instances(c) for c in distinct}

    # 2. per-scenario domination
    survivors: List[PrunedCandidate] = []
    for cand in distinct:
        viable: List[str] = []
        for scenario in SCENARIOS:
            dominated = any(
                other is not cand
                and _dominates(inst[id(other)], inst[id(cand)], scenario)
                for other in distinct
            )
            if not dominated:
                viable.append(scenario)
        if viable:
            survivors.append(PrunedCandidate(cand, tuple(viable)))
    if not survivors:
        raise RuntimeError("pruning removed every candidate — rule bug")
    return survivors
