"""Code generation for promoted candidates (paper §IV-D).

``compile_model`` runs the whole offline stage for one model: IR build →
rewrite → enumeration → pruning → lowering to :class:`Plan` objects, all
cached per (model, hyper-parameters) so the compilation cost is paid
once.  The resulting :class:`CompiledModel` is the conditional program of
Figure 7 in object form:

- plans viable in only one embedding-size scenario are guarded by the
  cheap ``in_size >= out_size`` condition;
- plans viable in both scenarios are left for the online cost models.

``emit_python_source`` renders the same dispatch structure as readable
Python source, mirroring the paper's generated conditional code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .assoc import Candidate, Step, enumerate_candidates
from .ir import IRNode
from .modelir import build_model_ir
from .pruning import prune_candidates
from .plan import Plan
from .rewrite import rewrite_variants
from .rules import Operand

__all__ = [
    "PlannedCandidate",
    "CompiledModel",
    "CompiledPlan",
    "compile_model",
    "compile_plan",
    "compile_sweep",
    "fuse_attention_candidates",
    "plan_tags",
    "select_default_plan",
    "emit_python_source",
    "clear_compile_cache",
    "clear_plan_compile_cache",
]


def fuse_attention_candidates(candidates: Sequence[Candidate]) -> List[Candidate]:
    """Peephole fusion pass: attention followed by aggregation → one kernel.

    For every candidate where an ``spmm`` consumes an ``attention``
    result, emit an additional candidate with the pair replaced by the
    FusedMM-style ``fused_attn_spmm`` primitive.  Fused and unfused
    variants both enter the pool; the cost models pick per input (fusion
    saves the materialised α and two launches, but forfeits α reuse).
    """
    fused: List[Candidate] = []
    for candidate in candidates:
        steps = set(candidate.steps)
        attn = next((s for s in steps if s.primitive == "attention"), None)
        if attn is None:
            continue
        consumer = next(
            (
                s for s in steps
                if s.primitive == "spmm" and s.args[0] == attn.out
            ),
            None,
        )
        if consumer is None:
            continue
        pattern_desc, theta_desc = attn.arg_descs
        value_desc = consumer.arg_descs[1]
        out_ref = f"fused_attn_spmm({attn.args[0]},{attn.args[1]},{consumer.args[1]})"
        out_desc = Operand(
            out_ref, "dense", "data",
            (pattern_desc.shape[0], value_desc.shape[1]),
        )
        fused_step = Step(
            out=out_ref,
            primitive="fused_attn_spmm",
            args=(attn.args[0], attn.args[1], consumer.args[1]),
            arg_descs=(pattern_desc, theta_desc, value_desc),
            out_desc=out_desc,
        )
        new_steps = {s for s in steps if s not in (attn, consumer)}
        # rewire consumers of the old spmm output onto the fused output
        rewired = set()
        for step in new_steps:
            if consumer.out in step.args:
                new_args = tuple(
                    out_ref if a == consumer.out else a for a in step.args
                )
                step = Step(
                    out=step.out, primitive=step.primitive, args=new_args,
                    arg_descs=step.arg_descs, out_desc=step.out_desc,
                    meta=step.meta,
                )
            rewired.add(step)
        rewired.add(fused_step)
        output = out_ref if candidate.output == consumer.out else candidate.output
        fused.append(Candidate(frozenset(rewired), output))
    return fused


@dataclass
class PlannedCandidate:
    """A promoted candidate, lowered, with its viability annotation."""

    plan: Plan
    scenarios: Tuple[str, ...]
    tags: Dict[str, str]

    @property
    def label(self) -> str:
        if "gat" in self.tags:
            return self.tags["gat"]
        parts = [self.tags.get("norm", ""), self.tags.get("order", "")]
        return ":".join(p for p in parts if p)


def plan_tags(plan: Plan) -> Dict[str, str]:
    """Classify a plan for human-readable labels and baseline lookup.

    - ``norm``: 'precompute' when graph-only sparse setup exists (Ñ or B),
      'dynamic' otherwise.
    - ``order``: 'update_first' when some aggregation consumes a
      weight-dependent operand, 'agg_first' otherwise.
    - ``gat``: 'reuse' / 'recompute' by the number of weight GEMMs.
    """
    tags: Dict[str, str] = {}
    tags["norm"] = "precompute" if plan.setup_steps else "dynamic"

    weight_tainted: Dict[str, bool] = {}

    def tainted(ref: str) -> bool:
        if ref in weight_tainted:
            return weight_tainted[ref]
        return ref.startswith("W")

    update_first = False
    for step in plan.steps:
        arg_taints = [tainted(a) for a in step.args]
        weight_tainted[step.out] = any(arg_taints)
        if step.primitive in ("spmm", "spmm_unweighted"):
            dense_arg_idx = 1
            if arg_taints[dense_arg_idx]:
                update_first = True
    tags["order"] = "update_first" if update_first else "agg_first"

    has_attention = any(s.primitive == "attention" for s in plan.steps)
    fused = next(
        (s for s in plan.steps if s.primitive == "fused_attn_spmm"), None
    )
    if has_attention or fused is not None:
        weight_gemms = sum(
            1
            for s in plan.steps
            if s.primitive == "gemm" and any(a.startswith("W") for a in s.args)
        )
        mode = "reuse" if weight_gemms <= 1 else "recompute"
        tags["gat"] = f"fused_{mode}" if fused is not None else mode
    return tags


@dataclass
class CompiledModel:
    """The offline stage's output for one model."""

    model_name: str
    ir_variants: List[IRNode]
    enumerated_count: int
    promoted: List[PlannedCandidate]
    all_candidates: List[Candidate]

    @property
    def pruned_count(self) -> int:
        return self.enumerated_count - len(self.promoted)

    def viable(self, in_size: int, out_size: int) -> List[PlannedCandidate]:
        scenario = "in_ge_out" if in_size >= out_size else "in_lt_out"
        return [p for p in self.promoted if scenario in p.scenarios]

    def find(self, **tags: str) -> List[PlannedCandidate]:
        """Promoted plans matching all the given tag values."""
        out = []
        for planned in self.promoted:
            if all(planned.tags.get(k) == v for k, v in tags.items()):
                out.append(planned)
        return out


_COMPILE_CACHE: Dict[Tuple, CompiledModel] = {}


def compile_model(
    name: str,
    ir: Optional[IRNode] = None,
    fusion: bool = False,
    spgemm: bool = False,
    **model_kwargs,
) -> CompiledModel:
    """Run the offline compilation stage (cached).

    ``ir`` may supply a frontend-parsed IR for the model; the tests assert
    parsed and direct-built IRs yield identical candidate sets, so the
    cache key ignores the IR's provenance.

    Two extension switches (both off by default, matching the paper's
    §VI-B composition counts): ``fusion`` adds FusedMM-style fused
    attention variants; ``spgemm`` admits sparse·sparse associations so
    propagation powers (SGC's Ñ², APPNP's hops) can be materialised as
    one-time setup.
    """
    key = (name.lower(), fusion, spgemm, tuple(sorted(model_kwargs.items())))
    if key in _COMPILE_CACHE:
        return _COMPILE_CACHE[key]
    if ir is None:
        ir = build_model_ir(name, **model_kwargs)
    variants = rewrite_variants(ir)
    candidates = enumerate_candidates(variants, allow_spgemm=spgemm)
    if fusion:
        candidates = candidates + fuse_attention_candidates(candidates)
    promoted_raw = prune_candidates(candidates)
    promoted = []
    for pc in promoted_raw:
        plan = Plan(pc.candidate, name=f"{name}:{len(promoted)}")
        promoted.append(PlannedCandidate(plan, pc.scenarios, plan_tags(plan)))
    compiled = CompiledModel(
        model_name=name.lower(),
        ir_variants=variants,
        enumerated_count=len(candidates),
        promoted=promoted,
        all_candidates=candidates,
    )
    _COMPILE_CACHE[key] = compiled
    return compiled


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()


# ----------------------------------------------------------------------
# Codegen v2: plan -> fused straight-line schedule
# ----------------------------------------------------------------------
@dataclass
class CompiledPlan:
    """A plan lowered to a fused execution schedule.

    ``schedule`` is an ordered list of ``("step", Step)`` entries
    (executed exactly as the interpreter would) and ``("fused", spec)``
    entries, where ``spec`` is a
    :class:`~repro.analysis.planlint.FusionSegmentSpec` the executor
    hands to :func:`repro.kernels.compiled.gspmm_fused` as one
    dispatch.  ``fallback_reasons`` records every fusion opportunity
    planlint declined — the CI zoo sweep requires each promoted plan to
    either compile clean or carry a reason here.
    """

    plan: Plan
    schedule: List[Tuple[str, object]]
    segments: List[object]  # FusionSegmentSpec entries
    fallback_reasons: List[Tuple[str, str]]

    @property
    def fused_step_count(self) -> int:
        """How many interpreter steps the fused segments absorb."""
        return sum(len(seg.members) for seg in self.segments)

    def describe(self) -> str:
        lines = [
            f"compiled {self.plan.name}: {len(self.segments)} fused "
            f"segment(s) absorbing {self.fused_step_count} of "
            f"{len(self.plan.steps)} steps"
        ]
        lines += [f"  {seg.describe()}" for seg in self.segments]
        lines += [f"  fallback {out}: {why}"
                  for out, why in self.fallback_reasons]
        return "\n".join(lines)


# keyed by id(plan) with the CompiledPlan holding a strong reference to
# the plan, so a cached id can never be recycled while its entry lives
_PLAN_COMPILE_CACHE: Dict[int, CompiledPlan] = {}


def compile_plan(plan: Plan) -> CompiledPlan:
    """Lower one plan to its fused schedule (cached per plan object).

    Fusion legality comes entirely from
    :func:`repro.analysis.planlint.fusion_legality`: only chains the
    abstract interpreter proves single-consumer, alias-free, and
    replayable bit-identically are absorbed into a segment.  Everything
    else stays an ordinary step, so the compiled schedule computes
    exactly the interpreter's results in the interpreter's dependency
    order.  A segment is scheduled at its *tail* step's position: every
    external operand of every member (including epilogue diagonals
    computed between the aggregation and the tail) is ready by then.
    """
    cached = _PLAN_COMPILE_CACHE.get(id(plan))
    if cached is not None and cached.plan is plan:
        return cached
    from ..analysis.planlint import fusion_legality

    report = fusion_legality(plan)
    by_tail = {seg.out: seg for seg in report.segments}
    member_outs = {
        s.out for seg in report.segments for s in seg.members
    }
    schedule: List[Tuple[str, object]] = []
    for step in plan.steps:
        seg = by_tail.get(step.out)
        if seg is not None:
            schedule.append(("fused", seg))
        elif step.out not in member_outs:
            schedule.append(("step", step))
        # non-tail members are absorbed into their segment's dispatch
    compiled = CompiledPlan(
        plan=plan,
        schedule=schedule,
        segments=list(report.segments),
        fallback_reasons=list(report.rejected),
    )
    _PLAN_COMPILE_CACHE[id(plan)] = compiled
    return compiled


def clear_plan_compile_cache() -> None:
    _PLAN_COMPILE_CACHE.clear()


def compile_sweep(
    models: Optional[Sequence[str]] = None,
    extensions: bool = True,
) -> List[Dict[str, object]]:
    """Compile every promoted zoo plan to its fused schedule.

    Returns one record per plan: how many segments fused, how many
    steps they absorb, and the recorded fallback reasons for declined
    opportunities.  The CI ``fused`` job fails unless every plan either
    fuses at least one segment or carries a recorded reason (or simply
    contains no aggregation to fuse — also recorded).
    """
    from ..models import MODEL_NAMES

    targets: List[Tuple[str, Dict[str, object]]] = [
        (name, {}) for name in (models or MODEL_NAMES)
    ]
    if extensions and not models:
        targets += [("gat", {"fusion": True}),
                    ("sgc", {"spgemm": True, "hops": 2})]
    records: List[Dict[str, object]] = []
    for name, kwargs in targets:
        compiled_model = compile_model(name, **kwargs)
        suffix = "".join(f"+{k}" for k in kwargs if kwargs[k] is True)
        for planned in compiled_model.promoted:
            cp = compile_plan(planned.plan)
            has_agg = any(
                s.primitive in ("spmm", "spmm_unweighted")
                for s in planned.plan.steps
            )
            reasons = [f"{out}: {why}" for out, why in cp.fallback_reasons]
            if not has_agg:
                reasons.append("no aggregation step; nothing to fuse")
            records.append({
                "model": f"{name}{suffix}",
                "plan": planned.plan.name,
                "label": planned.label,
                "steps": len(planned.plan.steps),
                "segments": len(cp.segments),
                "fused_steps": cp.fused_step_count,
                "fallback_reasons": reasons,
                "clean": bool(cp.segments) or bool(reasons),
            })
    return records


def _sweep_main(argv: Optional[List[str]] = None) -> int:
    """CLI: the zoo compile sweep (the CI ``fused`` job's first stage)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.codegen",
        description="compile every promoted zoo plan to a fused schedule",
    )
    parser.add_argument("--models", default="",
                        help="comma-separated model subset")
    parser.add_argument("--output", default="",
                        help="write the sweep report JSON here")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    models = [m for m in args.models.split(",") if m] or None
    records = compile_sweep(models=models)
    bad = [r for r in records if not r["clean"]]
    fused_plans = sum(1 for r in records if r["segments"])
    for r in records:
        if args.verbose or not r["clean"]:
            print(
                f"{r['model']}/{r['plan']}: {r['segments']} segment(s), "
                f"{r['fused_steps']}/{r['steps']} steps fused; "
                + ("; ".join(r["fallback_reasons"]) or "clean")
            )
    print(
        f"{len(records)} promoted plans: {fused_plans} with fused "
        f"segments, {len(records) - fused_plans} fallback-with-reason, "
        f"{len(bad)} silent fallbacks"
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"plans": records}, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if bad else 0


def select_default_plan(
    compiled: CompiledModel, system, in_size: int, out_size: int
) -> PlannedCandidate:
    """The baseline system's fixed default composition for this model.

    Encodes each system's shipped behaviour (§VI-B): dynamic
    normalization, GEMM placement per the system's per-model reordering
    policy, and the system's GAT reuse/recompute policy.
    """
    name = compiled.model_name
    if name == "gat":
        recompute = system.default_gat_recompute(in_size, out_size)
        matches = compiled.find(gat="recompute" if recompute else "reuse")
        if matches:
            return matches[0]
        matches = compiled.find(gat="reuse")
        return matches[0]
    gemm_first = system.default_gemm_first(name, in_size, out_size)
    order = "update_first" if gemm_first else "agg_first"
    matches = compiled.find(norm="dynamic", order=order)
    if not matches:
        matches = compiled.find(norm="dynamic")
    if not matches:  # pragma: no cover - defensive
        matches = compiled.promoted
    # Among equal tags prefer the plan with the most primitives matching a
    # naive execution (i.e. the largest step count — no hidden fusions).
    return max(matches, key=lambda p: len(p.plan.steps))


def emit_python_source(compiled: CompiledModel) -> str:
    """Readable Python for the conditional dispatch (Figure 7)."""
    lines: List[str] = [
        f"def run_{compiled.model_name}(graph, feat, in_size, out_size, cost_models):",
        '    """GRANII-generated conditional execution."""',
    ]
    only_ge = [p for p in compiled.promoted if p.scenarios == ("in_ge_out",)]
    only_lt = [p for p in compiled.promoted if p.scenarios == ("in_lt_out",)]
    both = [p for p in compiled.promoted if len(p.scenarios) == 2]

    def plan_call(p: PlannedCandidate) -> str:
        return f"execute_plan({p.plan.name!r}, graph, feat)  # {p.label}"

    lines.append("    if in_size >= out_size:")
    lines.extend(_branch_lines(only_ge + both, plan_call, indent="        "))
    lines.append("    else:")
    lines.extend(_branch_lines(only_lt + both, plan_call, indent="        "))
    return "\n".join(lines) + "\n"


def _branch_lines(plans, plan_call, indent: str) -> List[str]:
    if not plans:
        return [indent + "raise RuntimeError('no viable composition')"]
    if len(plans) == 1:
        return [indent + "return " + plan_call(plans[0])]
    lines = [indent + "costs = {"]
    for p in plans:
        lines.append(indent + f"    {p.plan.name!r}: cost_models.plan_cost({p.plan.name!r}, graph),")
    lines.append(indent + "}")
    lines.append(indent + "best = min(costs, key=costs.get)")
    for p in plans:
        lines.append(indent + f"if best == {p.plan.name!r}:")
        lines.append(indent + "    return " + plan_call(p))
    lines.append(indent + "raise RuntimeError('unreachable')")
    return lines


if __name__ == "__main__":
    import sys

    sys.exit(_sweep_main())
