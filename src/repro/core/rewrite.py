"""IR rewrite passes (paper §IV-B and Appendix C).

``eliminate_row_broadcasts`` is the paper's key rewrite: a row broadcast
``c[i,j] = d[i]·x[i,j]`` is re-expressed as multiplication by the diagonal
matrix ``diag(d)``, which merges into the surrounding n-ary MatMul level
and stops acting as a re-association barrier.  This is what lets GRANII
*discover* GCN's precomputation composition (Figure 6(c)).

``distribute_add`` generates the variants where a multiplication
distributes over a leading addition — e.g. GIN's
``((1+ε)I + A)·H → (1+ε)I·H + A·H`` — so both the precompute-B and the
dynamic-sum compositions enter the candidate pool.
"""

from __future__ import annotations

from typing import List

from .ir import Add, Attention, IRNode, Leaf, MatMul, Nonlinear, RowBroadcast, flatten

__all__ = ["eliminate_row_broadcasts", "distribute_add", "factor_add", "rewrite_variants"]


def eliminate_row_broadcasts(node: IRNode) -> IRNode:
    """Replace every ``RowBroadcast(d, X)`` with ``MatMul(diag_d, X)``."""
    if isinstance(node, Leaf):
        return node
    if isinstance(node, RowBroadcast):
        vec = eliminate_row_broadcasts(node.vec)
        mat = eliminate_row_broadcasts(node.mat)
        if not (isinstance(vec, Leaf) and vec.is_diagonal):
            raise ValueError("row-broadcast vector must be a diagonal leaf")
        return flatten(MatMul((vec, mat)))
    if isinstance(node, MatMul):
        return flatten(MatMul(tuple(eliminate_row_broadcasts(c) for c in node.children)))
    if isinstance(node, Add):
        return flatten(Add(tuple(eliminate_row_broadcasts(c) for c in node.children)))
    if isinstance(node, Nonlinear):
        return Nonlinear(node.name, eliminate_row_broadcasts(node.child))
    if isinstance(node, Attention):
        return Attention(node.pattern, eliminate_row_broadcasts(node.theta))
    raise TypeError(f"unknown IR node {node!r}")


def distribute_add(node: IRNode) -> List[IRNode]:
    """All variants distributing a MatMul over one leading Add child.

    Returns the input itself plus, for every MatMul whose *first* child is
    an Add, the distributed form.  (GNN additions appear on the aggregation
    operator side, so distributing the leading position suffices.)
    """
    variants = [node]
    if isinstance(node, MatMul) and isinstance(node.children[0], Add):
        add = node.children[0]
        rest = node.children[1:]
        # distribute over every prefix of the tail: for GIN this yields
        # both (A·H + Eps·H)·W (DGL's actual execution) and A·H·W + Eps·H·W
        for j in range(1, len(rest) + 1):
            add_part = Add(
                tuple(flatten(MatMul((term,) + rest[:j])) for term in add.children)
            )
            if j == len(rest):
                variants.append(flatten(add_part))
            else:
                variants.append(flatten(MatMul((add_part,) + rest[j:])))
    if isinstance(node, Nonlinear):
        variants = [Nonlinear(node.name, v) for v in distribute_add(node.child)]
    return variants


def _factors(node: IRNode) -> tuple:
    """A node's multiplication factor list (itself if not a MatMul)."""
    if isinstance(node, MatMul):
        return node.children
    return (node,)


def _factor_one_add(add: Add):
    """Factor the longest common trailing factor out of an Add, or None."""
    factor_lists = [_factors(c) for c in add.children]
    suffix_len = 0
    while all(len(f) > suffix_len + 1 for f in factor_lists) and all(
        f[len(f) - suffix_len - 1]
        == factor_lists[0][len(factor_lists[0]) - suffix_len - 1]
        for f in factor_lists
    ):
        suffix_len += 1
    if not suffix_len:
        return None
    suffix = factor_lists[0][len(factor_lists[0]) - suffix_len:]
    prefixes = []
    for f in factor_lists:
        prefix = f[: len(f) - suffix_len]
        prefixes.append(prefix[0] if len(prefix) == 1 else MatMul(prefix))
    return flatten(MatMul((Add(tuple(prefixes)),) + suffix))


def factor_add(node: IRNode) -> List[IRNode]:
    """The inverse rewrite: pull a common trailing factor out of an Add.

    ``(A·H) + (Eps·H)  →  (A + Eps)·H`` — this is how the frontend-parsed
    (distributed) form of GIN recovers the factored form whose enumeration
    discovers the precomputed ``B = A + (1+ε)I`` composition.  Factoring
    applies anywhere an Add appears: at the top level or nested inside a
    multiplication level.
    """
    variants = [node]

    def rewrite(current: IRNode) -> List[IRNode]:
        out: List[IRNode] = []
        if isinstance(current, Nonlinear):
            out.extend(
                Nonlinear(current.name, v) for v in rewrite(current.child)
            )
        elif isinstance(current, Add):
            factored = _factor_one_add(current)
            if factored is not None:
                out.append(factored)
        elif isinstance(current, MatMul):
            for i, child in enumerate(current.children):
                for new_child in rewrite(child):
                    rebuilt = (
                        current.children[:i] + (new_child,) + current.children[i + 1:]
                    )
                    out.append(flatten(MatMul(rebuilt)))
        return out

    variants.extend(rewrite(node))
    return variants


def rewrite_variants(node: IRNode) -> List[IRNode]:
    """The full rewrite pipeline: broadcast elimination, then the closure
    of distribution and common-factor extraction.

    Returns deduplicated IR variants; each is enumerated independently and
    the resulting association trees are merged into one candidate pool.
    """
    base = eliminate_row_broadcasts(flatten(node))
    seen = {repr(base): base}
    frontier = [base]
    while frontier:
        current = frontier.pop()
        for produced in distribute_add(current) + factor_add(current):
            key = repr(produced)
            if key not in seen:
                seen[key] = produced
                frontier.append(produced)
    return list(seen.values())
