"""GRANII core: matrix IR, enumeration, pruning, cost models, runtime."""

from .assoc import Candidate, Step, enumerate_candidates
from .bindings import build_binding, model_ir_kwargs, model_ir_name
from .codegen import (
    CompiledModel,
    PlannedCandidate,
    clear_compile_cache,
    compile_model,
    emit_python_source,
    plan_tags,
    select_default_plan,
)
from .costmodel import (
    CostModelSet,
    clear_cost_model_cache,
    get_cost_models,
    load_cost_models,
    save_cost_models,
    train_cost_models,
)
from .features import FEATURE_NAMES, call_features, featurize_graph, num_features
from .ir import (
    Add,
    Attention,
    Leaf,
    MatMul,
    Nonlinear,
    RowBroadcast,
    ShapeEnv,
    dense_data,
    dense_weight,
    diagonal,
    sparse_unweighted,
    sparse_weighted,
)
from .modelir import MODEL_IR_BUILDERS, build_model_ir
from .plan import EdgeSparse, KernelExecutionConfig, LayerBinding, Plan
from .profiler import DEFAULT_SIZES, PROFILED_PRIMITIVES, ProfileDataset, collect_profile
from .pruning import SCENARIOS, PrunedCandidate, cost_signature, prune_candidates
from .rewrite import distribute_add, eliminate_row_broadcasts, rewrite_variants
from .runtime import GraniiEngine, OptimizationReport, SelectionReport

__all__ = [
    "Add",
    "Attention",
    "Candidate",
    "CompiledModel",
    "CostModelSet",
    "DEFAULT_SIZES",
    "EdgeSparse",
    "FEATURE_NAMES",
    "GraniiEngine",
    "KernelExecutionConfig",
    "LayerBinding",
    "Leaf",
    "MODEL_IR_BUILDERS",
    "MatMul",
    "Nonlinear",
    "OptimizationReport",
    "PROFILED_PRIMITIVES",
    "Plan",
    "PlannedCandidate",
    "ProfileDataset",
    "PrunedCandidate",
    "RowBroadcast",
    "SCENARIOS",
    "SelectionReport",
    "ShapeEnv",
    "Step",
    "build_binding",
    "build_model_ir",
    "call_features",
    "clear_compile_cache",
    "clear_cost_model_cache",
    "collect_profile",
    "compile_model",
    "cost_signature",
    "dense_data",
    "dense_weight",
    "diagonal",
    "distribute_add",
    "eliminate_row_broadcasts",
    "emit_python_source",
    "enumerate_candidates",
    "featurize_graph",
    "get_cost_models",
    "load_cost_models",
    "save_cost_models",
    "model_ir_kwargs",
    "model_ir_name",
    "num_features",
    "plan_tags",
    "prune_candidates",
    "rewrite_variants",
    "select_default_plan",
    "sparse_unweighted",
    "sparse_weighted",
    "train_cost_models",
]
