"""AST linter enforcing the repository's runtime invariants.

Rules (each waivable per line with ``# lint: allow(<rule>)`` on the
offending line or the line above; waivers are counted, not silent):

- ``env-outside-config`` — ``os.environ`` / ``os.getenv`` anywhere but
  ``repro/config.py``.  Every knob must flow through the validated
  ``REPRO_*`` accessors so typos raise ``GraniiConfigError`` instead of
  silently picking defaults.
- ``raw-alloc-in-kernels`` — ``np.empty`` / ``np.zeros`` inside
  ``repro/kernels/`` bypasses the :class:`WorkspaceArena` scratch
  discipline (``workspace.py`` itself is exempt: the arena's own
  allocation cannot bypass the arena).
- ``granii-except`` — a bare ``except:`` anywhere, or an
  ``except Exception/GraniiError`` whose body only swallows
  (``pass``/``...``/``continue``) inside guard/dispatch modules, where a
  swallowed failure silently breaks the fallback-ladder contract.
- ``shared-write-in-parallel`` — inside a function submitted to a
  thread pool (``.map``/``.submit``) in ``repro/kernels/``,
  ``repro/serving/``, or ``repro/framework/mp.py``, a subscript write
  to a captured array whose index is not provably derived from the
  function's own work item (parameters/locals); such writes are not
  provably disjoint across workers.  Both free functions and
  ``self._method`` submit targets are resolved.
- ``alloc-in-compiled`` — any NumPy allocator (``empty``/``zeros``/
  ``ones``/``full`` and their ``_like`` variants) inside
  ``repro/kernels/compiled.py``: compiled callables run on the guard's
  hot path and must draw every scratch buffer from the
  :class:`WorkspaceArena` so demotion-time ``drop_buffers()`` can
  release them (the fused result buffer carries an explicit waiver).

CLI::

    python -m repro.analysis.lint src/repro [--json REPORT.json]

Exit status 0 when no (unwaived) violations, 1 otherwise; each finding
prints as ``<rule> <file>:<line> <message>``.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

__all__ = ["RULES", "Violation", "lint_source", "lint_paths", "main"]

RULES = (
    "env-outside-config",
    "raw-alloc-in-kernels",
    "granii-except",
    "shared-write-in-parallel",
    "alloc-in-compiled",
)

# the full NumPy allocator surface the compiled-kernel rule forbids
_COMPILED_ALLOCATORS = {
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([a-z\-,\s]+)\)")

# modules where a swallowed broad handler breaks the runtime contract
_GUARD_PATH_HINTS = ("core/guard", "kernels/registry", "core/plan")


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    line: int
    message: str
    waived: bool = False

    def describe(self) -> str:
        suffix = " (waived)" if self.waived else ""
        return f"{self.rule} {self.path}:{self.line} {self.message}{suffix}"


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_np_call(node: ast.Call, names: Set[str]) -> Optional[str]:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in names
    ):
        return f"{func.value.id}.{func.attr}"
    return None


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Handler body does nothing but suppress the exception."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for n in nodes:
        if isinstance(n, ast.Name):
            names.append(n.id)
        elif isinstance(n, ast.Attribute):
            names.append(n.attr)
    return names


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = _norm(path)
        self.tree = tree
        self.found: List[Violation] = []
        self.in_kernels = (
            "repro/kernels/" in self.path
            and not self.path.endswith("workspace.py")
        )
        self.in_config = self.path.endswith("repro/config.py")
        # parallel-closure discipline applies wherever this repo submits
        # work to executors: kernels, the serving runtime, and the
        # multiprocess training harness
        self.in_parallel_scope = (
            self.in_kernels
            or "repro/serving/" in self.path
            or self.path.endswith("repro/framework/mp.py")
        )
        self.in_compiled = self.path.endswith("repro/kernels/compiled.py")
        self.in_guard_path = any(h in self.path for h in _GUARD_PATH_HINTS)
        self._functions: Dict[str, ast.FunctionDef] = {
            n.name: n
            for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef)
        }

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.found.append(
            Violation(rule, self.path, getattr(node, "lineno", 0), message)
        )

    # -- env-outside-config -------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.in_config
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in ("environ", "getenv")
        ):
            self._emit(
                "env-outside-config", node,
                f"os.{node.attr} outside repro/config.py — use the "
                f"validated repro.config accessors",
            )
        self.generic_visit(node)

    # -- raw-alloc-in-kernels ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.in_kernels:
            name = _is_np_call(node, {"empty", "zeros"})
            if name:
                self._emit(
                    "raw-alloc-in-kernels", node,
                    f"{name} in repro/kernels/ bypasses WorkspaceArena",
                )
        if self.in_compiled:
            name = _is_np_call(node, _COMPILED_ALLOCATORS)
            if name:
                self._emit(
                    "alloc-in-compiled", node,
                    f"{name} in the compiled kernel — scratch must come "
                    f"from the WorkspaceArena so guard demotion can "
                    f"release it",
                )
        if (
            self.in_parallel_scope
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("map", "submit")
            and node.args
        ):
            self._check_parallel_closure(node)
        self.generic_visit(node)

    # -- granii-except -------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "granii-except", node,
                "bare except: swallows KeyboardInterrupt and masks the "
                "structured GraniiError contract",
            )
        elif self.in_guard_path and _swallows(node):
            broad = {"Exception", "BaseException", "GraniiError"}
            caught = set(_handler_names(node))
            if caught & broad:
                self._emit(
                    "granii-except", node,
                    f"except {'/'.join(sorted(caught & broad))} with an "
                    f"empty body swallows failures the fallback ladder "
                    f"must see",
                )
        self.generic_visit(node)

    # -- shared-write-in-parallel --------------------------------------
    def _check_parallel_closure(self, call: ast.Call) -> None:
        target = call.args[0]
        fn: Optional[ast.FunctionDef] = None
        if isinstance(target, ast.Name):
            fn = self._functions.get(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            fn = self._functions.get(target.attr)
        if fn is None:
            return
        params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if fn.args.vararg:
            params.add(fn.args.vararg.arg)
        local: Set[str] = set(params)
        for n in ast.walk(fn):
            if isinstance(n, ast.Assign):
                for t in n.targets:
                    for leaf in ast.walk(t):
                        if isinstance(leaf, ast.Name) and isinstance(
                            leaf.ctx, ast.Store
                        ):
                            local.add(leaf.id)
            elif isinstance(n, (ast.AugAssign, ast.AnnAssign, ast.For)):
                t = n.target
                for leaf in ast.walk(t):
                    if isinstance(leaf, ast.Name) and isinstance(
                        leaf.ctx, ast.Store
                    ):
                        local.add(leaf.id)
        for n in ast.walk(fn):
            if not isinstance(n, (ast.Assign, ast.AugAssign)):
                continue
            targets = n.targets if isinstance(n, ast.Assign) else [n.target]
            for t in targets:
                if not isinstance(t, ast.Subscript):
                    continue
                base = t.value
                if not (isinstance(base, ast.Name) and base.id not in local):
                    continue  # writes to the closure's own values are fine
                index_names = [
                    leaf.id
                    for leaf in ast.walk(t.slice)
                    if isinstance(leaf, ast.Name)
                ]
                if not index_names or any(
                    name not in local for name in index_names
                ):
                    self._emit(
                        "shared-write-in-parallel", n,
                        f"write to shared array {base.id!r} inside "
                        f"{fn.name!r} (submitted to {call.func.attr}) with "
                        f"an index not derived from the work item — not "
                        f"provably disjoint across workers",
                    )


def _apply_waivers(source: str, found: List[Violation]) -> List[Violation]:
    lines = source.splitlines()
    waivers: Dict[int, Set[str]] = {}
    for i, text in enumerate(lines, start=1):
        m = _ALLOW_RE.search(text)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            waivers[i] = rules
    out: List[Violation] = []
    for v in found:
        allowed = waivers.get(v.line, set()) | waivers.get(v.line - 1, set())
        if v.rule in allowed:
            out.append(Violation(v.rule, v.path, v.line, v.message, waived=True))
        else:
            out.append(v)
    return out


def lint_source(source: str, path: str) -> List[Violation]:
    """Lint one file's source text; returns violations incl. waived ones."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("syntax-error", _norm(path), exc.lineno or 0, str(exc))]
    linter = _FileLinter(path, tree)
    linter.visit(tree)
    return sorted(
        _apply_waivers(source, linter.found), key=lambda v: (v.line, v.rule)
    )


def _iter_py_files(paths: Sequence[str]):
    for path in paths:
        if os.path.isfile(path):
            yield path
        else:
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    out: List[Violation] = []
    for path in _iter_py_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            out.extend(lint_source(fh.read(), path))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=__doc__.split("\n")[0],
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint")
    parser.add_argument("--json", default="", help="write findings JSON here")
    args = parser.parse_args(argv)

    violations = lint_paths(args.paths or ["src/repro"])
    active = [v for v in violations if not v.waived]
    waived = [v for v in violations if v.waived]
    for v in active:
        print(v.describe())
    summary = (
        f"{len(active)} violation(s), {len(waived)} waived"
        if violations
        else "clean"
    )
    print(summary)
    if args.json:
        waiver_counts: Dict[str, int] = {}
        for v in waived:
            waiver_counts[v.rule] = waiver_counts.get(v.rule, 0) + 1
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "violations": [v.describe() for v in active],
                    "waived": [v.describe() for v in waived],
                    "waiver_counts": waiver_counts,
                    "totals": {
                        "active": len(active),
                        "waived": len(waived),
                    },
                },
                fh, indent=2,
            )
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
