"""Static analysis for GRANII: plan verification and codebase linting.

Three prongs, all purely static:

- :mod:`repro.analysis.planlint` — an abstract interpreter over the
  matrix IR and lowered plan steps.  It re-derives every step's result
  description from the rule table under symbolic shape/sparsity/nnz
  domains (:mod:`repro.analysis.domains`), flags SSA/alias/lifetime
  hazards, and produces per-plan :class:`~repro.analysis.planlint.PlanVerdict`
  records (proved facts + residual obligations) that
  ``repro.core.pruning`` uses to reject statically-illegal trees before
  cost modeling and ``repro.core.guard`` uses to skip redundant runtime
  checks.
- :mod:`repro.analysis.lint` — an AST linter enforcing the repository's
  runtime invariants (``repro.config`` env discipline, ``WorkspaceArena``
  allocation discipline, structured ``GraniiError`` handling, provably
  disjoint writes in ``blocked_parallel`` closures).
- :mod:`repro.analysis.conclint` — an *interprocedural* concurrency
  linter: whole-program lock-acquisition-order graph (cycles, blocking
  calls under locks, bare acquires), resource-lifetime proofs for
  shared-memory segments/pooled buffers/executors over exception and
  respawn edges, and a symbolic interval proof that sharded
  ``out[r0:r1]`` writes are disjoint.  Its static lock graph is
  validated dynamically by :mod:`repro.faults.racestress`.

CLIs::

    python -m repro.analysis              # planlint over the model zoo
    python -m repro.analysis --self-test  # seeded-mutation self test
    python -m repro.analysis.lint src/repro
    python -m repro.analysis.conclint src/repro
    python -m repro.analysis.conclint --self-test
"""

from .domains import AbstractMatrix, join_structure, structure_leq, structure_of
from .planlint import (
    Diagnostic,
    PlanVerdict,
    analyze_candidate,
    analyze_plan,
    analysis_env_key,
    reject_illegal,
)

__all__ = [
    "AbstractMatrix",
    "Diagnostic",
    "PlanVerdict",
    "analyze_candidate",
    "analyze_plan",
    "analysis_env_key",
    "reject_illegal",
    "join_structure",
    "structure_leq",
    "structure_of",
]
