"""Seeded IR mutations: the analyzer's self-test.

A static analyzer that has never seen a bug proves nothing.  Each
mutation here plants one specific, realistic defect into a *clean*
promoted candidate (or workspace trace) — swapped operands, a dropped
transpose, a stale nnz bound, a leaked arena buffer — and records which
diagnostic rule must fire.  :func:`run_self_test` applies every mutation
to the first applicable candidate from the model zoo and fails loudly if
any planted bug survives analysis; it runs in CI via
``python -m repro.analysis --self-test`` and in ``tests/test_analysis.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.assoc import Candidate, Step
from ..core.rules import Operand
from .planlint import (
    analyze_candidate,
    check_workspace_trace,
    workspace_trace,
)

__all__ = ["MUTATIONS", "Mutation", "run_self_test"]


class NotApplicable(Exception):
    """The mutation found no site in this candidate."""


def _replace_step(cand: Candidate, old: Step, new: Step) -> Candidate:
    steps = set(cand.steps)
    steps.discard(old)
    steps.add(new)
    return Candidate(frozenset(steps), cand.output)


def _add_step(cand: Candidate, new: Step) -> Candidate:
    return Candidate(cand.steps | {new}, cand.output)


def _find(cand: Candidate, pred) -> Step:
    for step in cand.ordered_steps():
        if pred(step):
            return step
    raise NotApplicable


def _swap_desc_shape(desc: Operand) -> Operand:
    return Operand(desc.ref, desc.attr, desc.subattr,
                   (desc.shape[1], desc.shape[0]), desc.nnz)


# ----------------------------------------------------------------------
# Candidate mutations
# ----------------------------------------------------------------------
def swap_gemm_operands(cand: Candidate) -> Candidate:
    s = _find(cand, lambda s: s.primitive == "gemm"
              and s.arg_descs[0].shape != s.arg_descs[1].shape)
    new = replace(s, args=s.args[::-1], arg_descs=s.arg_descs[::-1])
    return _replace_step(cand, s, new)


def swap_spmm_operands(cand: Candidate) -> Candidate:
    s = _find(cand, lambda s: s.primitive in ("spmm", "spmm_unweighted"))
    new = replace(s, args=s.args[::-1], arg_descs=s.arg_descs[::-1])
    return _replace_step(cand, s, new)


def drop_transpose(cand: Candidate) -> Candidate:
    """One use of a multi-use leaf silently sees the transposed shape."""
    uses: Dict[str, List[Step]] = {}
    produced = {s.out for s in cand.steps}
    for step in cand.ordered_steps():
        for ref in step.args:
            if ref not in produced:
                uses.setdefault(ref, []).append(step)
    for ref, steps in sorted(uses.items()):
        if len(steps) < 2:
            continue
        s = steps[0]
        idx = s.args.index(ref)
        if s.arg_descs[idx].shape[0] == s.arg_descs[idx].shape[1]:
            continue  # transposing a square desc is invisible
        descs = list(s.arg_descs)
        descs[idx] = _swap_desc_shape(descs[idx])
        return _replace_step(cand, s, replace(s, arg_descs=tuple(descs)))
    raise NotApplicable


def stale_nnz_bound(cand: Candidate) -> Candidate:
    """Sparse result keeps an old bound after the pattern grew."""
    s = _find(cand, lambda s: s.out_desc.attr == "sparse"
              and s.out_desc.nnz not in (None, "N"))
    od = s.out_desc
    new_od = Operand(od.ref, od.attr, od.subattr, od.shape, "N")
    return _replace_step(cand, s, replace(s, out_desc=new_od))


def mismatched_out_shape(cand: Candidate) -> Candidate:
    s = _find(cand, lambda s: s.out_desc.shape[0] != s.out_desc.shape[1])
    return _replace_step(
        cand, s, replace(s, out_desc=_swap_desc_shape(s.out_desc))
    )


def wrong_result_attr(cand: Candidate) -> Candidate:
    s = _find(cand, lambda s: s.out_desc.attr == "sparse"
              and s.out_desc.subattr == "weighted")
    od = s.out_desc
    new_od = Operand(od.ref, "dense", "data", od.shape, None)
    return _replace_step(cand, s, replace(s, out_desc=new_od))


def undefined_ref(cand: Candidate) -> Candidate:
    """A step consumes an intermediate no step produces."""
    s = _find(cand, lambda s: any("(" in a for a in s.args))
    idx = next(i for i, a in enumerate(s.args) if "(" in a)
    args = list(s.args)
    args[idx] = "ghost(" + args[idx] + ")"
    return _replace_step(cand, s, replace(s, args=tuple(args)))


def double_write(cand: Candidate) -> Candidate:
    """Two distinct steps write the same output ref."""
    s = _find(cand, lambda s: True)
    shadow = replace(s, meta=s.meta + "#shadow")
    return _add_step(cand, shadow)


def dead_step(cand: Candidate) -> Candidate:
    """A step whose result nothing consumes."""
    s = _find(cand, lambda s: True)
    od = s.out_desc
    dead_out = f"dead({s.out})"
    dead = replace(
        s,
        out=dead_out,
        out_desc=Operand(dead_out, od.attr, od.subattr, od.shape, od.nnz),
    )
    return _add_step(cand, dead)


def inplace_alias(cand: Candidate) -> Candidate:
    """A step reads and writes the same ref (in-place update)."""
    s = _find(cand, lambda s: len(s.args) >= 1)
    args = (s.out,) + s.args[1:]
    descs = (Operand(s.out, s.arg_descs[0].attr, s.arg_descs[0].subattr,
                     s.arg_descs[0].shape, s.arg_descs[0].nnz),) + s.arg_descs[1:]
    return _replace_step(cand, s, replace(s, args=args, arg_descs=descs))


def unresolvable_dim(cand: Candidate) -> Candidate:
    """A declared shape names a symbol no environment binds."""
    s = _find(cand, lambda s: isinstance(s.out_desc.shape[0], str))
    od = s.out_desc
    new_od = Operand(od.ref, od.attr, od.subattr,
                     ("Q?", od.shape[1]), od.nnz)
    return _replace_step(cand, s, replace(s, out_desc=new_od))


# ----------------------------------------------------------------------
# Workspace-trace mutations
# ----------------------------------------------------------------------
def workspace_leak(events: List[Tuple[str, str, str]]):
    """Drop the exception-edge release: a kernel crash leaks the tile."""
    for i, (kind, _, _) in enumerate(events):
        if kind == "release-exception":
            return events[:i] + events[i + 1:]
    raise NotApplicable


def workspace_double_use(events: List[Tuple[str, str, str]]):
    """A second acquire of a live buffer key."""
    for i, (kind, key, out) in enumerate(events):
        if kind == "acquire":
            return events[:i + 1] + [("acquire", key, out + "#again")] + events[i + 1:]
    raise NotApplicable


@dataclass(frozen=True)
class Mutation:
    """One planted bug: how to plant it, which rules may catch it."""

    name: str
    kind: str  # 'candidate' | 'trace'
    apply: Callable
    expected_rules: FrozenSet[str]


def _m(name, kind, fn, *rules) -> Mutation:
    return Mutation(name, kind, fn, frozenset(rules))


MUTATIONS: List[Mutation] = [
    _m("swap_gemm_operands", "candidate", swap_gemm_operands,
       "shape-mismatch", "result-shape-mismatch"),
    _m("swap_spmm_operands", "candidate", swap_spmm_operands,
       "operand-attr-mismatch"),
    _m("drop_transpose", "candidate", drop_transpose,
       "leaf-desc-inconsistent", "shape-mismatch"),
    _m("stale_nnz_bound", "candidate", stale_nnz_bound, "stale-nnz-bound"),
    _m("mismatched_out_shape", "candidate", mismatched_out_shape,
       "result-shape-mismatch"),
    _m("wrong_result_attr", "candidate", wrong_result_attr,
       "result-attr-mismatch"),
    _m("undefined_ref", "candidate", undefined_ref, "undefined-ref"),
    _m("double_write", "candidate", double_write, "ssa-violation"),
    _m("dead_step", "candidate", dead_step, "dead-step"),
    _m("inplace_alias", "candidate", inplace_alias,
       "inplace-alias", "undefined-ref"),
    _m("unresolvable_dim", "candidate", unresolvable_dim,
       "result-shape-mismatch"),
    _m("workspace_leak", "trace", workspace_leak, "workspace-leak"),
    _m("workspace_double_use", "trace", workspace_double_use,
       "workspace-double-use"),
]


def _zoo_pool():
    """Clean candidates and plans to mutate (compiled zoo defaults)."""
    from ..core.codegen import compile_model

    pool: List[Candidate] = []
    plans = []
    for name in ("gcn", "gat", "gin", "sgc", "tagcn"):
        compiled = compile_model(name)
        for pc in compiled.promoted:
            pool.append(pc.plan.candidate)
            plans.append(pc.plan)
    return pool, plans


def run_self_test(verbose: bool = False) -> List[Dict[str, object]]:
    """Apply every mutation; each planted bug must be caught.

    Returns one record per mutation; a record with ``caught == False``
    (or an unapplicable mutation) is a self-test failure.
    """
    pool, plans = _zoo_pool()
    records: List[Dict[str, object]] = []
    for mutation in MUTATIONS:
        record: Dict[str, object] = {
            "mutation": mutation.name,
            "expected": sorted(mutation.expected_rules),
        }
        fired: List[str] = []
        applied = False
        if mutation.kind == "candidate":
            for cand in pool:
                try:
                    mutated = mutation.apply(cand)
                except NotApplicable:
                    continue
                applied = True
                verdict = analyze_candidate(mutated, name=mutation.name)
                fired = sorted({d.rule for d in verdict.errors})
                break
        else:
            for plan in plans:
                events = workspace_trace(plan, "blocked")
                if not events:
                    continue
                try:
                    mutated_events = mutation.apply(list(events))
                except NotApplicable:
                    continue
                applied = True
                diags = check_workspace_trace(mutated_events)
                fired = sorted({d.rule for d in diags})
                break
        record["applied"] = applied
        record["fired"] = fired
        record["caught"] = applied and bool(
            mutation.expected_rules.intersection(fired)
        )
        records.append(record)
        if verbose:
            status = "caught" if record["caught"] else "MISSED"
            print(f"  {mutation.name:<22} -> {status} ({', '.join(fired) or '-'})")
    return records
