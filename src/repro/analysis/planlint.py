"""planlint: abstract interpretation over lowered GRANII plans.

The enumerator (``repro.core.assoc``) *declares* a result description
for every step it emits; nothing before this module ever checked those
declarations.  The interpreter here re-derives each step's result from
the rule table's semantics under the abstract domains of
:mod:`repro.analysis.domains` — symbolic shapes, the sparsity-structure
lattice, symbolic nnz upper bounds — and reports any disagreement, plus
the structural hazards a declaration cannot express:

- ``undefined-ref`` / ``ssa-violation`` / ``dead-step`` /
  ``missing-output`` — dataflow integrity of the step DAG;
- ``inplace-alias`` — a step whose output aliases one of its inputs,
  which would corrupt the autograd tape's saved activations;
- ``leaf-desc-inconsistent`` — the same leaf used under two different
  descriptions (the classic dropped-transpose bug);
- ``shape-mismatch`` / ``operand-attr-mismatch`` /
  ``result-shape-mismatch`` / ``result-attr-mismatch`` /
  ``stale-nnz-bound`` — rule-table disagreements;
- ``workspace-leak`` / ``workspace-double-use`` — the
  :class:`~repro.kernels.workspace.WorkspaceArena` acquire/release
  protocol, checked over *both* the normal and the exception edge of
  every blocked-strategy kernel step.

Verdicts are :class:`PlanVerdict` records: proved facts, residual
obligations (properties that remain runtime checks), and diagnostics.
``repro.core.pruning.prune_candidates`` rejects candidates whose verdict
has error diagnostics before cost modeling; the guarded executor skips
runtime re-checks of facts proved here (see ``SelectionReport.analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.assoc import Candidate, Step
from ..core.ir import ShapeEnv, dims_compatible
from ..errors import GraniiAnalysisError
from .domains import (
    AbstractMatrix,
    compose_product_nnz,
    from_operand,
    join_structure,
    nnz_leq,
    plus_diag_nnz,
    structure_of,
)

__all__ = [
    "Diagnostic",
    "FusionReport",
    "FusionSegmentSpec",
    "PlanVerdict",
    "analyze_candidate",
    "analyze_plan",
    "analysis_env_key",
    "fusion_legality",
    "reject_illegal",
    "workspace_trace",
    "check_workspace_trace",
    "shard_coverage_diagnostics",
]

# Primitives whose blocked-strategy kernels tile through the arena.
WORKSPACE_PRIMITIVES = ("spmm", "spmm_unweighted")

# Unary element-wise metas the fused epilogue can replay bit-identically
# (mirrors repro.kernels.compiled.FUSABLE_NONLINEARS; kept literal here so
# the analysis layer never imports kernel code).
FUSABLE_NONLINEAR_METAS = ("relu", "leaky_relu", "elu", "sigmoid")


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding. ``severity`` is 'error' or 'warning'."""

    rule: str
    message: str
    step: str = ""  # offending step signature, if any
    severity: str = "error"

    def describe(self) -> str:
        where = f" [{self.step}]" if self.step else ""
        return f"{self.severity}: {self.rule}: {self.message}{where}"


@dataclass
class PlanVerdict:
    """The analyzer's verdict on one candidate/plan.

    ``proved`` are facts established statically (the guard may skip the
    corresponding runtime checks); ``obligations`` are properties the
    analyzer could *not* discharge and that remain runtime checks.
    ``facts`` carries computed values backing proved facts (e.g. the
    peak-memory estimate under ``env_key``).
    """

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    proved: List[str] = field(default_factory=list)
    obligations: List[str] = field(default_factory=list)
    env_key: Tuple = ()
    facts: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def describe(self) -> str:
        status = "ok" if self.ok else "REJECTED"
        lines = [
            f"planlint {self.target}: {status} "
            f"(proved {len(self.proved)}, obligations {len(self.obligations)})"
        ]
        lines += [f"  {d.describe()}" for d in self.diagnostics]
        lines += [f"  proved: {p}" for p in self.proved]
        lines += [f"  obligation: {o}" for o in self.obligations]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "ok": self.ok,
            "diagnostics": [d.describe() for d in self.diagnostics],
            "proved": list(self.proved),
            "obligations": list(self.obligations),
        }


def analysis_env_key(env: Optional[Dict]) -> Tuple:
    """Canonical hashable key for a shape environment."""
    if not env:
        return ()
    return tuple(sorted((str(k), int(v)) for k, v in env.items()))


# ----------------------------------------------------------------------
# Per-primitive transfer functions
# ----------------------------------------------------------------------
def _err(diags: List[Diagnostic], rule: str, message: str, step: Step) -> None:
    diags.append(Diagnostic(rule, message, step=step.out))


def _check_inner(
    diags: List[Diagnostic], step: Step, left: AbstractMatrix, right: AbstractMatrix
) -> None:
    if not dims_compatible(left.shape[1], right.shape[0]):
        _err(
            diags,
            "shape-mismatch",
            f"contraction mismatch: {left.describe()} · {right.describe()}",
            step,
        )


def _derive(
    step: Step, argvals: Sequence[AbstractMatrix], diags: List[Diagnostic]
) -> Optional[AbstractMatrix]:
    """Re-derive the step's result description from the rule table.

    Returns None when the step is too malformed to produce a result
    (diagnostics explain why); the interpreter then falls back to the
    declared description so analysis can continue downstream.
    """
    p = step.primitive

    def arity(*allowed: int) -> bool:
        if len(argvals) not in allowed:
            _err(
                diags,
                "operand-attr-mismatch",
                f"{p} expects {' or '.join(map(str, allowed))} operands, "
                f"got {len(argvals)}",
                step,
            )
            return False
        return True

    def result(
        attr: str, subattr: str, shape, nnz=None, structure=None
    ) -> AbstractMatrix:
        return AbstractMatrix(
            ref=step.out,
            attr=attr,
            subattr=subattr,
            shape=tuple(shape),
            nnz=nnz,
            structure=structure,
            origin=step.out,
        )

    if p == "gemm":
        if not arity(2):
            return None
        a, b = argvals
        for v in (a, b):
            if not v.is_dense:
                _err(diags, "operand-attr-mismatch",
                     f"gemm needs dense operands, got {v.describe()}", step)
        _check_inner(diags, step, a, b)
        return result("dense", "data", (a.shape[0], b.shape[1]))

    if p in ("spmm", "spmm_unweighted"):
        if not arity(2):
            return None
        a, b = argvals
        want = "unweighted" if p == "spmm_unweighted" else "weighted"
        if not (a.is_sparse_matrix and a.subattr == want):
            _err(diags, "operand-attr-mismatch",
                 f"{p} needs a sparse.{want} matrix, got {a.describe()}", step)
        if not b.is_dense:
            _err(diags, "operand-attr-mismatch",
                 f"{p} needs a dense right operand, got {b.describe()}", step)
        _check_inner(diags, step, a, b)
        return result("dense", "data", (a.shape[0], b.shape[1]))

    if p == "row_broadcast":
        if not arity(2):
            return None
        d, x = argvals
        if not d.is_diagonal:
            _err(diags, "operand-attr-mismatch",
                 f"row_broadcast needs a diagonal, got {d.describe()}", step)
        if not x.is_dense:
            _err(diags, "operand-attr-mismatch",
                 f"row_broadcast needs a dense matrix, got {x.describe()}", step)
        _check_inner(diags, step, d, x)
        return result("dense", "data", (d.shape[0], x.shape[1]))

    if p == "diag_mul":
        if not arity(2):
            return None
        a, b = argvals
        for v in (a, b):
            if not v.is_diagonal:
                _err(diags, "operand-attr-mismatch",
                     f"diag_mul needs diagonals, got {v.describe()}", step)
        _check_inner(diags, step, a, b)
        return result(
            "sparse", "diagonal", (a.shape[0], b.shape[1]),
            nnz=a.shape[0], structure="diagonal",
        )

    if p == "sddmm_diag":
        if not arity(2, 3):
            return None
        sparse = [v for v in argvals if v.is_sparse_matrix]
        diag_count = sum(1 for v in argvals if v.is_diagonal)
        if len(sparse) != 1 or diag_count != len(argvals) - 1:
            _err(diags, "operand-attr-mismatch",
                 "sddmm_diag needs exactly one sparse matrix scaled by "
                 "diagonal(s), got "
                 + ", ".join(v.describe() for v in argvals), step)
            return None
        for left, right in zip(argvals, argvals[1:]):
            _check_inner(diags, step, left, right)
        return result(
            "sparse", "weighted",
            (argvals[0].shape[0], argvals[-1].shape[1]),
            nnz=sparse[0].nnz,
            structure=sparse[0].structure,
        )

    if p == "spadd_diag":
        if not arity(2):
            return None
        sparse = [v for v in argvals if v.is_sparse_matrix]
        diag = [v for v in argvals if v.is_diagonal]
        if len(sparse) != 1 or len(diag) != 1:
            _err(diags, "operand-attr-mismatch",
                 "spadd_diag needs one sparse matrix and one diagonal, got "
                 + ", ".join(v.describe() for v in argvals), step)
            return None
        if not sparse[0].compatible_shape(diag[0].shape):
            _err(diags, "shape-mismatch",
                 f"addition over unequal shapes: {sparse[0].describe()} + "
                 f"{diag[0].describe()}", step)
        return result(
            "sparse", "weighted", sparse[0].shape,
            nnz=plus_diag_nnz(sparse[0].nnz, diag[0].shape[0]),
            structure=join_structure(sparse[0].structure, "diagonal"),
        )

    if p == "spgemm":
        if not arity(2):
            return None
        a, b = argvals
        for v in (a, b):
            if not v.is_sparse_matrix:
                _err(diags, "operand-attr-mismatch",
                     f"spgemm needs sparse matrices, got {v.describe()}", step)
        _check_inner(diags, step, a, b)
        return result(
            "sparse", "weighted", (a.shape[0], b.shape[1]),
            nnz=compose_product_nnz(a.nnz, b.nnz),
            structure=join_structure(a.structure, b.structure),
        )

    if p == "attention":
        if not arity(2):
            return None
        pattern, theta = argvals
        if not pattern.is_sparse_matrix:
            _err(diags, "operand-attr-mismatch",
                 f"attention needs a sparse pattern, got {pattern.describe()}",
                 step)
        if not theta.is_dense:
            _err(diags, "operand-attr-mismatch",
                 f"attention needs dense features, got {theta.describe()}",
                 step)
        _check_inner(diags, step, pattern, theta)
        return result(
            "sparse", "weighted", pattern.shape,
            nnz=pattern.nnz, structure=pattern.structure,
        )

    if p == "fused_attn_spmm":
        if not arity(3):
            return None
        pattern, theta, x = argvals
        if not pattern.is_sparse_matrix:
            _err(diags, "operand-attr-mismatch",
                 f"fused_attn_spmm needs a sparse pattern, got "
                 f"{pattern.describe()}", step)
        for v in (theta, x):
            if not v.is_dense:
                _err(diags, "operand-attr-mismatch",
                     f"fused_attn_spmm needs dense features, got "
                     f"{v.describe()}", step)
        _check_inner(diags, step, pattern, theta)
        _check_inner(diags, step, pattern, x)
        return result("dense", "data", (pattern.shape[0], x.shape[1]))

    if p == "elementwise":
        if step.meta == "add":
            if len(argvals) < 2:
                _err(diags, "operand-attr-mismatch",
                     "elementwise add needs at least two operands", step)
                return None
        elif not arity(1):
            return None
        first = argvals[0]
        structure = first.structure
        for v in argvals[1:]:
            if v.attr != first.attr or not first.compatible_shape(v.shape):
                _err(diags, "shape-mismatch",
                     f"elementwise over unequal operands: {first.describe()} "
                     f"vs {v.describe()}", step)
            structure = join_structure(structure, v.structure)
        return result(
            first.attr, first.subattr, first.shape,
            nnz=first.nnz, structure=structure,
        )

    _err(diags, "unknown-primitive", f"no transfer function for {p!r}", step)
    return None


def _check_declared(
    step: Step, derived: AbstractMatrix, diags: List[Diagnostic],
    obligations: List[str],
) -> None:
    """Compare the enumerator's declared out_desc to the derivation."""
    declared = step.out_desc
    if (declared.attr, declared.subattr) != (derived.attr, derived.subattr):
        _err(diags, "result-attr-mismatch",
             f"declared {declared.attr}.{declared.subattr}, rules derive "
             f"{derived.attr}.{derived.subattr}", step)
    if tuple(declared.shape) != derived.shape:
        if derived.compatible_shape(tuple(declared.shape)):
            obligations.append(
                f"{step.out}: declared shape {declared.shape} only "
                f"resolvable against derived {derived.shape} at runtime"
            )
        else:
            _err(diags, "result-shape-mismatch",
                 f"declared shape {tuple(declared.shape)}, rules derive "
                 f"{derived.shape}", step)
    if declared.attr != "sparse":
        return
    if derived.nnz is None:
        obligations.append(
            f"{step.out}: nnz bound {declared.nnz!r} outside the bound "
            f"algebra; checked at runtime"
        )
    elif declared.nnz != derived.nnz:
        if nnz_leq(derived.nnz, declared.nnz) is True:
            diags.append(Diagnostic(
                "stale-nnz-bound",
                f"declared bound {declared.nnz!r} is looser than derived "
                f"{derived.nnz!r}",
                step=step.out, severity="warning",
            ))
        else:
            _err(diags, "stale-nnz-bound",
                 f"declared nnz bound {declared.nnz!r} does not cover "
                 f"derived {derived.nnz!r}", step)


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
def analyze_candidate(candidate: Candidate, name: str = "") -> PlanVerdict:
    """Abstractly interpret one candidate's step DAG."""
    verdict = PlanVerdict(target=name or candidate.output)
    diags = verdict.diagnostics
    steps = list(candidate.steps)

    # dataflow integrity on the *raw* step set: ordered_steps() keys by
    # output ref, so a double write would silently collapse there.
    outs = [s.out for s in steps]
    producers = set(outs)
    if len(producers) != len(outs):
        dupes = sorted({o for o in outs if outs.count(o) > 1})
        for ref in dupes:
            diags.append(Diagnostic(
                "ssa-violation",
                f"{ref!r} is written by {outs.count(ref)} steps", step=ref,
            ))

    ordered = candidate.ordered_steps()
    state: Dict[str, AbstractMatrix] = {}
    leaf_state: Dict[str, AbstractMatrix] = {}

    for step in ordered:
        if step.out in step.args:
            diags.append(Diagnostic(
                "inplace-alias",
                f"step output aliases its own input {step.out!r}; in-place "
                f"update would corrupt autograd-saved activations",
                step=step.out,
            ))
        argvals: List[AbstractMatrix] = []
        for ref, desc in zip(step.args, step.arg_descs):
            if ref in state:
                known = state[ref]
                declared = from_operand(desc, origin=step.out)
                if (
                    (known.attr, known.subattr) != (declared.attr, declared.subattr)
                    or tuple(known.shape) != tuple(declared.shape)
                    or known.nnz != declared.nnz
                ):
                    diags.append(Diagnostic(
                        "operand-mismatch",
                        f"{step.primitive} consumes {ref!r} as "
                        f"{declared.describe()} but its producer computes "
                        f"{known.describe()}",
                        step=step.out,
                    ))
                argvals.append(known)
            elif ref in producers:
                # produced, but not before this step: a dependency cycle
                diags.append(Diagnostic(
                    "undefined-ref",
                    f"{ref!r} is consumed before any producing step can "
                    f"run (dependency cycle)", step=step.out,
                ))
                argvals.append(from_operand(desc, origin=ref))
            else:
                if "(" in ref:
                    # leaves are plain names; a signature-shaped ref with
                    # no producing step is a dangling intermediate
                    diags.append(Diagnostic(
                        "undefined-ref",
                        f"no step produces intermediate {ref!r}",
                        step=step.out,
                    ))
                lifted = from_operand(desc, origin=ref)
                known_leaf = leaf_state.get(ref)
                if known_leaf is None:
                    leaf_state[ref] = lifted
                elif (
                    (known_leaf.attr, known_leaf.subattr)
                    != (lifted.attr, lifted.subattr)
                    or tuple(known_leaf.shape) != tuple(lifted.shape)
                    or known_leaf.nnz != lifted.nnz
                ):
                    diags.append(Diagnostic(
                        "leaf-desc-inconsistent",
                        f"leaf {ref!r} used both as {known_leaf.describe()} "
                        f"and as {lifted.describe()} (dropped transpose?)",
                        step=step.out,
                    ))
                argvals.append(leaf_state[ref])
        derived = _derive(step, argvals, diags)
        if derived is not None:
            _check_declared(step, derived, diags, verdict.obligations)
            state[step.out] = derived
        else:
            state[step.out] = from_operand(step.out_desc, origin=step.out)

    # output and reachability
    by_out = {s.out: s for s in steps}
    if candidate.output not in by_out:
        diags.append(Diagnostic(
            "missing-output",
            f"no step produces the candidate output {candidate.output!r}",
        ))
    else:
        reachable = set()
        stack = [candidate.output]
        while stack:
            ref = stack.pop()
            step = by_out.get(ref)
            if step is None or ref in reachable:
                continue
            reachable.add(ref)
            stack.extend(step.args)
        for step in ordered:
            if step.out not in reachable:
                diags.append(Diagnostic(
                    "dead-step",
                    f"step never contributes to the output", step=step.out,
                ))

    if verdict.ok:
        verdict.proved.append(
            f"dataflow: {len(ordered)} steps in SSA form, alias-free, "
            f"all reachable from the output"
        )
        verdict.proved.append(
            "shapes/attrs: every step's declared result matches the rule "
            "table under symbolic dims"
        )
        if not any(o.startswith(s.out) for s in ordered for o in verdict.obligations):
            verdict.proved.append("nnz bounds: all declared bounds derivable")
    return verdict


# ----------------------------------------------------------------------
# Workspace lifetime analysis
# ----------------------------------------------------------------------
def workspace_trace(plan, strategy: str = "blocked") -> List[Tuple[str, str, str]]:
    """The arena acquire/release protocol a plan's execution implies.

    Under a blocked strategy every aggregation step tiles through one
    arena buffer: acquire before the kernel loop, release on the normal
    edge (buffer returns to the arena for the next step) *and* on the
    exception edge (the guard's ``drop_buffers`` cleanup).  Events are
    ``(kind, buffer_key, step_out)`` with kind in ``acquire`` /
    ``release-normal`` / ``release-exception``.

    The sharded strategy has the analogous obligation one level up:
    every aggregation step acquires shared-memory segments (the dense
    operand and output buffers) that must return to the parent's buffer
    pool on the normal edge and be unlinked outright on the exception
    edge (a recycled buffer a dead worker might still write to would
    corrupt an unrelated call).
    """
    events: List[Tuple[str, str, str]] = []
    if strategy == "spmm_sharded":
        for step in plan.steps:
            if step.primitive not in WORKSPACE_PRIMITIVES:
                continue
            key = f"segments:{step.out}"
            events.append(("acquire", key, step.out))
            events.append(("release-normal", key, step.out))
            events.append(("release-exception", key, step.out))
        return events
    if strategy == "spmm_fused":
        # the compiled path runs each fusable segment's aggregation
        # through one pair of arena tiles (message + pre-scale gather);
        # non-segment aggregations fall back to the bare streaming kernel
        # with the same tile discipline, so the obligation is identical
        for step in plan.steps:
            if step.primitive not in WORKSPACE_PRIMITIVES:
                continue
            key = f"fused:{step.out}"
            events.append(("acquire", key, step.out))
            events.append(("release-normal", key, step.out))
            events.append(("release-exception", key, step.out))
        return events
    if strategy not in ("blocked", "blocked_parallel"):
        return events
    for step in plan.steps:
        if step.primitive not in WORKSPACE_PRIMITIVES:
            continue
        key = f"tile:{step.out}"
        events.append(("acquire", key, step.out))
        events.append(("release-normal", key, step.out))
        events.append(("release-exception", key, step.out))
    return events


def shard_coverage_diagnostics(bounds, num_rows: int) -> List[Diagnostic]:
    """Check that row-shard bounds disjointly cover ``[0, num_rows)``.

    The sharded strategy's correctness rests on workers writing disjoint
    row ranges that together cover the output: bounds must start at 0,
    end at ``num_rows``, and be non-decreasing (zero-row shards are
    legal).  The executor performs this exact check at dispatch; this
    pure function lets the linter (and tests) state it statically.
    """
    import numpy as np

    bounds = np.asarray(bounds)
    diags: List[Diagnostic] = []
    if bounds.ndim != 1 or bounds.shape[0] < 2:
        diags.append(Diagnostic(
            "shard-coverage",
            f"bounds must be a 1-D array of at least 2 entries, got "
            f"shape {bounds.shape}",
        ))
        return diags
    if int(bounds[0]) != 0:
        diags.append(Diagnostic(
            "shard-coverage",
            f"first bound is {int(bounds[0])}, leaving rows "
            f"[0, {int(bounds[0])}) unwritten",
        ))
    if int(bounds[-1]) != num_rows:
        diags.append(Diagnostic(
            "shard-coverage",
            f"last bound is {int(bounds[-1])}, expected {num_rows}",
        ))
    drops = np.flatnonzero(np.diff(bounds) < 0)
    if drops.size:
        at = int(drops[0])
        diags.append(Diagnostic(
            "shard-coverage",
            f"bounds decrease at shard {at} "
            f"({int(bounds[at])} -> {int(bounds[at + 1])}): shards would "
            f"overlap and double-write rows",
        ))
    return diags


def check_workspace_trace(
    events: Sequence[Tuple[str, str, str]]
) -> List[Diagnostic]:
    """Simulate the trace over both control-flow edges independently."""
    diags: List[Diagnostic] = []
    for edge in ("normal", "exception"):
        live: Dict[str, str] = {}
        for kind, key, out in events:
            if kind == "acquire":
                if key in live:
                    diags.append(Diagnostic(
                        "workspace-double-use",
                        f"buffer {key!r} acquired by {out!r} while still "
                        f"held by {live[key]!r}", step=out,
                    ))
                live[key] = out
            elif kind == f"release-{edge}":
                live.pop(key, None)
        for key, out in live.items():
            diags.append(Diagnostic(
                "workspace-leak",
                f"buffer {key!r} never released on the {edge} edge",
                step=out,
            ))
    return diags


# ----------------------------------------------------------------------
# Fusion legality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusionSegmentSpec:
    """One statically-legal fused chain: optional pre-scale
    ``row_broadcast`` folded into an aggregation's edge gather, plus an
    ordered tail of single-consumer epilogue steps (output row scaling
    and unary non-linearities) applied per row-span."""

    spmm: Step
    pre_scale: Optional[Step]
    epilogues: Tuple[Step, ...]

    @property
    def out(self) -> str:
        """The ref the fused callable produces (the chain tail's out)."""
        return self.epilogues[-1].out if self.epilogues else self.spmm.out

    @property
    def members(self) -> Tuple[Step, ...]:
        head = (self.pre_scale,) if self.pre_scale is not None else ()
        return head + (self.spmm,) + self.epilogues

    def describe(self) -> str:
        parts = [s.primitive + (f"[{s.meta}]" if s.meta else "")
                 for s in self.members]
        return " -> ".join(parts) + f" => {self.out}"


@dataclass
class FusionReport:
    """Which steps of a plan may run fused, and why the rest may not.

    ``segments`` are provably-legal fused chains; ``rejected`` records,
    per declined fusion opportunity, ``(step_out, reason)`` — the CI zoo
    sweep requires every promoted plan to either compile clean or carry
    a recorded fallback reason."""

    target: str
    segments: List[FusionSegmentSpec] = field(default_factory=list)
    rejected: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fused_outs(self) -> List[str]:
        return [seg.out for seg in self.segments]

    def describe(self) -> str:
        lines = [
            f"fusion {self.target}: {len(self.segments)} segment(s), "
            f"{len(self.rejected)} declined"
        ]
        lines += [f"  fuse: {seg.describe()}" for seg in self.segments]
        lines += [f"  skip: {out}: {why}" for out, why in self.rejected]
        return "\n".join(lines)


def fusion_legality(plan) -> FusionReport:
    """Statically determine which chains of ``plan`` may run fused.

    A chain anchors on an aggregation step (``spmm`` /
    ``spmm_unweighted``) in the iteration body and may absorb:

    - **pre-scale**: the producer of the dense operand, when it is an
      iteration ``row_broadcast`` whose output is consumed *only* by
      this aggregation (folding it into the edge gather is then
      observationally — and bitwise — equivalent);
    - **epilogues**: a forward walk from the aggregation output through
      single-consumer iteration steps that are either ``row_broadcast``
      over the chain value or fusable unary ``elementwise`` steps.

    Fused intermediates vanish (they are never materialised), so every
    absorbed step's output must be single-consumer, must not be the plan
    output, and must not be a setup result another execution could
    read from the cache.  The candidate-level verdict (SSA, alias-free,
    rule-table agreement) gates the whole report: a plan the abstract
    interpreter rejects never fuses at all.
    """
    report = FusionReport(target=plan.name)
    verdict = analyze_candidate(plan.candidate, name=plan.name)
    if not verdict.ok:
        report.rejected.append((
            plan.candidate.output,
            "candidate rejected by planlint: "
            + "; ".join(d.rule for d in verdict.errors),
        ))
        return report
    consumers: Dict[str, List[Step]] = {}
    for step in plan.steps:
        for arg in step.args:
            consumers.setdefault(arg, []).append(step)
    by_out = {s.out: s for s in plan.steps}
    iter_outs = {s.out for s in plan.iteration_steps}
    output = plan.candidate.output

    def single_consumer(ref: str) -> bool:
        return len(consumers.get(ref, [])) == 1 and ref != output

    claimed: set = set()
    for step in plan.iteration_steps:
        if step.primitive not in WORKSPACE_PRIMITIVES:
            continue
        # --- pre-scale: row_broadcast feeding the dense operand --------
        pre: Optional[Step] = None
        dense_ref = step.args[1]
        producer = by_out.get(dense_ref)
        if producer is not None and producer.primitive == "row_broadcast":
            if producer.out not in iter_outs:
                report.rejected.append((
                    producer.out,
                    "pre-scale row_broadcast is a cached setup result; "
                    "fusing it would recompute per iteration",
                ))
            elif not single_consumer(producer.out):
                report.rejected.append((
                    producer.out,
                    f"pre-scale row_broadcast output has "
                    f"{len(consumers.get(producer.out, []))} consumers "
                    f"(or is the plan output); must materialise",
                ))
            elif producer.out in claimed:
                report.rejected.append((
                    producer.out, "already absorbed by another segment",
                ))
            else:
                pre = producer
        # --- epilogues: forward single-consumer walk -------------------
        epilogues: List[Step] = []
        current = step.out
        while True:
            cons = consumers.get(current, [])
            if current == output or len(cons) != 1:
                break
            nxt = cons[0]
            if nxt.out not in iter_outs or nxt.out in claimed:
                break
            if nxt.primitive == "row_broadcast":
                if nxt.args[1] != current:
                    report.rejected.append((
                        nxt.out,
                        "row_broadcast consumes the chain value as its "
                        "diagonal operand; not a row-scale epilogue",
                    ))
                    break
            elif nxt.primitive == "elementwise":
                if len(nxt.args) != 1 or nxt.meta == "add":
                    report.rejected.append((
                        nxt.out,
                        "elementwise consumer is n-ary; fused epilogues "
                        "are unary only",
                    ))
                    break
                if nxt.meta not in FUSABLE_NONLINEAR_METAS:
                    report.rejected.append((
                        nxt.out,
                        f"nonlinearity {nxt.meta!r} has no fused epilogue",
                    ))
                    break
            else:
                # a gemm/spmm/... consumer ends the chain; not a decline
                break
            epilogues.append(nxt)
            current = nxt.out
        seg = FusionSegmentSpec(
            spmm=step, pre_scale=pre, epilogues=tuple(epilogues)
        )
        claimed.update(s.out for s in seg.members)
        report.segments.append(seg)
    return report


# ----------------------------------------------------------------------
# Plan-level entry points
# ----------------------------------------------------------------------
def analyze_plan(
    plan, env: Optional[ShapeEnv] = None, strategies: Sequence[str] = ("blocked",)
) -> PlanVerdict:
    """Full verdict for a lowered plan: candidate + lifetimes + env facts."""
    verdict = analyze_candidate(plan.candidate, name=plan.name)
    ws_diags: List[Diagnostic] = []
    for strategy in strategies:
        ws_diags.extend(check_workspace_trace(workspace_trace(plan, strategy)))
    verdict.diagnostics.extend(ws_diags)
    if not ws_diags:
        verdict.proved.append(
            "workspace: arena acquire/release balanced on normal and "
            "exception edges for " + "/".join(strategies)
        )
    if "spmm_sharded" in strategies and any(
        step.primitive in WORKSPACE_PRIMITIVES for step in plan.steps
    ):
        verdict.obligations.append(
            "shard-coverage: sharded aggregation row bounds disjointly "
            "cover the output (discharged at dispatch by kernels.sharded)"
        )
    if env is not None:
        verdict.env_key = analysis_env_key(env)
        try:
            estimate = float(plan.peak_memory_bytes(env))
        except (GraniiAnalysisError, KeyError, ValueError) as exc:
            verdict.obligations.append(
                f"peak-memory estimate unresolved under env: {exc}"
            )
        else:
            verdict.facts["peak_memory_bytes"] = estimate
            verdict.proved.append(
                f"peak-memory-estimate: {estimate / 2**20:.2f} MiB under "
                f"the selection env"
            )
    return verdict


def reject_illegal(
    candidates: Sequence[Candidate],
) -> Tuple[List[Candidate], List[Tuple[Candidate, PlanVerdict]]]:
    """Partition candidates into statically-legal and rejected.

    Used by ``repro.core.pruning.prune_candidates`` so illegal trees
    never reach cost modeling.
    """
    legal: List[Candidate] = []
    rejected: List[Tuple[Candidate, PlanVerdict]] = []
    for cand in candidates:
        verdict = analyze_candidate(cand)
        if verdict.ok:
            legal.append(cand)
        else:
            rejected.append((cand, verdict))
    return legal, rejected
