"""CLI: planlint over the model zoo, plus the mutation self-test.

::

    python -m repro.analysis                        # analyze zoo plans
    python -m repro.analysis --models gcn,gat
    python -m repro.analysis --self-test            # seeded mutations
    python -m repro.analysis --output ANALYSIS_REPORT.json

Exit status is non-zero if any promoted plan fails analysis or any
seeded mutation goes uncaught, which makes this directly usable as the
CI ``analysis`` job.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .planlint import analyze_plan

_EXTENSIONS = (
    ("gat", {"fusion": True}),
    ("sgc", {"spgemm": True, "hops": 2}),
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--models", default="", help="comma-separated model subset"
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the seeded-mutation self test instead of the zoo sweep",
    )
    parser.add_argument(
        "--no-extensions", action="store_true",
        help="skip the fusion/spgemm extension pools",
    )
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--output", default="", help="write report JSON here")
    args = parser.parse_args(argv)

    report: Dict[str, object] = {}
    failed = 0

    if args.self_test:
        from .mutate import run_self_test

        print("seeded-mutation self test:")
        records = run_self_test(verbose=True)
        missed = [r for r in records if not r["caught"]]
        failed = len(missed)
        report["self_test"] = records
        print(f"{len(records)} mutations, {len(missed)} missed")
    else:
        from ..core.codegen import compile_model
        from ..models import MODEL_NAMES

        models = [m for m in args.models.split(",") if m] or list(MODEL_NAMES)
        targets = [(name, {}) for name in models]
        if not args.no_extensions and not args.models:
            targets += list(_EXTENSIONS)
        plans = []
        for name, kwargs in targets:
            compiled = compile_model(name, **kwargs)
            suffix = "".join(f"+{k}" for k in kwargs if kwargs[k] is True)
            for planned in compiled.promoted:
                plans.append((f"{name}{suffix}", planned.plan))
        verdicts = []
        for label, plan in plans:
            verdict = analyze_plan(
                plan, strategies=("blocked", "blocked_parallel")
            )
            verdicts.append((label, verdict))
            if not verdict.ok:
                failed += 1
            if args.verbose or not verdict.ok:
                print(verdict.describe())
        total_proved = sum(len(v.proved) for _, v in verdicts)
        total_obl = sum(len(v.obligations) for _, v in verdicts)
        print(
            f"{len(verdicts)} promoted plans analyzed: "
            f"{len(verdicts) - failed} ok, {failed} rejected "
            f"({total_proved} facts proved, {total_obl} obligations)"
        )
        report["plans"] = [
            dict(model=label, **verdict.to_dict()) for label, verdict in verdicts
        ]

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
