"""Abstract domains for plan verification.

Three small lattices cover what the analyzer needs to prove:

1. **Sparsity structure** — the chain ``diagonal ⊑ triangular ⊑
   symmetric ⊑ general`` (plus ``dense`` as an incomparable top-of-use
   element): every matrix the rule table produces is soundly described
   by the *least* element it is known to satisfy, and joins move up the
   chain.  ``diag · diag`` stays diagonal; anything multiplied into a
   general sparse pattern is at best general.
2. **Symbolic nnz bounds** — the upper-bound algebra the rule table
   emits: ``N`` (a diagonal), ``E`` (the input pattern), ``E@k``
   (k-deep SpGEMM fill), ``E+N`` (pattern ∪ diagonal).  The partial
   order compares (depth, +N) component-wise; bounds with different
   base symbols are incomparable.
3. **Symbolic dims** — strings vs ints with
   :func:`repro.core.ir.dims_compatible` semantics.

:class:`AbstractMatrix` bundles one operand's abstract value; it is the
state the interpreter in :mod:`repro.analysis.planlint` propagates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.ir import Dim, dims_compatible

__all__ = [
    "STRUCTURES",
    "AbstractMatrix",
    "structure_of",
    "join_structure",
    "structure_leq",
    "nnz_rank",
    "nnz_leq",
    "compose_product_nnz",
    "plus_diag_nnz",
]

# The sparsity chain, bottom to top.  "dense" sits outside the chain:
# dense values carry no pattern, so structural reasoning does not apply.
STRUCTURES = ("diagonal", "triangular", "symmetric", "general")
_STRUCTURE_RANK = {name: i for i, name in enumerate(STRUCTURES)}


def structure_of(attr: str, subattr: str) -> Optional[str]:
    """Least structure element soundly describing a Table I attribute.

    Adjacency patterns (weighted/unweighted) are undirected in the
    paper's workloads but nothing downstream *relies* on symmetry, so
    they are conservatively ``general``; only ``diagonal`` carries a
    stronger invariant the rules exploit.  Dense operands return None.
    """
    if attr != "sparse":
        return None
    return "diagonal" if subattr == "diagonal" else "general"


def structure_leq(a: str, b: str) -> bool:
    """``a ⊑ b`` on the diagonal/triangular/symmetric/general chain."""
    return _STRUCTURE_RANK[a] <= _STRUCTURE_RANK[b]


def join_structure(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Least upper bound; None (dense) joins to None."""
    if a is None or b is None:
        return None
    return STRUCTURES[max(_STRUCTURE_RANK[a], _STRUCTURE_RANK[b])]


# ----------------------------------------------------------------------
# nnz upper bounds
# ----------------------------------------------------------------------
def nnz_rank(sym: Optional[Dim]) -> Optional[Tuple[str, int, int]]:
    """Decompose an nnz bound into ``(base, E-depth, +N flag)``.

    Recognised forms: integers (exact counts), ``"N"``-style pure
    symbols (depth 0), ``"E"`` (depth 1), ``"E@k"`` (depth k) and
    ``"<sym>+N"``.  Returns None for forms the algebra cannot rank
    (those compare as incomparable).
    """
    if sym is None:
        return None
    if isinstance(sym, int):
        return ("#", sym, 0)
    plus_n = 0
    text = sym
    if text.endswith("+N"):
        plus_n = 1
        text = text[: -len("+N")]
    if text == "E":
        return ("E", 1, plus_n)
    if text.startswith("E@"):
        try:
            return ("E", int(text.split("@", 1)[1]), plus_n)
        except ValueError:
            return None
    if text and "@" not in text and "+" not in text:
        # a pure symbol such as "N": its own base at depth 0
        return (text, 0, plus_n)
    return None


def nnz_leq(a: Optional[Dim], b: Optional[Dim]) -> Optional[bool]:
    """Whether bound ``a ⊑ b``; None when the bounds are incomparable.

    Within one base symbol the order is component-wise on
    (depth, +N) — ``E ⊑ E@2`` (more fill allowed), ``E ⊑ E+N``.
    Across bases (``N`` vs ``E``) nothing is known: a graph may have
    fewer edges than nodes.
    """
    if a == b:
        return True
    ra, rb = nnz_rank(a), nnz_rank(b)
    if ra is None or rb is None or ra[0] != rb[0]:
        return None
    return ra[1] <= rb[1] and ra[2] <= rb[2]


def compose_product_nnz(a: Optional[Dim], b: Optional[Dim]) -> Optional[Dim]:
    """nnz bound of a sparse·sparse product: E-depths add.

    Mirrors the rule table's ``_product_nnz_symbol``; returns None when
    either operand is outside the E-algebra (the caller then reports the
    bound as unverifiable rather than wrong).
    """
    ra, rb = nnz_rank(a), nnz_rank(b)
    if ra is None or rb is None or ra[0] != "E" or rb[0] != "E":
        return None
    if ra[2] or rb[2]:
        return None
    return f"E@{ra[1] + rb[1]}"


def plus_diag_nnz(sp_nnz: Optional[Dim], diag_dim: Dim) -> Optional[Dim]:
    """nnz bound of pattern ∪ diagonal (``spadd_diag``)."""
    if sp_nnz is None:
        return None
    return f"{sp_nnz}+{diag_dim}"


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AbstractMatrix:
    """The interpreter's knowledge about one operand.

    ``structure`` is an element of :data:`STRUCTURES` for sparse values
    and None for dense ones; ``nnz`` is a symbolic upper bound on stored
    entries.  ``origin`` records the producing step signature (or the
    leaf name) for diagnostics.
    """

    ref: str
    attr: str  # 'dense' | 'sparse'
    subattr: str
    shape: Tuple[Dim, Dim]
    nnz: Optional[Dim] = None
    structure: Optional[str] = None
    dtype: str = "float64"
    origin: str = ""

    @property
    def is_diagonal(self) -> bool:
        return self.subattr == "diagonal"

    @property
    def is_sparse_matrix(self) -> bool:
        return self.attr == "sparse" and not self.is_diagonal

    @property
    def is_dense(self) -> bool:
        return self.attr == "dense"

    def describe(self) -> str:
        nnz = f" nnz≤{self.nnz}" if self.nnz is not None else ""
        return (
            f"{self.ref}: {self.attr}.{self.subattr} "
            f"{self.shape[0]}×{self.shape[1]}{nnz}"
        )

    def compatible_shape(self, other: Tuple[Dim, Dim]) -> bool:
        return dims_compatible(self.shape[0], other[0]) and dims_compatible(
            self.shape[1], other[1]
        )


def from_operand(operand, origin: str = "") -> AbstractMatrix:
    """Lift a rule-table :class:`~repro.core.rules.Operand` description."""
    return AbstractMatrix(
        ref=operand.ref,
        attr=operand.attr,
        subattr=operand.subattr,
        shape=tuple(operand.shape),
        nnz=operand.nnz,
        structure=structure_of(operand.attr, operand.subattr),
        origin=origin or operand.ref,
    )
