"""CLI for the concurrency linter.

::

    python -m repro.analysis.conclint src/repro [--json REPORT.json]
    python -m repro.analysis.conclint --self-test [--verbose]

Exit status 0 when there are no unwaived findings (or every seeded
mutation is caught in ``--self-test`` mode), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import analyze_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.conclint",
        description="Interprocedural concurrency linter for the repro tree",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze")
    parser.add_argument("--json", default="", help="write the report here")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded concurrency-mutation self test")
    parser.add_argument("--verbose", action="store_true",
                        help="print the lock-order graph and waivers")
    args = parser.parse_args(argv)

    if args.self_test:
        from .mutate import run_self_test

        return 0 if run_self_test(verbose=args.verbose) else 1

    report = analyze_paths(args.paths or ["src/repro"])
    for f in report.active:
        print(f.describe())
    counts = report.waiver_counts()
    waived_text = ", ".join(
        f"{rule}={n}" for rule, n in sorted(counts.items())
    ) or "none"
    print(
        f"conclint: {len(report.active)} finding(s), "
        f"{len(report.waived)} waived ({waived_text})"
    )
    if args.verbose and report.graph is not None:
        for src, dst in sorted(report.graph.edges):
            site = report.graph.edge_sites[(src, dst)]
            print(f"  lock-order edge {src} -> {dst}  [{site[0]}:{site[1]}]")
        for f in report.waived:
            print(f"  waived: {f.describe()}  // {f.justification}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return 1 if report.active else 0


if __name__ == "__main__":
    sys.exit(main())
