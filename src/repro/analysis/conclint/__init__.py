"""``repro.analysis.conclint`` — interprocedural concurrency linter.

Three passes over the repo's own source (see the sibling modules):

- :mod:`.locks` — whole-program lock-acquisition-order graph; cycles,
  self-deadlocks, locks held across blocking calls, bare ``acquire()``
  without a ``finally`` release.
- :mod:`.lifetime` — shared-memory segments / pooled buffers /
  executors provably released on all paths including exception edges.
- :mod:`.disjoint` — symbolic interval proof that ``out[r0:r1]`` shard
  writes are non-overlapping for ``plan_row_shards`` bounds.

Waivers use the repo-wide pragma dialect — ``# lint: allow(<rule>)`` on
the offending line or the line above — but conclint additionally
requires trailing justification text after the closing paren
(``# lint: allow(lock-held-across-blocking-call) pool serialization is
the design``); a bare concurrency waiver is itself a finding
(``unjustified-waiver``).  Waivers are counted, never silent.

The static lock-order graph is also the reference the dynamic
sanitizer (:mod:`repro.faults.racestress`) checks observed lock
acquisitions against: every edge seen at runtime must already exist
statically.

CLI::

    python -m repro.analysis.conclint src/repro [--json REPORT.json]
    python -m repro.analysis.conclint --self-test
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .disjoint import analyze_disjoint
from .lifetime import analyze_lifetime
from .locks import LockGraph, analyze_locks
from .model import CONCLINT_RULES, Finding, Program, canonical_rel

__all__ = [
    "CONCLINT_RULES",
    "ConclintReport",
    "Finding",
    "LockGraph",
    "Program",
    "analyze_paths",
    "analyze_sources",
    "canonical_rel",
    "collect_sources",
    "static_lock_graph",
]


@dataclass
class ConclintReport:
    """Every finding (waived and active) plus the lock-order graph."""

    findings: List[Finding] = field(default_factory=list)
    graph: Optional[LockGraph] = None

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    def waiver_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.waived:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        graph = self.graph
        return {
            "active": [f.describe() for f in self.active],
            "waived": [f.describe() for f in self.waived],
            "waiver_counts": self.waiver_counts(),
            "totals": {
                "active": len(self.active),
                "waived": len(self.waived),
            },
            "lock_order_edges": sorted(
                [src, dst] for src, dst in (graph.edges if graph else ())
            ),
            "locks": {
                info.lock_id: {
                    "kind": info.kind,
                    "sites": [f"{p}:{l}" for p, l in info.sites],
                }
                for info in (graph.locks.values() if graph else ())
            },
        }


def _apply_waivers(prog: Program, findings: List[Finding]) -> List[Finding]:
    """Waive findings via pragmas; flag concurrency waivers that carry
    no justification text, and count every waiver."""
    out: List[Finding] = []
    used: set = set()
    for f in findings:
        table = prog.waivers.get(f.path, {})
        waived = False
        for line in (f.line, f.line - 1):
            entry = table.get(line)
            if entry and f.rule in entry[0]:
                out.append(Finding(
                    f.rule, f.path, f.line, f.message,
                    waived=True, justification=entry[1],
                ))
                used.add((f.path, line))
                waived = True
                break
        if not waived:
            out.append(f)
    # justification discipline: every conclint-rule waiver pragma must
    # say *why* in-line, whether or not it matched a finding
    for path, table in sorted(prog.waivers.items()):
        for line, (rules, justification) in sorted(table.items()):
            conc = sorted(set(rules) & set(CONCLINT_RULES))
            if conc and not justification:
                out.append(Finding(
                    "unjustified-waiver", path, line,
                    f"waiver for {', '.join(conc)} has no in-line "
                    f"justification — say why after the closing paren",
                ))
    return sorted(out, key=lambda f: (f.path, f.line, f.rule))


def analyze_sources(sources: Dict[str, str]) -> ConclintReport:
    """Run all three passes over ``{path: source}``."""
    prog = Program(sources)
    findings: List[Finding] = list(prog.parse_errors)
    lock_findings, graph = analyze_locks(prog)
    findings.extend(lock_findings)
    findings.extend(analyze_lifetime(prog))
    findings.extend(analyze_disjoint(prog))
    return ConclintReport(
        findings=_apply_waivers(prog, findings), graph=graph
    )


def collect_sources(paths: Sequence[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for path in paths:
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as fh:
                sources[path] = fh.read()
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if name.endswith(".py"):
                    full = os.path.join(root, name)
                    with open(full, "r", encoding="utf-8") as fh:
                        sources[full] = fh.read()
    return sources


def analyze_paths(paths: Sequence[str]) -> ConclintReport:
    return analyze_sources(collect_sources(paths))


def static_lock_graph(paths: Optional[Sequence[str]] = None) -> LockGraph:
    """The statically-derived lock-order graph for the given tree
    (default: the installed ``repro`` package itself) — the reference
    :mod:`repro.faults.racestress` validates observed edges against."""
    if paths is None:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    report = analyze_paths(paths)
    return report.graph
