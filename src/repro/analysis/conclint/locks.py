"""Lock-discipline pass: acquisition-order graph, cycles, blocking.

Builds the whole-program lock-acquisition-order graph by interpreting
every ``with <lock>:`` region interprocedurally: a region of lock ``L``
contributes an edge ``L -> M`` for every lock ``M`` acquired inside it,
either by direct nesting or through any function the region may call
(``may_acquire`` fixpoint over the resolved call graph).

Findings:

- ``lock-order-cycle`` — a cycle in the order graph (two call paths
  that acquire the same locks in opposite orders can deadlock).
- ``lock-self-deadlock`` — a non-reentrant ``Lock`` region that can
  re-acquire its own lock (``threading.Lock`` is not recursive).
- ``lock-held-across-blocking-call`` — a region whose body can reach a
  blocking primitive (``queue.get``, ``Event.wait``, ``Future.result``,
  ``time.sleep``, process/executor joins) while the lock is held; one
  finding per region, reported at the ``with`` line, naming every
  blocking site so a single waiver covers the designed cases.
- ``lock-acquire-no-release`` — a bare ``.acquire()`` on a known lock
  whose ``.release()`` is not inside a ``finally`` block (an exception
  between them leaks the lock forever; use ``with``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .model import Finding, FunctionInfo, LockInfo, Program, receiver_text

__all__ = ["LockGraph", "analyze_locks", "build_lock_graph"]

_PROC_HINTS = ("proc", "process", "thread", "worker")


@dataclass
class LockGraph:
    """The acquisition-order graph plus per-edge witness sites."""

    locks: Dict[str, LockInfo]
    edges: Set[Tuple[str, str]] = field(default_factory=set)
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = field(
        default_factory=dict
    )

    def add_edge(self, src: str, dst: str, site: Tuple[str, int]) -> None:
        if (src, dst) not in self.edges:
            self.edges.add((src, dst))
            self.edge_sites[(src, dst)] = site

    def site_index(self) -> Dict[Tuple[str, int], str]:
        """(construction relpath, lineno) -> lock id, for the dynamic
        sanitizer's lock-identity mapping."""
        out: Dict[Tuple[str, int], str] = {}
        for info in self.locks.values():
            for site in info.sites:
                out[site] = info.lock_id
        return out


def blocking_reason(call: ast.Call) -> Optional[str]:
    """Name the blocking primitive a call is, or None.

    Receiver-name heuristics keep ``dict.get`` / ``str.join`` out: the
    repo's own naming (``*queue*``, ``event``, ``proc``/``worker``,
    ``*pool*``) is part of the checked discipline.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    recv = receiver_text(func.value).lower()
    attr = func.attr
    if attr == "sleep" and (recv == "time" or recv.endswith(".time")):
        return "time.sleep"
    if attr == "get" and "queue" in recv:
        return f"{recv}.get"
    if attr == "wait" and ("event" in recv or "cond" in recv or "fut" in recv):
        return f"{recv}.wait"
    if attr == "result":
        if "fut" in recv:
            return f"{recv}.result"
        inner = func.value
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "submit"
        ):
            return "submit(...).result"
    if attr == "join":
        if isinstance(func.value, ast.Constant):
            return None  # str.join
        if any(h in recv for h in _PROC_HINTS):
            return f"{recv}.join"
    if attr == "join_thread":
        return f"{recv}.join_thread"
    if attr == "shutdown" and ("pool" in recv or "executor" in recv):
        return f"{recv}.shutdown"
    return None


def _with_lock(item: ast.withitem, fi: FunctionInfo, prog: Program):
    if item.optional_vars is not None:
        return None
    return prog.resolve_lock(item.context_expr, fi)


@dataclass
class _Summary:
    acquires: Set[str] = field(default_factory=set)
    blocks: List[Tuple[str, int]] = field(default_factory=list)  # (what, line)
    calls: List[Tuple[ast.Call, int]] = field(default_factory=list)


def _summarize(fi: FunctionInfo, prog: Program) -> _Summary:
    """Direct (non-transitive) lock/blocking/call facts of one function,
    excluding nested function bodies (they have their own summaries and
    only contribute when actually called)."""
    s = _Summary()
    own = fi.node

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and child is not own:
                continue
            if isinstance(child, ast.With):
                for item in child.items:
                    info = _with_lock(item, fi, prog)
                    if info is not None:
                        s.acquires.add(info.lock_id)
            if isinstance(child, ast.Call):
                reason = blocking_reason(child)
                if reason is not None:
                    s.blocks.append((reason, child.lineno))
                if isinstance(child.func, ast.Attribute) and child.func.attr in (
                    "acquire",
                ):
                    info = prog.resolve_lock(child.func.value, fi)
                    if info is not None:
                        s.acquires.add(info.lock_id)
                s.calls.append((child, child.lineno))
            walk(child)

    walk(own)
    return s


def _fixpoint(prog: Program):
    """Transitive ``may_acquire`` / ``may_block`` per function."""
    summaries = {fi.qualname: _summarize(fi, prog) for fi in prog.functions}
    resolved: Dict[str, List[Tuple[str, int]]] = {}
    for fi in prog.functions:
        outs: List[Tuple[str, int]] = []
        for call, line in summaries[fi.qualname].calls:
            for callee in prog.resolve_call(call, fi):
                outs.append((callee.qualname, line))
        resolved[fi.qualname] = outs
    may_acquire = {q: set(s.acquires) for q, s in summaries.items()}
    may_block = {q: bool(s.blocks) for q, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for q, outs in resolved.items():
            for callee, _line in outs:
                if not may_acquire[q] >= may_acquire[callee]:
                    may_acquire[q] |= may_acquire[callee]
                    changed = True
                if may_block[callee] and not may_block[q]:
                    may_block[q] = True
                    changed = True
    return summaries, may_acquire, may_block


def _scc_cycles(edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Strongly-connected components with more than one node."""
    adj: Dict[str, List[str]] = {}
    nodes: Set[str] = set()
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        nodes.update((a, b))
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strong(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on.add(v)
        for w in adj.get(v, ()):
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on.discard(w)
                comp.append(w)
                if w == v:
                    break
            if len(comp) > 1:
                out.append(sorted(comp))

    for v in sorted(nodes):
        if v not in index:
            strong(v)
    return out


def analyze_locks(prog: Program) -> Tuple[List[Finding], LockGraph]:
    findings: List[Finding] = []
    graph = LockGraph(locks=dict(prog.locks))
    summaries, may_acquire, may_block = _fixpoint(prog)

    for fi in prog.functions:
        _scan_regions(
            fi, prog, summaries, may_acquire, may_block, graph, findings
        )
        _check_bare_acquire(fi, prog, findings)

    for cycle in _scc_cycles(graph.edges):
        pairs = [
            (a, b) for (a, b) in graph.edges if a in cycle and b in cycle
        ]
        site = graph.edge_sites[min(pairs)]
        findings.append(
            Finding(
                "lock-order-cycle", site[0], site[1],
                f"lock-order cycle among {{{', '.join(cycle)}}}: two "
                f"threads taking these locks in opposite orders can "
                f"deadlock; pick one rank order (see DESIGN.md)",
            )
        )
    return findings, graph


def _scan_regions(fi, prog, summaries, may_acquire, may_block, graph, findings):
    """Walk one function; every `with <lock>:` starts a region."""

    def _walk_no_defs(root: ast.AST):
        """Yield descendants without entering nested function bodies —
        a closure defined under a lock does not run under it."""
        for child in ast.iter_child_nodes(root):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield child
            yield from _walk_no_defs(child)

    def region(body: List[ast.stmt], held: List[LockInfo], blocked_out) -> None:
        for stmt in body:
            for node in [stmt, *_walk_no_defs(stmt)]:
                if isinstance(node, ast.With):
                    for item in node.items:
                        info = _with_lock(item, fi, prog)
                        if info is None:
                            continue
                        for h in held:
                            graph.add_edge(
                                h.lock_id, info.lock_id, (fi.path, node.lineno)
                            )
                            if (
                                h.lock_id == info.lock_id
                                and h.kind == "lock"
                            ):
                                findings.append(Finding(
                                    "lock-self-deadlock", fi.path, node.lineno,
                                    f"non-reentrant lock {h.lock_id} "
                                    f"re-acquired while already held in "
                                    f"{fi.qualname}",
                                ))
                if isinstance(node, ast.Call) and held:
                    reason = blocking_reason(node)
                    if reason is not None:
                        blocked_out.append((reason, node.lineno))
                    for callee in prog.resolve_call(node, fi):
                        q = callee.qualname
                        for lock_id in may_acquire[q]:
                            for h in held:
                                graph.add_edge(
                                    h.lock_id, lock_id, (fi.path, node.lineno)
                                )
                                if h.lock_id == lock_id and h.kind == "lock":
                                    findings.append(Finding(
                                        "lock-self-deadlock", fi.path,
                                        node.lineno,
                                        f"non-reentrant lock {h.lock_id} "
                                        f"re-acquired via call to "
                                        f"{callee.name}() in {fi.qualname}",
                                    ))
                        if may_block[q]:
                            blocked_out.append(
                                (f"{callee.name}()", node.lineno)
                            )

    # top-level With statements open regions; nested ones are caught by
    # the ast.walk above (with the outer lock held)
    def drive(body: List[ast.stmt], held: List[LockInfo]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                infos = [
                    i for i in (
                        _with_lock(item, fi, prog) for item in stmt.items
                    ) if i is not None
                ]
                if infos:
                    blocked: List[Tuple[str, int]] = []
                    region(stmt.body, held + infos, blocked)
                    if blocked:
                        seen, names = set(), []
                        for what, line in blocked:
                            if what not in seen:
                                seen.add(what)
                                names.append(f"{what} (line {line})")
                        findings.append(Finding(
                            "lock-held-across-blocking-call",
                            fi.path, stmt.lineno,
                            f"{' + '.join(i.lock_id for i in infos)} held "
                            f"across blocking call(s) in {fi.qualname}: "
                            f"{'; '.join(names[:6])}",
                        ))
                drive(stmt.body, held + infos)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            drive(_stmt_bodies(stmt), held)

    drive(fi.node.body, [])


def _stmt_bodies(node: ast.AST) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    for attr in ("body", "orelse", "finalbody"):
        val = getattr(node, attr, None)
        if isinstance(val, list):
            out.extend(s for s in val if isinstance(s, ast.stmt))
    if isinstance(node, ast.Try):
        for h in node.handlers:
            out.extend(h.body)
    return out


def _check_bare_acquire(fi: FunctionInfo, prog: Program, findings) -> None:
    acquires: List[Tuple[LockInfo, int]] = []
    releases_in_finally: Set[str] = set()
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                    ):
                        info = prog.resolve_lock(sub.func.value, fi)
                        if info is not None:
                            releases_in_finally.add(info.lock_id)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            info = prog.resolve_lock(node.func.value, fi)
            if info is not None:
                acquires.append((info, node.lineno))
    for info, line in acquires:
        if info.lock_id not in releases_in_finally:
            findings.append(Finding(
                "lock-acquire-no-release", fi.path, line,
                f"{info.lock_id}.acquire() in {fi.qualname} without a "
                f"release() in a finally block — an exception in between "
                f"leaks the lock; use `with`",
            ))


def build_lock_graph(prog: Program) -> LockGraph:
    """The order graph alone (the dynamic sanitizer's static side)."""
    _, graph = analyze_locks(prog)
    return graph
