"""Disjoint-write pass: symbolic interval proof for shard writes.

Upgrades the file-local ``shared-write-in-parallel`` heuristic into a
whole-program proof: the *producer* loop in ``gspmm_sharded`` derives
``r0, r1 = int(bounds[i]), int(bounds[i + 1])`` from
``plan_row_shards`` (whose result is monotone non-decreasing by
construction) and ships them at fixed positions of a task tuple; the
*consumer* (``_run_shard``, running in a worker process) unpacks the
tuple and writes ``out[r0:r1]``.  The pass pairs producer and consumer
by tuple arity, carries each endpoint symbolically as
``bounds[i + c] + d``, and proves writes for different ``i`` disjoint
iff the lower endpoint is ``bounds[i] + d_lo`` with ``d_lo >= 0``, the
upper is ``bounds[i + 1] + d_hi`` with ``d_hi <= 0`` (given monotone
bounds, ``[b_i, b_{i+1})`` intervals never overlap).

Any slice-store through unpacked bounds that cannot be proved — an
unrecognized bounds source, a widened slice, or an offset lower
bound — is a ``shard-write-overlap`` finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .model import Finding, FunctionInfo, Program

__all__ = ["analyze_disjoint"]

# Calls whose result is a provably monotone non-decreasing bounds array.
_MONOTONE_PRODUCERS = {"plan_row_shards"}


@dataclass(frozen=True)
class _Sym:
    """``bounds[loop_var + index_offset] + value_offset``."""

    index_offset: int
    value_offset: int


@dataclass
class _Producer:
    fi: FunctionInfo
    monotone: bool
    line: int
    tuple_arity: int
    # tuple position -> symbol for every shipped bound value
    positions: Dict[int, _Sym]


def _const_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    return None


def _strip_int(node: ast.AST) -> ast.AST:
    """``int(x)`` is value-transparent for interval reasoning."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "int"
        and len(node.args) == 1
    ):
        node = node.args[0]
    return node


def _parse_bound_expr(
    node: ast.AST, bounds_name: str, loop_var: str
) -> Optional[_Sym]:
    """Parse ``int(bounds[i + c]) + d`` (any nesting order) to a _Sym."""
    node = _strip_int(node)
    value_offset = 0
    while isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        rhs = _const_int(node.right)
        if rhs is None:
            return None
        value_offset += rhs if isinstance(node.op, ast.Add) else -rhs
        node = _strip_int(node.left)
    if not (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == bounds_name
    ):
        return None
    idx = node.slice
    if isinstance(idx, ast.Name) and idx.id == loop_var:
        return _Sym(0, value_offset)
    if (
        isinstance(idx, ast.BinOp)
        and isinstance(idx.op, (ast.Add, ast.Sub))
        and isinstance(idx.left, ast.Name)
        and idx.left.id == loop_var
    ):
        c = _const_int(idx.right)
        if c is None:
            return None
        return _Sym(c if isinstance(idx.op, ast.Add) else -c, value_offset)
    return None


def _find_producers(prog: Program) -> List[_Producer]:
    out: List[_Producer] = []
    for fi in prog.functions:
        bounds_vars: Dict[str, bool] = {}  # name -> provably monotone
        for node in ast.walk(fi.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                func = node.value.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name is not None and (
                    "shard" in name or "bound" in name or name in
                    _MONOTONE_PRODUCERS or "cumsum" in name
                ):
                    bounds_vars[node.targets[0].id] = (
                        name in _MONOTONE_PRODUCERS
                    )
        if not bounds_vars:
            continue
        for loop in ast.walk(fi.node):
            if not (
                isinstance(loop, ast.For)
                and isinstance(loop.target, ast.Name)
            ):
                continue
            loop_var = loop.target.id
            for bname, monotone in bounds_vars.items():
                # symbols bound inside the loop: r0 -> bounds[i]+d ...
                symbols: Dict[str, _Sym] = {}
                for st in ast.walk(loop):
                    if not isinstance(st, ast.Assign) or len(st.targets) != 1:
                        continue
                    tgt, val = st.targets[0], st.value
                    pairs: List[Tuple[ast.AST, ast.AST]] = []
                    if isinstance(tgt, ast.Tuple) and isinstance(
                        val, ast.Tuple
                    ) and len(tgt.elts) == len(val.elts):
                        pairs = list(zip(tgt.elts, val.elts))
                    else:
                        pairs = [(tgt, val)]
                    for t, v in pairs:
                        if isinstance(t, ast.Name):
                            sym = _parse_bound_expr(v, bname, loop_var)
                            if sym is not None:
                                symbols[t.id] = sym
                for call in ast.walk(loop):
                    if not (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("submit", "put")
                    ):
                        continue
                    for arg in call.args:
                        if not isinstance(arg, ast.Tuple):
                            continue
                        positions = {}
                        for pos, elt in enumerate(arg.elts):
                            sym = None
                            if isinstance(elt, ast.Name):
                                sym = symbols.get(elt.id)
                            if sym is None:
                                sym = _parse_bound_expr(elt, bname, loop_var)
                            if sym is not None:
                                positions[pos] = sym
                        if positions:
                            out.append(_Producer(
                                fi=fi, monotone=monotone, line=call.lineno,
                                tuple_arity=len(arg.elts),
                                positions=positions,
                            ))
    return out


def _consumer_findings(
    fi: FunctionInfo, producers: List[_Producer]
) -> List[Finding]:
    """Check every slice-store through tuple-unpacked bound names."""
    params = {a.arg for a in fi.node.args.args}
    findings: List[Finding] = []
    for node in ast.walk(fi.node):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Name)
            and node.value.id in params
        ):
            continue
        names = node.targets[0].elts
        arity = len(names)
        matched = [p for p in producers if p.tuple_arity == arity]
        if not matched:
            continue
        # name -> tuple position, for every plainly-named slot
        slot: Dict[str, int] = {
            elt.id: pos
            for pos, elt in enumerate(names)
            if isinstance(elt, ast.Name)
        }
        for st in ast.walk(fi.node):
            if not (
                isinstance(st, ast.Assign)
                and len(st.targets) == 1
                and isinstance(st.targets[0], ast.Subscript)
            ):
                continue
            sub = st.targets[0]
            if not isinstance(sub.slice, ast.Slice):
                continue
            lo, hi = sub.slice.lower, sub.slice.upper
            lo_pos = _slot_of(lo, slot)
            hi_pos = _slot_of(hi, slot)
            if lo_pos is None and hi_pos is None:
                continue  # slice not built from the task's bound fields
            for prod in matched:
                findings.extend(_prove(fi, prod, st, lo, hi, slot))
    return findings


def _slot_of(node: Optional[ast.AST], slot: Dict[str, int]) -> Optional[int]:
    if node is None:
        return None
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name) and leaf.id in slot:
            return slot[leaf.id]
    return None


def _endpoint_sym(
    node: Optional[ast.AST], slot: Dict[str, int], prod: _Producer
) -> Optional[_Sym]:
    """Symbol of a consumer-side slice endpoint: an unpacked name plus
    an optional constant offset (``r1 + 1``)."""
    if node is None:
        return None
    node = _strip_int(node)
    offset = 0
    while isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        c = _const_int(node.right)
        if c is None:
            return None
        offset += c if isinstance(node.op, ast.Add) else -c
        node = _strip_int(node.left)
    if isinstance(node, ast.Name) and node.id in slot:
        base = prod.positions.get(slot[node.id])
        if base is None:
            return None
        return _Sym(base.index_offset, base.value_offset + offset)
    return None


def _prove(fi, prod, st, lo, hi, slot) -> List[Finding]:
    target = st.targets[0].value
    tname = target.id if isinstance(target, ast.Name) else "<expr>"
    where = (
        f"write {tname}[...] in {fi.qualname} (bounds shipped from "
        f"{prod.fi.qualname}:{prod.line})"
    )
    if not prod.monotone:
        return [Finding(
            "shard-write-overlap", fi.path, st.lineno,
            f"{where}: the shard bounds source is not a recognized "
            f"monotone producer ({'/'.join(sorted(_MONOTONE_PRODUCERS))}), "
            f"so shard intervals cannot be proved disjoint",
        )]
    lo_sym = _endpoint_sym(lo, slot, prod)
    hi_sym = _endpoint_sym(hi, slot, prod)
    if lo_sym is None or hi_sym is None:
        return [Finding(
            "shard-write-overlap", fi.path, st.lineno,
            f"{where}: slice endpoints are not both derived from the "
            f"task's shipped bounds — not provably disjoint",
        )]
    ok = (
        hi_sym.index_offset == lo_sym.index_offset + 1
        and lo_sym.value_offset >= 0
        and hi_sym.value_offset <= 0
    )
    if ok:
        return []
    return [Finding(
        "shard-write-overlap", fi.path, st.lineno,
        f"{where}: writes [bounds[i+{lo_sym.index_offset}]"
        f"{lo_sym.value_offset:+d}, bounds[i+{hi_sym.index_offset}]"
        f"{hi_sym.value_offset:+d}) can overlap the neighbouring shard "
        f"for monotone bounds",
    )]


def analyze_disjoint(prog: Program) -> List[Finding]:
    producers = _find_producers(prog)
    findings: List[Finding] = []
    for fi in prog.functions:
        findings.extend(_consumer_findings(fi, producers))
    return findings
