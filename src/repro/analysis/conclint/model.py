"""Shared whole-program model for the concurrency linter.

Parses every source file once and exposes the three indexes the passes
share: the **lock table** (every ``threading.Lock``/``RLock``
construction site, merged into one identity per ``module.Class.attr``),
the **function index** (module functions, methods, and nested closures
by qualified name), and a conservative **call resolver** (resolve-to-all
by name with positional-arity filtering, so ``pool.submit(i, task)``
reaches ``_WorkerPool.submit`` but not ``GraniiService.submit``).

The model is deliberately an over-approximation: the passes built on it
(:mod:`.locks`, :mod:`.lifetime`, :mod:`.disjoint`) only ever *miss*
behavior when a call is dynamically dispatched through a value the
resolver cannot see (callbacks passed as data are not traversed — a
callable scheduled onto another thread does not run under the caller's
locks, which is exactly the semantics we want for ``.submit``).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "CONCLINT_RULES",
    "Finding",
    "FunctionInfo",
    "LockInfo",
    "Program",
    "canonical_rel",
]

CONCLINT_RULES = (
    "lock-order-cycle",
    "lock-held-across-blocking-call",
    "lock-acquire-no-release",
    "lock-self-deadlock",
    "resource-leak",
    "shard-write-overlap",
    "unjustified-waiver",
)

# Same grammar as repro.analysis.lint so one pragma dialect serves both
# linters; conclint additionally demands trailing justification text.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([a-z\-,\s]+)\)")

# Attribute-call names never resolved to program functions: common
# container/str/ndarray methods whose name collisions would otherwise
# wire the call graph to unrelated code.
_SKIP_METHODS = frozenset({
    "add", "append", "astype", "clear", "close", "copy", "count",
    "decode", "discard", "encode", "endswith", "extend", "fill",
    "flush", "format", "get", "group", "index", "insert", "is_alive",
    "is_set", "item", "items", "join", "keys", "lower", "match",
    "mean", "move_to_end", "pop", "popitem", "put", "ravel", "read",
    "remove", "reshape", "search", "set", "setdefault", "shutdown",
    "sort", "split", "start", "startswith", "strip", "sum", "terminate",
    "tolist", "update", "upper", "values", "wait", "write",
})


def canonical_rel(path: str) -> str:
    """Normalize any path to a ``repro/...``-rooted relative form.

    This is the shared identity between static construction sites and
    the frames :mod:`repro.faults.racestress` observes at runtime.
    """
    norm = path.replace(os.sep, "/")
    idx = norm.rfind("/repro/")
    if idx >= 0:
        return norm[idx + 1:]
    if norm.startswith("repro/"):
        return norm
    return norm


def module_name(path: str) -> str:
    rel = canonical_rel(path)
    if rel.endswith(".py"):
        rel = rel[:-3]
    return rel.replace("/", ".")


@dataclass(frozen=True)
class Finding:
    """One conclint diagnostic; mirrors ``lint.Violation`` plus the
    waiver's in-line justification text (empty when unwaived)."""

    rule: str
    path: str
    line: int
    message: str
    waived: bool = False
    justification: str = ""

    def describe(self) -> str:
        suffix = " (waived)" if self.waived else ""
        return f"{self.rule} {self.path}:{self.line} {self.message}{suffix}"


@dataclass
class LockInfo:
    """One lock identity — possibly several construction sites (e.g.
    ``SelectionReport._lock`` is built in both ``__post_init__`` and
    ``__setstate__``) that are the same discipline-level lock."""

    lock_id: str
    kind: str  # "lock" | "rlock"
    sites: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class FunctionInfo:
    """One function/method/closure with enough context to resolve
    ``self.<attr>`` locks and receiver-less calls."""

    qualname: str
    name: str
    path: str
    module: str
    cls: Optional[str]
    node: ast.AST
    lineno: int

    def positional_bounds(self) -> Tuple[int, float]:
        """(min, max) positional args accepted, excluding ``self``."""
        a = self.node.args
        names = [arg.arg for arg in a.args]
        skip = 1 if (self.cls and names and names[0] in ("self", "cls")) else 0
        total = len(names) - skip + len(a.posonlyargs)
        required = total - len(a.defaults)
        upper: float = total if a.vararg is None else float("inf")
        return max(required, 0), upper


def receiver_text(node: ast.AST) -> str:
    """Dotted receiver name for heuristics (``self._pool`` -> that)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts))


class Program:
    """Parsed sources plus the shared indexes (see module docstring)."""

    def __init__(self, sources: Dict[str, str]) -> None:
        self.sources: Dict[str, str] = {}
        self.trees: Dict[str, ast.Module] = {}
        self.parse_errors: List[Finding] = []
        self.locks: Dict[str, LockInfo] = {}
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self.by_node: Dict[ast.AST, FunctionInfo] = {}
        self.classes: Dict[str, List[str]] = {}  # class name -> modules
        # path -> line -> (rules, justification)
        self.waivers: Dict[str, Dict[int, Tuple[Set[str], str]]] = {}
        for path, source in sorted(sources.items()):
            rel = canonical_rel(path)
            self.sources[rel] = source
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                self.parse_errors.append(
                    Finding("syntax-error", rel, exc.lineno or 0, str(exc))
                )
                continue
            self.trees[rel] = tree
            self._index_file(rel, tree)
            self._index_waivers(rel, source)

    # ------------------------------------------------------------------
    def _index_file(self, rel: str, tree: ast.Module) -> None:
        mod = module_name(rel)
        prog = self

        class _Indexer(ast.NodeVisitor):
            def __init__(self) -> None:
                self.class_stack: List[str] = []

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                prog.classes.setdefault(node.name, []).append(mod)
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def _function(self, node) -> None:
                cls = self.class_stack[-1] if self.class_stack else None
                fi = FunctionInfo(
                    qualname=f"{mod}.{'.'.join(self.class_stack + [node.name])}"
                    if self.class_stack else f"{mod}.{node.name}",
                    name=node.name, path=rel, module=mod, cls=cls,
                    node=node, lineno=node.lineno,
                )
                prog.functions.append(fi)
                prog.by_name.setdefault(node.name, []).append(fi)
                prog.by_node[node] = fi
                self.generic_visit(node)

            visit_FunctionDef = _function
            visit_AsyncFunctionDef = _function

            def visit_Assign(self, node: ast.Assign) -> None:
                kind = _lock_ctor_kind(node.value)
                if kind is not None:
                    for target in node.targets:
                        lock_id = None
                        if isinstance(target, ast.Name):
                            lock_id = f"{mod}.{target.id}"
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and self.class_stack
                        ):
                            lock_id = (
                                f"{mod}.{self.class_stack[-1]}.{target.attr}"
                            )
                        if lock_id is not None:
                            info = prog.locks.setdefault(
                                lock_id, LockInfo(lock_id, kind)
                            )
                            info.sites.append((rel, node.lineno))
                self.generic_visit(node)

        _Indexer().visit(tree)

    def _index_waivers(self, rel: str, source: str) -> None:
        table: Dict[int, Tuple[Set[str], str]] = {}
        for i, text in enumerate(source.splitlines(), start=1):
            m = _ALLOW_RE.search(text)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                table[i] = (rules, text[m.end():].strip(" -—:#"))
        self.waivers[rel] = table

    # ------------------------------------------------------------------
    # Lock resolution
    # ------------------------------------------------------------------
    def resolve_lock(
        self, expr: ast.AST, fi: Optional[FunctionInfo]
    ) -> Optional[LockInfo]:
        """Map a ``with X:`` / ``X.acquire()`` receiver to a lock id."""
        if isinstance(expr, ast.Name):
            mod = fi.module if fi else ""
            return self.locks.get(f"{mod}.{expr.id}")
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            if fi is not None and fi.cls is not None:
                info = self.locks.get(f"{fi.module}.{fi.cls}.{expr.attr}")
                if info is not None:
                    return info
            suffix = f".{expr.attr}"
            hits = [l for lid, l in self.locks.items() if lid.endswith(suffix)]
            if len(hits) == 1:
                return hits[0]
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, caller: Optional[FunctionInfo]
    ) -> List[FunctionInfo]:
        func = call.func
        npos = len(call.args)
        nkw = len(call.keywords)
        if isinstance(func, ast.Name):
            name = func.id
            cands = self.by_name.get(name, [])
            if caller is not None:
                same_mod = [c for c in cands if c.module == caller.module]
                if same_mod:
                    cands = same_mod
            if not cands and name in self.classes:
                cands = [
                    c for c in self.by_name.get("__init__", [])
                    if c.cls == name
                ]
            if len({c.module for c in cands}) > 1:
                return []  # globally ambiguous free name: give up soundly
            return _arity_filter(cands, npos, nkw)
        if isinstance(func, ast.Attribute):
            name = func.attr
            if name in _SKIP_METHODS or name.startswith("__"):
                return []
            cands = [c for c in self.by_name.get(name, []) if c.cls]
            return _arity_filter(cands, npos, nkw)
        return []


def _arity_filter(
    cands: List[FunctionInfo], npos: int, nkw: int
) -> List[FunctionInfo]:
    out = []
    for c in cands:
        lo, hi = c.positional_bounds()
        if npos <= hi and npos + nkw >= lo - _defaultable(c):
            out.append(c)
    return out


def _defaultable(c: FunctionInfo) -> int:
    a = c.node.args
    return len(a.defaults) + len(a.kw_defaults)


def _lock_ctor_kind(value: ast.AST) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name == "Lock":
        return "lock"
    if name == "RLock":
        return "rlock"
    return None
