"""Seeded concurrency-bug self-test for conclint.

Mirrors :mod:`repro.analysis.mutate` (planlint's falsifiability
battery) at the source level: each mutation is an exact-text edit of a
*real* module — a reversed lock order, a dropped ``unlink``, a widened
shard slice — applied to an in-memory copy of the tree and re-analyzed.
A mutation is **caught** when the analysis of the mutated tree reports
a new unwaived finding of the expected rule that the clean tree does
not have.  A mutation whose anchor text no longer exists is *not
applicable* (the battery must be updated alongside the code it seeds).

Run via ``python -m repro.analysis.conclint --self-test``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from . import analyze_sources, canonical_rel, collect_sources

__all__ = ["MUTATIONS", "Mutation", "NotApplicable", "run_self_test"]

_SHARDED = "repro/kernels/sharded.py"
_SERVICE = "repro/serving/service.py"
_CACHE = "repro/serving/cache.py"


class NotApplicable(RuntimeError):
    """The mutation's anchor text is gone; the battery needs updating."""


@dataclass(frozen=True)
class Mutation:
    name: str
    kind: str
    path: str
    old: str
    new: str
    expected_rules: FrozenSet[str]


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        "reversed_lock_order", "deadlock", _SERVICE,
        "    @property\n    def cache(self) -> PlanCache:\n"
        "        return self._cache\n",
        "    @property\n    def cache(self) -> PlanCache:\n"
        "        return self._cache\n\n"
        "    def _mutant_lock_a(self):\n"
        "        with self._lock:\n"
        "            with self._select_lock:\n"
        "                return None\n\n"
        "    def _mutant_lock_b(self):\n"
        "        with self._select_lock:\n"
        "            with self._lock:\n"
        "                return None\n",
        frozenset({"lock-order-cycle"}),
    ),
    Mutation(
        "wait_under_cache_lock", "blocking", _CACHE,
        "            if event is not None:\n"
        "                event.wait(_WAIT_SLICE_SECONDS)\n"
        "                continue\n",
        "            if event is not None:\n"
        "                with self._lock:\n"
        "                    event.wait(_WAIT_SLICE_SECONDS)\n"
        "                continue\n",
        frozenset({"lock-held-across-blocking-call"}),
    ),
    Mutation(
        "result_under_select_lock", "blocking", _SERVICE,
        "            with self._select_lock:\n"
        "                layer = spec.factory()\n",
        "            with self._select_lock:\n"
        "                self._pool.submit(spec.factory).result()\n"
        "                layer = spec.factory()\n",
        frozenset({"lock-held-across-blocking-call"}),
    ),
    Mutation(
        "acquire_without_release", "lock-leak", _CACHE,
        "        with self._lock:\n"
        "            entry = self._entries.get(key)\n"
        "            if entry is not None and entry.token == token:\n"
        "                return entry\n"
        "            return None\n",
        "        self._lock.acquire()\n"
        "        entry = self._entries.get(key)\n"
        "        if entry is not None and entry.token == token:\n"
        "            return entry\n"
        "        self._lock.release()\n"
        "        return None\n",
        frozenset({"lock-acquire-no-release"}),
    ),
    Mutation(
        "reentrant_self_deadlock", "deadlock", _CACHE,
        "            with self._lock:\n"
        "                entry = self._entries.get(key)\n"
        "                if entry is not None:\n",
        "            with self._lock:\n"
        "                self.stats()\n"
        "                entry = self._entries.get(key)\n"
        "                if entry is not None:\n",
        frozenset({"lock-self-deadlock"}),
    ),
    Mutation(
        "drop_release_buffer", "resource-leak", _SHARDED,
        "        _release_buffer(x_shm)\n"
        "        _release_buffer(out_shm)\n"
        "        return out\n",
        "        _release_buffer(out_shm)\n"
        "        return out\n",
        frozenset({"resource-leak"}),
    ),
    Mutation(
        "drop_exception_discard", "resource-leak", _SHARDED,
        "            _discard_buffer(x_shm)\n"
        "            _discard_buffer(out_shm)\n"
        "            shutdown_pool()\n"
        "            raise\n",
        "            _discard_buffer(x_shm)\n"
        "            shutdown_pool()\n"
        "            raise\n",
        frozenset({"resource-leak"}),
    ),
    Mutation(
        "drop_graph_segments_guard", "resource-leak", _SHARDED,
        "    except Exception:\n"
        "        _release_entry(entry)  # allocation died mid-graph: "
        "no half entries\n"
        "        raise\n",
        "    except Exception:\n"
        "        raise\n",
        frozenset({"resource-leak"}),
    ),
    Mutation(
        "drop_unlink_in_discard", "resource-leak", _SHARDED,
        "def _discard_buffer(shm: shared_memory.SharedMemory) -> None:\n"
        "    try:\n"
        "        shm.close()\n"
        "        shm.unlink()\n",
        "def _discard_buffer(shm: shared_memory.SharedMemory) -> None:\n"
        "    try:\n"
        "        shm.close()\n",
        frozenset({"resource-leak"}),
    ),
    Mutation(
        "widen_shard_write", "overlap", _SHARDED,
        "    out[r0:r1] = gspmm(",
        "    out[r0 : r1 + 1] = gspmm(",
        frozenset({"shard-write-overlap"}),
    ),
    Mutation(
        "overlap_task_bounds", "overlap", _SHARDED,
        "r0, r1 = int(bounds[i]), int(bounds[i + 1])",
        "r0, r1 = int(bounds[i]) - 1, int(bounds[i + 1])",
        frozenset({"shard-write-overlap"}),
    ),
    Mutation(
        "unknown_bounds_producer", "overlap", _SHARDED,
        "    bounds = plan_row_shards(adj.indptr, num_shards)",
        "    bounds = np.cumsum(\n"
        "        np.diff(np.linspace(0, n, num_shards + 1)).astype(np.int64)\n"
        "    )",
        frozenset({"shard-write-overlap"}),
    ),
    Mutation(
        "drop_waiver", "waiver", _SHARDED,
        "    # lint: allow(lock-held-across-blocking-call) "
        "collect() must own the pool\n    with _POOL_LOCK:\n"
        "        pool = _get_pool(num_workers)",
        "    with _POOL_LOCK:\n"
        "        pool = _get_pool(num_workers)",
        frozenset({"lock-held-across-blocking-call"}),
    ),
)


def _tree_sources() -> Dict[str, str]:
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    return {
        canonical_rel(path): text
        for path, text in collect_sources([root]).items()
    }


def apply_mutation(sources: Dict[str, str], mutation: Mutation) -> Dict[str, str]:
    source = sources.get(mutation.path)
    if source is None or mutation.old not in source:
        raise NotApplicable(
            f"{mutation.name}: anchor text not found in {mutation.path}"
        )
    mutated = dict(sources)
    mutated[mutation.path] = source.replace(mutation.old, mutation.new, 1)
    return mutated


def run_self_test(verbose: bool = False) -> bool:
    """Apply every mutation; return True iff all applicable ones are
    caught and the clean tree itself analyzes clean."""
    sources = _tree_sources()
    baseline = analyze_sources(sources)
    base_keys = {(f.rule, f.path) for f in baseline.active}
    ok = True
    if baseline.active:
        ok = False
        print(f"FAIL baseline: {len(baseline.active)} unwaived finding(s) "
              f"on the clean tree")
        for f in baseline.active:
            print(f"  {f.describe()}")
    records: List[Tuple[str, str]] = []
    for mutation in MUTATIONS:
        try:
            mutated = apply_mutation(sources, mutation)
        except NotApplicable as exc:
            ok = False
            records.append((mutation.name, f"NOT APPLICABLE ({exc})"))
            continue
        report = analyze_sources(mutated)
        fresh = [
            f for f in report.active if (f.rule, f.path) not in base_keys
        ]
        caught = [f for f in fresh if f.rule in mutation.expected_rules]
        if caught:
            records.append(
                (mutation.name, f"caught ({caught[0].rule} at "
                                f"{caught[0].path}:{caught[0].line})")
            )
        else:
            ok = False
            got = ", ".join(sorted({f.rule for f in fresh})) or "nothing"
            records.append(
                (mutation.name,
                 f"MISSED (wanted {'/'.join(sorted(mutation.expected_rules))},"
                 f" got {got})")
            )
    caught_n = sum(1 for _, r in records if r.startswith("caught"))
    for name, outcome in records:
        if verbose or not outcome.startswith("caught"):
            print(f"  {name}: {outcome}")
    print(
        f"conclint self-test: {caught_n}/{len(MUTATIONS)} seeded "
        f"concurrency bug(s) caught"
    )
    return ok


if __name__ == "__main__":
    import sys

    sys.exit(0 if run_self_test(verbose=True) else 1)
