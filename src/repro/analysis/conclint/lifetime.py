"""Resource-lifetime pass: segments/executors released on all paths.

Generalizes planlint's workspace acquire/release trace to module code.
Tracked resources:

- **segment** — ``shared_memory.SharedMemory(create=True, ...)`` and
  any function that returns one (``_create_segment``,
  ``_acquire_buffer`` — the *acquire functions*, derived by fixpoint);
- **executor** — ``ThreadPoolExecutor(...)``.

A resource bound to a local must, on **every** path out of the
function — normal returns *and* exception edges — be released
(``unlink``/``shutdown``, or passed to a derived *releaser* function
such as ``_release_buffer``/``_release_entry``) or escape (returned,
stored on an attribute, or published into a module-level container,
which transfers ownership to a longer-lived teardown path).  Locals
holding resources inside a container (``entry[role] = shm``) become
*holders* and are tracked as a unit.

The interpreter runs each function with explicit try/except/finally
flow: at every statement that performs a call while resources are
live, the pre-state is snapshotted as a potential exception edge; the
enclosing handlers run on that snapshot, and anything still live when
an exception (or return) leaves the function is a ``resource-leak``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .model import Finding, FunctionInfo, Program, receiver_text

__all__ = ["analyze_lifetime"]


def _is_seed_acquire(call: ast.Call) -> Optional[str]:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "SharedMemory":
        for kw in call.keywords:
            if kw.arg == "create" and (
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            ):
                return "segment"
        return None
    if name == "ThreadPoolExecutor":
        return "executor"
    return None


def _derive_acquire_fns(prog: Program) -> Dict[str, str]:
    """Functions whose return value is a tracked resource."""
    kinds: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for fi in prog.functions:
            if fi.qualname in kinds:
                continue
            kind = _returns_resource(fi, prog, kinds)
            if kind is not None:
                kinds[fi.qualname] = kind
                changed = True
    return kinds


def _call_acquire_kind(
    call: ast.Call, fi: FunctionInfo, prog: Program, acq: Dict[str, str]
) -> Optional[str]:
    kind = _is_seed_acquire(call)
    if kind is not None:
        return kind
    for callee in prog.resolve_call(call, fi):
        if callee.qualname in acq:
            return acq[callee.qualname]
    return None


def _returns_resource(fi, prog, acq) -> Optional[str]:
    assigned: Dict[str, str] = {}
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            kind = _call_acquire_kind(node.value, fi, prog, acq)
            if kind is not None:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        assigned[t.id] = kind
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Call):
                kind = _call_acquire_kind(node.value, fi, prog, acq)
                if kind is not None:
                    return kind
            if isinstance(node.value, ast.Name) and node.value.id in assigned:
                return assigned[node.value.id]
    return None


def _derive_releasers(prog: Program, acq: Dict[str, str]) -> Set[str]:
    """Functions that release (or take ownership of) their first arg."""
    releasers: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for fi in prog.functions:
            if fi.qualname in releasers:
                continue
            if _releases_param(fi, prog, releasers):
                releasers.add(fi.qualname)
                changed = True
    return releasers


def _releases_param(fi, prog, releasers) -> bool:
    args = fi.node.args.args
    skip = 1 if (fi.cls and args and args[0].arg in ("self", "cls")) else 0
    if len(args) <= skip:
        return False
    param = args[skip].arg
    derived: Set[str] = {param}
    for node in ast.walk(fi.node):
        # `for shm in entry.values():` -> shm derives from entry
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            root = node.iter
            while isinstance(root, (ast.Attribute, ast.Call, ast.Subscript)):
                root = getattr(root, "value", None) or getattr(
                    root, "func", None
                )
                if isinstance(root, ast.Attribute):
                    continue
            if isinstance(root, ast.Name) and root.id in derived:
                derived.add(node.target.id)
    module_globals = {
        t.id
        for tree_path, tree in prog.trees.items()
        if tree_path == fi.path
        for stmt in tree.body
        if isinstance(stmt, (ast.Assign, ast.AnnAssign))
        for t in (stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target])
        if isinstance(t, ast.Name)
    }
    for node in ast.walk(fi.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # direct release primitive on a derived name
        if isinstance(func, ast.Attribute) and func.attr in ("unlink", "shutdown"):
            base = func.value
            if isinstance(base, ast.Name) and base.id in derived:
                return True
        # handoff to another releaser
        if node.args and isinstance(node.args[0], ast.Name):
            if node.args[0].id in derived:
                for callee in prog.resolve_call(node, fi):
                    if callee.qualname in releasers:
                        return True
        # escape into a module-level container: POOL.setdefault(...).append(p)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("append", "add", "put")
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in derived
        ):
            recv = receiver_text(func.value)
            root = recv.split(".")[0] if recv else ""
            if root in module_globals:
                return True
    # escape via `GLOBAL[key] = param`
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in module_globals
                    and isinstance(node.value, ast.Name)
                    and node.value.id in derived
                ):
                    return True
    return False


# ----------------------------------------------------------------------
# The per-function abstract interpreter
# ----------------------------------------------------------------------
class _Interp:
    def __init__(self, fi: FunctionInfo, prog: Program, acq, releasers):
        self.fi = fi
        self.prog = prog
        self.acq = acq
        self.releasers = releasers
        self.findings: List[Finding] = []
        self.locals: Set[str] = set()

    # -- state helpers --------------------------------------------------
    @staticmethod
    def _merge(states: List[Optional[Dict[str, str]]]):
        live = [s for s in states if s is not None]
        if not live:
            return None
        out: Dict[str, str] = {}
        for s in live:
            out.update(s)
        return out

    def _leak(self, state: Dict[str, str], line: int, how: str) -> None:
        for var, kind in sorted(state.items()):
            self.findings.append(Finding(
                "resource-leak", self.fi.path, line,
                f"{kind} {var!r} in {self.fi.qualname} {how} — every "
                f"segment/executor must be released or escape on all "
                f"paths, including exception edges",
            ))

    # -- classification -------------------------------------------------
    def _acquire_kind(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            return _call_acquire_kind(value, self.fi, self.prog, self.acq)
        return None

    def _release_targets(self, call: ast.Call, state) -> List[str]:
        """Names in `state` this call releases / takes ownership of."""
        func = call.func
        out: List[str] = []
        if isinstance(func, ast.Attribute) and func.attr in (
            "unlink", "shutdown"
        ):
            if isinstance(func.value, ast.Name) and func.value.id in state:
                out.append(func.value.id)
        if call.args and isinstance(call.args[0], ast.Name):
            name = call.args[0].id
            if name in state:
                for callee in self.prog.resolve_call(call, self.fi):
                    if callee.qualname in self.releasers:
                        out.append(name)
                        break
        return out

    def _is_risky(self, stmt: ast.stmt, state) -> bool:
        """Statement can raise with resources live and is not itself a
        pure release action (releases never snapshot: the cleanup
        sequence at a function's end is not a new leak edge).

        Only *simple* statements (and compound-statement headers) are
        snapshotted here — calls inside a compound statement's body get
        their own snapshot at the right handler nesting when the body
        is interpreted.
        """
        if not state:
            return False
        if isinstance(
            stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr,
                   ast.Assert, ast.Delete, ast.Return, ast.Raise)
        ):
            roots: List[ast.AST] = [stmt]
        elif isinstance(stmt, ast.If):
            roots = [stmt.test]
        elif isinstance(stmt, ast.While):
            roots = [stmt.test]
        elif isinstance(stmt, ast.For):
            roots = [stmt.iter]
        elif isinstance(stmt, ast.With):
            roots = [item.context_expr for item in stmt.items]
        else:
            return False
        calls = [
            n for root in roots for n in ast.walk(root)
            if isinstance(n, ast.Call)
        ]
        if not calls:
            return False
        return not all(self._release_targets(c, state) for c in calls)

    # -- driver ---------------------------------------------------------
    def run(self) -> List[Finding]:
        exc_out: List[Tuple[Dict[str, str], int]] = []
        final = self.run_block(list(self.fi.node.body), {}, exc_out)
        if final:
            self._leak(final, self.fi.node.body[-1].lineno, "still live at end")
        seen: Set[str] = set()
        for state, line in exc_out:
            for var in list(state):
                if var in seen:
                    state.pop(var)
                else:
                    seen.add(var)
            if state:
                self._leak(state, line, "leaks if an exception unwinds here")
        return self.findings

    def run_block(self, stmts, state, exc_out):
        for stmt in stmts:
            if state is None:
                return None
            state = self.run_stmt(stmt, state, exc_out)
        return state

    def run_stmt(self, stmt, state, exc_out):
        if self._is_risky(stmt, state):
            exc_out.append((dict(state), stmt.lineno))
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt, state)
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            return state
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            for name in self._release_targets(stmt.value, state):
                state.pop(name, None)
            return state
        if isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Name):
                state.pop(stmt.value.id, None)  # ownership to the caller
            if state:
                self._leak(state, stmt.lineno, "still live at this return")
            return None
        if isinstance(stmt, ast.Raise):
            exc_out.append((dict(state), stmt.lineno))
            return None
        if isinstance(stmt, ast.If):
            s1 = self.run_block(stmt.body, dict(state), exc_out)
            s2 = self.run_block(stmt.orelse, dict(state), exc_out)
            return self._merge([s1, s2])
        if isinstance(stmt, (ast.For, ast.While)):
            s1 = self.run_block(stmt.body, dict(state), exc_out)
            merged = self._merge([state, s1]) or dict(state)
            s2 = self.run_block(stmt.body, dict(merged), exc_out)
            return self._merge([merged, s2]) or merged
        if isinstance(stmt, ast.With):
            return self.run_block(stmt.body, state, exc_out)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, state, exc_out)
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            return state
        return state

    def _assign(self, stmt: ast.Assign, state):
        value = stmt.value
        kind = self._acquire_kind(value)
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        if kind is not None:
            if isinstance(target, ast.Name):
                state[target.id] = kind
            # attribute / subscript target: escapes at birth
            return state
        if isinstance(value, ast.Name) and value.id in state:
            if isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Name):
                    if base.id in state and state[base.id] == "holder":
                        state.pop(value.id)  # moved into a tracked holder
                    elif base.id in self._module_globals():
                        state.pop(value.id)  # published module-wide
                    else:
                        state.pop(value.id)
                        state[base.id] = "holder"
            elif isinstance(target, (ast.Attribute,)):
                state.pop(value.id)  # stored on an object: escapes
            return state
        # `entry = {}` style holder seed: only tracked once it holds
        if isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and isinstance(value, ast.Name)
                and value.id in state
            ):
                state.pop(value.id)
                state[base.id] = "holder"
        # publishing a holder: GLOBAL[key] = holder
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in self._module_globals()
            and isinstance(value, ast.Name)
        ):
            state.pop(value.id, None)
        return state

    def _module_globals(self) -> Set[str]:
        cached = getattr(self, "_mg", None)
        if cached is None:
            tree = self.prog.trees.get(self.fi.path)
            cached = set()
            if tree is not None:
                for node in tree.body:
                    targets = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, ast.AnnAssign):
                        targets = [node.target]
                    for t in targets:
                        if isinstance(t, ast.Name):
                            cached.add(t.id)
            self._mg = cached
        return cached

    def _try(self, stmt: ast.Try, state, exc_out):
        body_exc: List[Tuple[Dict[str, str], int]] = []
        normal = self.run_block(stmt.body, dict(state), body_exc)
        after: List[Optional[Dict[str, str]]] = []
        if normal is not None:
            normal = self.run_block(stmt.orelse, normal, body_exc)
        after.append(normal)
        for est, line in body_exc:
            if not stmt.handlers:
                exc_out.append((est, line))
                continue
            for handler in stmt.handlers:
                h_exc: List[Tuple[Dict[str, str], int]] = []
                hs = self.run_block(handler.body, dict(est), h_exc)
                after.append(hs)
                exc_out.extend(h_exc)
        merged = self._merge(after)
        if stmt.finalbody:
            f_exc: List[Tuple[Dict[str, str], int]] = []
            if merged is not None:
                merged = self.run_block(stmt.finalbody, merged, f_exc)
            fixed: List[Tuple[Dict[str, str], int]] = []
            for est, line in exc_out:
                out = self.run_block(stmt.finalbody, dict(est), f_exc)
                if out:
                    fixed.append((out, line))
            exc_out[:] = fixed
            exc_out.extend(f_exc)
        return merged


def analyze_lifetime(prog: Program) -> List[Finding]:
    acq = _derive_acquire_fns(prog)
    releasers = _derive_releasers(prog, acq)
    findings: List[Finding] = []
    for fi in prog.functions:
        if fi.qualname in acq:
            continue  # acquire functions hand ownership to their caller
        has_acquire = any(
            isinstance(n, ast.Assign)
            and isinstance(n.targets[0], ast.Name)
            and isinstance(n.value, ast.Call)
            and _call_acquire_kind(n.value, fi, prog, acq) is not None
            for n in ast.walk(fi.node)
            if isinstance(n, ast.Assign) and len(n.targets) == 1
        )
        if not has_acquire:
            continue
        findings.extend(_Interp(fi, prog, acq, releasers).run())
    return findings
