"""The public GRANII entry point (paper Figure 4).

Usage mirrors the paper exactly::

    import repro
    graph, node_feats, labels = ...
    model = repro.models.GCNLayer(in_size, out_size)
    repro.GRANII(model, graph, node_feats, labels)   # <- only change
    res = model(graph, node_feats)
"""

from __future__ import annotations

from typing import Optional

from .core.runtime import GraniiEngine, OptimizationReport
from .graphs import Graph

__all__ = ["GRANII"]


def GRANII(
    model,
    graph: Graph,
    node_feats=None,
    labels=None,
    device: str = "h100",
    system: str = "dgl",
    iterations: int = 100,
    mode: str = "inference",
    scale: str = "default",
    engine: Optional[GraniiEngine] = None,
) -> OptimizationReport:
    """Accelerate ``model`` in place for the given input.

    Parameters
    ----------
    model:
        A :class:`~repro.framework.module.GNNModule` layer or a
        :class:`~repro.models.zoo.MultiLayerGNN` stack.
    graph, node_feats, labels:
        The inputs the model will be run with; GRANII inspects the graph
        (and the model's embedding sizes) to select the best composition.
        ``labels`` is accepted for interface fidelity with the paper;
        selection does not depend on it.
    device / system:
        The execution target whose cost models steer selection
        ('cpu' | 'a100' | 'h100'; 'dgl' | 'wisegraph').
    iterations:
        Expected number of model executions — amortises one-time sparse
        precomputation in the cost comparison (paper uses 100).
    mode:
        'inference' or 'training' (training adds backward-pass costs).

    Returns the per-layer :class:`OptimizationReport` (chosen composition,
    decision overheads).
    """
    engine = engine or GraniiEngine(
        device=device,
        system=system,
        iterations=iterations,
        mode=mode,
        scale=scale,
    )
    return engine.optimize(model, graph, node_feats, labels)
