"""Multi-tenant plan-serving runtime (ROADMAP item 2).

:class:`GraniiService` turns the single-call guarded engine into a
long-lived service: concurrent requests from named tenants pass an
admission gate, bounded per-tenant queues, a fingerprint-keyed plan
cache, per-tenant circuit breakers, and retry/deadline handling around
the guarded fallback ladder.  ``python -m repro.serving.chaos`` drives
the whole stack through multi-tenant failure storms.
"""

from .cache import CacheEntry, PlanCache
from .fingerprint import GraphFingerprint, fingerprint_graph
from .service import (
    GraniiService,
    ModelSpec,
    ServeRequest,
    ServeResult,
    TenantState,
)

__all__ = [
    "CacheEntry",
    "GraniiService",
    "GraphFingerprint",
    "ModelSpec",
    "PlanCache",
    "ServeRequest",
    "ServeResult",
    "TenantState",
    "fingerprint_graph",
]
