"""Service-level chaos: drive ``GraniiService`` through failure storms.

``python -m repro.serving.chaos`` extends the engine-level chaos driver
(:mod:`repro.faults.chaos`) one level up: instead of faulting a single
guarded executor, each scenario runs a *multi-tenant traffic mix*
through a live service and checks the serving contract:

- **no hangs**: every admitted request's future resolves within the
  gather timeout;
- **no raw escapes**: every terminal outcome is a result or a
  structured ``GraniiError`` (``raw_escape`` outcomes are violations);
- **isolation**: a clean tenant sharing the thread pool with a
  poisoned tenant gets correct, undemoted answers;
- **breaker demotion**: a tenant whose requests keep failing is
  demoted to the reference path (outcome ``reference``), not errored
  forever;
- **backpressure**: an overload burst sheds with
  :class:`~repro.errors.GraniiOverloadError` carrying a positive
  retry-after hint, and every accepted request still terminates;
- **collision safety**: a forced fingerprint key collision is detected
  by the structural token and served by recompute — never by the
  colliding entry's plan;
- **self-healing**: a sharded worker killed (``worker-kill``) or hung
  (``hang-worker``) mid-request is healed by the pool itself —
  respawn plus shard resubmission — with bitwise-correct results;
- **durability**: a snapshot corrupted on disk is quarantined at warm
  start with the service still answering (``corrupt-snapshot``), and a
  SIGKILLed serving process leaves state a fresh process warm-starts
  from — first repeat request is a plan-cache hit and no ``/dev/shm``
  segment survives the sweep (``restart-warm``).

Scenarios: ``slow-tenant``, ``poison-graph``, ``worker-kill``,
``hang-worker``, ``shm-exhaustion``, ``cache-collision``,
``overload``, ``poison-input``, ``corrupt-snapshot``,
``restart-warm``.  Each is seeded and replayable; exit status is
non-zero iff any violation is recorded.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import Future, TimeoutError as FutureTimeout
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.costmodel import get_cost_models
from ..errors import GraniiError, GraniiInputError, GraniiOverloadError
from ..faults import FaultPlan
from ..graphs.generators import erdos_renyi
from ..models import build_layer
from .fingerprint import fingerprint_graph
from .service import GraniiService, ServeRequest, ServeResult

__all__ = ["main", "SCENARIOS"]

IN_SIZE, OUT_SIZE = 16, 8
GATHER_TIMEOUT_SECONDS = 60.0

# outcomes that violate the serving contract when they appear anywhere
BAD_OUTCOMES = ("raw_escape", "hang", "mismatch", "isolation_breach")


def _service(cost_models, **kwargs) -> GraniiService:
    kwargs.setdefault("device", "cpu")
    kwargs.setdefault("cost_models", cost_models)
    kwargs.setdefault("num_threads", 4)
    svc = GraniiService(**kwargs)
    svc.register_model("gcn", IN_SIZE, OUT_SIZE)
    return svc


def _reference(graph, feats: np.ndarray) -> np.ndarray:
    layer = build_layer("gcn", IN_SIZE, OUT_SIZE, rng=np.random.default_rng(0))
    return np.asarray(layer(graph, feats).data)


def _gather(
    futures: List["Future[ServeResult]"], violations: List[str]
) -> List[ServeResult]:
    """Resolve every future; a timeout is the cardinal sin (a hang)."""
    results: List[ServeResult] = []
    for future in futures:
        try:
            result = future.result(timeout=GATHER_TIMEOUT_SECONDS)
        except FutureTimeout:
            violations.append(
                f"hang: a request future did not resolve within "
                f"{GATHER_TIMEOUT_SECONDS:.0f}s"
            )
            continue
        results.append(result)
        if result.outcome == "raw_escape":
            violations.append(
                f"raw_escape: {result.tenant}/{result.request_id}: "
                f"{result.error_type}: {result.error}"
            )
    return results


def _check_clean(
    results: List[ServeResult],
    reference: np.ndarray,
    violations: List[str],
    tenant: str = "clean",
) -> None:
    """The isolation contract: the clean tenant is correct and untouched."""
    for r in results:
        if r.tenant != tenant:
            continue
        if not r.ok:
            violations.append(
                f"isolation_breach: clean tenant request {r.request_id} "
                f"failed: {r.error_type}: {r.error}"
            )
        elif r.outcome != "ok" or r.demotions:
            violations.append(
                f"isolation_breach: clean tenant request {r.request_id} "
                f"ended {r.outcome!r} with demotions {r.demotions}"
            )
        elif not np.allclose(r.value, reference, rtol=1e-4, atol=1e-6):
            violations.append(
                f"mismatch: clean tenant request {r.request_id} diverged "
                f"from the baseline "
                f"(max_abs_err={float(np.max(np.abs(r.value - reference))):.3e})"
            )


def _record(
    name: str, violations: List[str], t0: float, **extra
) -> Dict[str, object]:
    record: Dict[str, object] = {
        "scenario": name,
        "outcome": "violated" if violations else "ok",
        "violations": violations,
        "seconds": round(time.perf_counter() - t0, 3),
    }
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_slow_tenant(graph, feats, reference, cost_models, seed, n):
    """A tenant whose kernels stall must time out (structured), while a
    clean tenant sharing the pool still gets correct, undemoted
    answers.  The deadline rides the slow tenant's *requests* — the
    clean tenant carries none, because a shared thread pool gives no
    latency guarantee while a neighbor's work is stalling workers; the
    isolation contract here is correctness, demotion state, and
    termination, not tail latency."""
    t0 = time.perf_counter()
    violations: List[str] = []
    with _service(cost_models, retries=0) as svc:
        futures = []
        for i in range(n):
            slow_plan = FaultPlan.from_string("*:slow:1.0:0.3", seed=seed + i)
            futures.append(svc.submit(ServeRequest(
                tenant="slow", model="gcn", graph=graph, feats=feats,
                fault_plan=slow_plan, deadline_seconds=0.5,
            )))
            futures.append(svc.submit(ServeRequest(
                tenant="clean", model="gcn", graph=graph, feats=feats,
            )))
        results = _gather(futures, violations)
    _check_clean(results, reference, violations)
    slow = [r for r in results if r.tenant == "slow"]
    timeouts = sum(1 for r in slow if r.outcome == "timeout")
    if not any(r.outcome in ("timeout", "ok_demoted", "error") for r in slow):
        violations.append(
            "mismatch: every slow-tenant request completed clean under a "
            "100% stall fault — the injected faults never reached the "
            "kernels"
        )
    return _record(
        "slow-tenant", violations, t0,
        slow_outcomes=sorted({r.outcome for r in slow}), timeouts=timeouts,
    )


def scenario_poison_graph(graph, feats, reference, cost_models, seed, n):
    """A tenant whose every kernel raises must demote through its own
    ladder, trip the tenant breaker, and land on the reference path —
    with the clean tenant never seeing a demotion."""
    t0 = time.perf_counter()
    violations: List[str] = []
    with _service(
        cost_models, tenant_breaker_threshold=3,
        tenant_breaker_cooldown=300.0,
    ) as svc:
        poison_results: List[ServeResult] = []
        # sequential on the poisoned tenant so breaker state accumulates
        # deterministically; the clean tenant rides the pool concurrently
        clean_futures = [
            svc.submit(ServeRequest(
                tenant="clean", model="gcn", graph=graph, feats=feats,
            ))
            for _ in range(n)
        ]
        for i in range(max(n, 6)):
            plan = FaultPlan.from_string("*:raise:1.0", seed=seed + i)
            poison_results.append(svc.serve(ServeRequest(
                tenant="poison", model="gcn", graph=graph, feats=feats,
                fault_plan=plan,
            ), timeout=GATHER_TIMEOUT_SECONDS))
        results = _gather(clean_futures, violations) + poison_results
        stats = svc.stats()
    _check_clean(results, reference, violations)
    for r in poison_results:
        if r.outcome == "raw_escape":
            violations.append(
                f"raw_escape: poison/{r.request_id}: "
                f"{r.error_type}: {r.error}"
            )
        elif r.ok and not np.allclose(
            r.value, reference, rtol=1e-4, atol=1e-6
        ):
            violations.append(
                f"mismatch: poison/{r.request_id} returned ok with a "
                f"wrong value"
            )
    referenced = sum(1 for r in poison_results if r.outcome == "reference")
    if referenced == 0:
        violations.append(
            "mismatch: the tenant breaker never demoted the poisoned "
            "tenant to the reference path"
        )
    return _record(
        "poison-graph", violations, t0,
        poison_outcomes=sorted({r.outcome for r in poison_results}),
        reference_served=referenced,
        breaker_trips=stats["tenants"]["poison"]["breaker_trips"],
    )


def scenario_worker_kill(graph, feats, reference, cost_models, seed, n):
    """SIGKILL storms against the sharded pool: retries absorb transient
    worker deaths (rebuilding the pool) or the ladder demotes — either
    way every request terminates with a correct value, no hangs."""
    from ..kernels.sharded import shutdown_pool

    t0 = time.perf_counter()
    violations: List[str] = []
    try:
        with _service(
            cost_models, spmm_strategy="spmm_sharded", retries=3,
            num_threads=2,
        ) as svc:
            futures = []
            for i in range(n):
                plan = FaultPlan.from_string(
                    "spmm:kill_worker:0.5", seed=seed + i
                )
                futures.append(svc.submit(ServeRequest(
                    tenant="kills", model="gcn", graph=graph, feats=feats,
                    fault_plan=plan,
                )))
            results = _gather(futures, violations)
    finally:
        shutdown_pool()
    retried = sum(r.retries for r in results)
    demoted = sum(1 for r in results if r.demotions)
    for r in results:
        if not r.ok and r.outcome not in ("timeout", "error"):
            violations.append(
                f"raw_escape: kills/{r.request_id}: "
                f"{r.error_type}: {r.error}"
            )
        if r.ok and not np.allclose(
            r.value, reference, rtol=1e-4, atol=1e-6
        ):
            violations.append(
                f"mismatch: kills/{r.request_id} survived the kill storm "
                f"with a wrong value"
            )
    if not any(r.ok for r in results):
        violations.append(
            "mismatch: no request survived the kill storm — retries and "
            "the fallback ladder both failed"
        )
    return _record(
        "worker-kill", violations, t0,
        served=sum(1 for r in results if r.ok),
        kernel_retries=retried, demoted_requests=demoted,
    )


def scenario_hang_worker(graph, feats, reference, cost_models, seed, n):
    """SIGSTOP storms: a hung (alive-but-silent) worker is detected by
    heartbeat, killed, and its shards resubmitted — requests complete
    with correct values and the sharded strategy is never demoted."""
    from ..kernels.sharded import pool_health, shutdown_pool

    t0 = time.perf_counter()
    violations: List[str] = []
    old_hb = os.environ.get("REPRO_SHARD_HEARTBEAT_S")  # lint: allow(env-outside-config)
    os.environ["REPRO_SHARD_HEARTBEAT_S"] = "0.5"  # lint: allow(env-outside-config)
    try:
        with _service(
            cost_models, spmm_strategy="spmm_sharded", retries=3,
            num_threads=2,
        ) as svc:
            futures = []
            for i in range(n):
                plan = FaultPlan.from_string(
                    "spmm:hang_worker:0.5", seed=seed + i
                )
                futures.append(svc.submit(ServeRequest(
                    tenant="hangs", model="gcn", graph=graph, feats=feats,
                )))
                futures.append(svc.submit(ServeRequest(
                    tenant="hangs", model="gcn", graph=graph, feats=feats,
                    fault_plan=plan,
                )))
            results = _gather(futures, violations)
        health = pool_health()
    finally:
        shutdown_pool()
        if old_hb is None:
            os.environ.pop("REPRO_SHARD_HEARTBEAT_S", None)  # lint: allow(env-outside-config)
        else:
            os.environ["REPRO_SHARD_HEARTBEAT_S"] = old_hb  # lint: allow(env-outside-config)
    for r in results:
        if not r.ok and r.outcome not in ("timeout", "error"):
            violations.append(
                f"raw_escape: hangs/{r.request_id}: "
                f"{r.error_type}: {r.error}"
            )
        if r.ok and not np.allclose(
            r.value, reference, rtol=1e-4, atol=1e-6
        ):
            violations.append(
                f"mismatch: hangs/{r.request_id} survived the hang storm "
                f"with a wrong value"
            )
    if not any(r.ok for r in results):
        violations.append(
            "mismatch: no request survived the hang storm — heartbeat "
            "detection never recovered a stopped worker"
        )
    return _record(
        "hang-worker", violations, t0,
        served=sum(1 for r in results if r.ok),
        pool_restarts=int(health.get("restarts", 0)),
        demoted_requests=sum(1 for r in results if r.demotions),
    )


def scenario_shm_exhaustion(graph, feats, reference, cost_models, seed, n):
    """Injected ``/dev/shm`` exhaustion: the sharded call fails with a
    structured error and retries or the fallback ladder finish the
    request in-process — every request terminates with a correct
    value."""
    from ..kernels.sharded import shutdown_pool

    t0 = time.perf_counter()
    violations: List[str] = []
    try:
        with _service(
            cost_models, spmm_strategy="spmm_sharded", retries=2,
            num_threads=2,
        ) as svc:
            futures = []
            for i in range(n):
                plan = FaultPlan.from_string(
                    "spmm:shm_exhaustion:1.0", seed=seed + i
                )
                futures.append(svc.submit(ServeRequest(
                    tenant="noshm", model="gcn", graph=graph, feats=feats,
                    fault_plan=plan,
                )))
            results = _gather(futures, violations)
    finally:
        shutdown_pool()
    for r in results:
        if not r.ok and r.outcome not in ("timeout", "error"):
            violations.append(
                f"raw_escape: noshm/{r.request_id}: "
                f"{r.error_type}: {r.error}"
            )
        if r.ok and not np.allclose(
            r.value, reference, rtol=1e-4, atol=1e-6
        ):
            violations.append(
                f"mismatch: noshm/{r.request_id} survived shm exhaustion "
                f"with a wrong value"
            )
    if not any(r.ok for r in results):
        violations.append(
            "mismatch: no request survived shm exhaustion — the retry "
            "and fallback paths both failed"
        )
    return _record(
        "shm-exhaustion", violations, t0,
        served=sum(1 for r in results if r.ok),
        kernel_retries=sum(r.retries for r in results),
        demoted_requests=sum(1 for r in results if r.demotions),
    )


def scenario_corrupt_snapshot(graph, feats, reference, cost_models, seed, n):
    """A snapshot damaged on disk (the ``corrupt_snapshot`` fault) must
    be quarantined at the next warm start and the service must still
    answer correctly — a damaged file costs a cold rebuild, never a
    crash or a wrong answer."""
    import tempfile

    t0 = time.perf_counter()
    violations: List[str] = []
    quarantined: List[str] = []
    warm_start: Dict[str, object] = {}
    state_dir = tempfile.mkdtemp(prefix="granii-state-chaos-")
    old_env = os.environ.get("REPRO_STATE_DIR")  # lint: allow(env-outside-config)
    os.environ["REPRO_STATE_DIR"] = state_dir  # lint: allow(env-outside-config)
    try:
        with _service(cost_models, state_dir=state_dir) as svc:
            first = svc.serve(ServeRequest(
                tenant="durable", model="gcn", graph=graph, feats=feats,
            ), timeout=GATHER_TIMEOUT_SECONDS)
            if not first.ok:
                violations.append(
                    f"mismatch: durable/{first.request_id} failed before "
                    f"any fault: {first.error}"
                )
            svc.save_state()
            # the fault fires at the next kernel dispatch and truncates
            # one snapshot file mid-write, as a crashed writer would;
            # param 1 indexes the sorted snapshot list at "plan_cache",
            # which every warm start loads regardless of constructor args
            plan = FaultPlan.from_string(
                "*:corrupt_snapshot:1.0:1", seed=seed
            )
            damaged = svc.serve(ServeRequest(
                tenant="durable", model="gcn", graph=graph, feats=feats,
                fault_plan=plan,
            ), timeout=GATHER_TIMEOUT_SECONDS)
            if not damaged.ok:
                violations.append(
                    f"mismatch: the corrupt_snapshot fault broke the "
                    f"*serving* path: {damaged.error}"
                )
        # restart: the corrupted snapshot must quarantine, the rest of
        # the state must load, and the service must still answer
        with _service(cost_models, state_dir=state_dir) as svc2:
            health = svc2.health()
            quarantined = list(health["state_store"]["quarantined"])
            warm_start = dict(svc2.warm_start)
            if not quarantined:
                violations.append(
                    "mismatch: the damaged snapshot was not quarantined "
                    "at warm start"
                )
            result = svc2.serve(ServeRequest(
                tenant="durable", model="gcn", graph=graph, feats=feats,
            ), timeout=GATHER_TIMEOUT_SECONDS)
            if not result.ok:
                violations.append(
                    f"raw_escape: the service failed after quarantining a "
                    f"corrupt snapshot: {result.error_type}: {result.error}"
                )
            elif not np.allclose(
                result.value, reference, rtol=1e-4, atol=1e-6
            ):
                violations.append(
                    "mismatch: post-quarantine answer diverged from the "
                    "baseline"
                )
    finally:
        if old_env is None:
            os.environ.pop("REPRO_STATE_DIR", None)  # lint: allow(env-outside-config)
        else:
            os.environ["REPRO_STATE_DIR"] = old_env  # lint: allow(env-outside-config)
    return _record(
        "corrupt-snapshot", violations, t0,
        quarantined=quarantined, warm_start=warm_start,
    )


def scenario_restart_warm(graph, feats, reference, cost_models, seed, n):
    """The full kill-and-restart round trip: a service process records a
    runtime residual, saves state, and dies by SIGKILL (no cleanup).
    A fresh process must sweep the leaked segments, warm-start from
    ``REPRO_STATE_DIR``, and serve the first repeat request as a
    plan-cache **hit** — same plan, no re-selection, no re-measurement —
    with zero leaked ``/dev/shm`` segments."""
    import subprocess
    import tempfile

    from ..kernels.sharded import SEGMENT_PREFIX, shutdown_pool, sweep_leaked_segments

    t0 = time.perf_counter()
    violations: List[str] = []
    warm: Dict[str, object] = {}
    warm_seconds = -1.0
    result: Optional[ServeResult] = None
    state_dir = tempfile.mkdtemp(prefix="granii-state-restart-")
    nodes = graph.num_nodes
    child_code = (
        "import os, signal\n"
        "import numpy as np\n"
        "from repro.core.costmodel import record_runtime_residual\n"
        "from repro.graphs.generators import erdos_renyi\n"
        "from repro.serving.service import GraniiService, ServeRequest\n"
        f"graph = erdos_renyi({nodes}, avg_degree=6, seed=7)\n"
        f"feats = np.random.default_rng({seed}).standard_normal"
        f"((graph.num_nodes, {IN_SIZE}))\n"
        f"svc = GraniiService(device='cpu', num_threads=2,\n"
        f"    spmm_strategy='spmm_sharded', state_dir={state_dir!r})\n"
        f"svc.register_model('gcn', {IN_SIZE}, {OUT_SIZE})\n"
        "record_runtime_residual('cpu', 'spmm', 2.0, 1.0)\n"
        "r = svc.serve(ServeRequest(tenant='t', model='gcn', graph=graph,"
        " feats=feats))\n"
        "assert r.ok, r.error\n"
        "svc.save_state()\n"
        "print('ready', flush=True)\n"
        "os.kill(os.getpid(), signal.SIGKILL)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", child_code],
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)),  # lint: allow(env-outside-config)
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != -9 or "ready" not in proc.stdout:
        violations.append(
            f"mismatch: the to-be-killed serving process did not reach "
            f"its SIGKILL (rc={proc.returncode}): {proc.stderr[-500:]}"
        )
        return _record("restart-warm", violations, t0)
    sweep_leaked_segments()
    # warm start in THIS process: residuals + cost models + plan cache
    # all come off disk; no cost_models argument on purpose
    t_warm = time.perf_counter()
    try:
        with _service(None, spmm_strategy="spmm_sharded", num_threads=2,
                      state_dir=state_dir) as svc:
            warm = dict(svc.warm_start)
            result = svc.serve(ServeRequest(
                tenant="t", model="gcn", graph=graph, feats=feats,
            ), timeout=GATHER_TIMEOUT_SECONDS)
        warm_seconds = time.perf_counter() - t_warm
        if not bool(warm.get("cost_models")):
            violations.append(
                "mismatch: cost models were not warm-started from disk"
            )
        if int(warm.get("residuals", 0)) < 1:
            violations.append(
                "mismatch: runtime residuals were not warm-started"
            )
        if not result.ok:
            violations.append(
                f"raw_escape: warm-started service failed: "
                f"{result.error_type}: {result.error}"
            )
        else:
            if not result.cache_hit:
                violations.append(
                    "mismatch: the first repeat request after restart "
                    "re-selected instead of hitting the warmed plan cache"
                )
            if not np.allclose(result.value, reference, rtol=1e-4, atol=1e-6):
                violations.append(
                    "mismatch: the warm-started answer diverged from the "
                    "baseline"
                )
    finally:
        shutdown_pool()
    own = f"-{os.getpid()}-"
    leaked = [
        name for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX) and own not in name
    ]
    if leaked:
        violations.append(
            f"mismatch: {len(leaked)} leaked /dev/shm segment(s) survived "
            f"the restart sweep: {leaked[:4]}"
        )
    return _record(
        "restart-warm", violations, t0,
        warm_start=warm,
        warm_first_request_seconds=round(warm_seconds, 3),
        cache_hit=bool(result.cache_hit) if result is not None else False,
    )


def scenario_cache_collision(graph, feats, cost_models, seed, n):
    """Adversarial fingerprinting: every graph hashes to the same cache
    key.  The structural token must catch the collision and each graph
    must still get the answer for *its* structure."""
    t0 = time.perf_counter()
    violations: List[str] = []

    def colliding_fingerprint(g, model_name, in_size, out_size):
        fp = fingerprint_graph(g, model_name, in_size, out_size)
        return type(fp)(key="deadbeef" * 5, token=fp.token)

    other = erdos_renyi(graph.num_nodes // 2, avg_degree=5, seed=seed + 11)
    other_feats = np.random.default_rng(seed).standard_normal(
        (other.num_nodes, IN_SIZE)
    )
    with _service(cost_models, fingerprint_fn=colliding_fingerprint) as svc:
        futures = []
        for i in range(n):
            g, f = (graph, feats) if i % 2 == 0 else (other, other_feats)
            futures.append(svc.submit(ServeRequest(
                tenant="collide", model="gcn", graph=g, feats=f,
            )))
        results = _gather(futures, violations)
        stats = svc.cache.stats()
    ref_a, ref_b = _reference(graph, feats), _reference(other, other_feats)
    for r in results:
        if not r.ok:
            violations.append(
                f"raw_escape: collide/{r.request_id} failed under a mere "
                f"key collision: {r.error_type}: {r.error}"
            )
            continue
        expect = ref_a if r.value.shape[0] == graph.num_nodes else ref_b
        if not np.allclose(r.value, expect, rtol=1e-4, atol=1e-6):
            violations.append(
                f"mismatch: collide/{r.request_id} was served the "
                f"colliding entry's plan (wrong value for its structure)"
            )
    if stats["collisions"] < 1:
        violations.append(
            "mismatch: forced key collisions were never detected by the "
            "structural token"
        )
    return _record(
        "cache-collision", violations, t0,
        collisions=stats["collisions"], hits=stats["hits"],
    )


def scenario_overload(graph, feats, reference, cost_models, seed, n):
    """A burst far past the queue bound: excess requests shed with a
    positive retry-after hint, accepted ones all terminate."""
    t0 = time.perf_counter()
    violations: List[str] = []
    burst = max(4 * n, 12)
    with _service(
        cost_models, num_threads=1, max_queue=2, retries=0,
    ) as svc:
        futures, sheds, hints = [], 0, []
        for i in range(burst):
            plan = FaultPlan.from_string("*:slow:1.0:0.05", seed=seed + i)
            try:
                futures.append(svc.submit(ServeRequest(
                    tenant="burst", model="gcn", graph=graph, feats=feats,
                    fault_plan=plan,
                )))
            except GraniiOverloadError as exc:
                sheds += 1
                hints.append(exc.retry_after_seconds)
                if exc.retry_after_seconds <= 0:
                    violations.append(
                        "mismatch: a shed carried no positive retry-after "
                        "hint"
                    )
        results = _gather(futures, violations)
    if sheds == 0:
        violations.append(
            f"mismatch: a burst of {burst} against a queue bound of 2 "
            f"shed nothing — backpressure is not engaging"
        )
    if not any(r.ok for r in results):
        violations.append(
            "mismatch: the overloaded service served nothing at all"
        )
    return _record(
        "overload", violations, t0,
        burst=burst, accepted=len(futures), shed=sheds,
        served=sum(1 for r in results if r.ok),
        max_retry_hint=round(max(hints), 4) if hints else 0.0,
    )


def scenario_poison_input(graph, feats, cost_models, seed, n):
    """Malformed requests die at admission, on the caller's thread, with
    structured errors — they never occupy a worker."""
    t0 = time.perf_counter()
    violations: List[str] = []
    nan_feats = feats.copy()
    nan_feats[3, 2] = np.nan
    cases: List[Tuple[str, ServeRequest]] = [
        ("nan-features", ServeRequest(
            tenant="bad", model="gcn", graph=graph, feats=nan_feats)),
        ("wrong-width", ServeRequest(
            tenant="bad", model="gcn", graph=graph,
            feats=feats[:, : IN_SIZE // 2].copy())),
        ("unknown-model", ServeRequest(
            tenant="bad", model="resnet50", graph=graph, feats=feats)),
        ("bad-deadline", ServeRequest(
            tenant="bad", model="gcn", graph=graph, feats=feats,
            deadline_seconds=-1.0)),
    ]
    caught = {}
    with _service(cost_models) as svc:
        for name, request in cases:
            try:
                svc.submit(request)
                violations.append(
                    f"mismatch: {name} was admitted instead of rejected"
                )
            except GraniiInputError as exc:
                caught[name] = type(exc).__name__
            except GraniiError as exc:
                caught[name] = type(exc).__name__
            except Exception as exc:  # noqa: BLE001
                violations.append(
                    f"raw_escape: {name} raised unstructured "
                    f"{type(exc).__name__}: {exc}"
                )
        stats = svc.stats()
    if stats["totals"]["completed"] != 0:
        violations.append(
            "mismatch: a malformed request reached a worker thread"
        )
    return _record("poison-input", violations, t0, rejected=caught)


SCENARIOS = (
    "slow-tenant",
    "poison-graph",
    "worker-kill",
    "hang-worker",
    "shm-exhaustion",
    "cache-collision",
    "overload",
    "poison-input",
    "corrupt-snapshot",
    "restart-warm",
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.chaos",
        description=__doc__.split("\n")[0],
    )
    parser.add_argument("--seed", type=int, default=0, help="fault RNG seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced request counts per scenario (CI smoke)",
    )
    parser.add_argument(
        "--scenarios", default="",
        help=f"comma-separated subset of {', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--nodes", type=int, default=200, help="synthetic graph size"
    )
    parser.add_argument("--output", default="", help="write results JSON here")
    args = parser.parse_args(argv)

    wanted = [s for s in args.scenarios.split(",") if s] or list(SCENARIOS)
    unknown = sorted(set(wanted) - set(SCENARIOS))
    if unknown:
        parser.error(f"unknown scenarios: {unknown}; choices: {SCENARIOS}")
    n = 3 if args.quick else 6

    graph = erdos_renyi(args.nodes, avg_degree=6, seed=7)
    feats = np.random.default_rng(args.seed).standard_normal(
        (graph.num_nodes, IN_SIZE)
    )
    cost_models = get_cost_models("cpu")
    reference = _reference(graph, feats)

    runners = {
        "slow-tenant": lambda: scenario_slow_tenant(
            graph, feats, reference, cost_models, args.seed, n),
        "poison-graph": lambda: scenario_poison_graph(
            graph, feats, reference, cost_models, args.seed, n),
        "worker-kill": lambda: scenario_worker_kill(
            graph, feats, reference, cost_models, args.seed, n),
        "hang-worker": lambda: scenario_hang_worker(
            graph, feats, reference, cost_models, args.seed, n),
        "shm-exhaustion": lambda: scenario_shm_exhaustion(
            graph, feats, reference, cost_models, args.seed, n),
        "corrupt-snapshot": lambda: scenario_corrupt_snapshot(
            graph, feats, reference, cost_models, args.seed, n),
        "restart-warm": lambda: scenario_restart_warm(
            graph, feats, reference, cost_models, args.seed, n),
        "cache-collision": lambda: scenario_cache_collision(
            graph, feats, cost_models, args.seed, n),
        "overload": lambda: scenario_overload(
            graph, feats, reference, cost_models, args.seed, n),
        "poison-input": lambda: scenario_poison_input(
            graph, feats, cost_models, args.seed, n),
    }

    results = []
    for name in wanted:
        record = runners[name]()
        results.append(record)
        print(f"{record['scenario']:<16} -> {record['outcome']:<9} "
              f"({record['seconds']}s)")
        for violation in record["violations"]:
            print(f"  VIOLATION: {violation}")

    bad = [r for r in results if r["violations"]]
    print(
        f"\n{len(results)} scenarios: "
        f"{len(results) - len(bad)} ok, {len(bad)} violated"
    )
    if not bad:
        print(
            "serving contract held: no hangs, no raw escapes, tenants "
            "stayed isolated."
        )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
