"""Graph fingerprints: the plan cache's keys and collision guards.

SENSEi's lesson (PAPERS.md) is that input-sensitive selection only pays
when its overhead is amortised across repeat inputs.  The serving
runtime amortises by keying selected plans on a **fingerprint** of the
request's graph: the hash of the featurizer output — the exact vector
the cost models consume, so two graphs with identical features would
receive identical selections anyway — plus the model identity and
embedding sizes that scope the candidate set.

A hash key alone is not a correctness boundary: two *structurally
different* graphs could collide (adversarially, or by featurizer
coarseness), and serving a plan compiled for a weighted adjacency to an
unweighted one (or across different embedding widths) computes the
wrong function.  Each fingerprint therefore also carries a structural
``token`` — a digest of the CSR arrays themselves — which the cache
verifies on every hit; a key match with a token mismatch is treated as
a miss, never a hit (see :class:`repro.serving.cache.PlanCache`).

Edge *values* are deliberately excluded from the token: plan selection
depends on the sparsity pattern and the weighted/unweighted dichotomy,
not on the numbers, so same-structure graphs with different weights
share cached plans (values flow in at execution time via the binding).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.features import featurize_graph

__all__ = ["GraphFingerprint", "fingerprint_graph"]


@dataclass(frozen=True)
class GraphFingerprint:
    """Cache key plus the structural token verified on every hit."""

    key: str  # featurizer-output hash: what the cache indexes by
    token: str  # CSR-structure digest: what a hit must re-verify


def fingerprint_graph(
    graph, model_name: str, in_size: int, out_size: int, cost_token: str = ""
) -> GraphFingerprint:
    """Fingerprint one (graph, model, sizes) serving request.

    O(N+E): one featurizer pass plus one digest over the CSR arrays —
    orders of magnitude cheaper than the enumeration + selection + static
    analysis a cache hit skips.

    ``cost_token`` versions the *selector*, not the graph: the serving
    runtime passes :func:`repro.core.costmodel.cost_model_token` so plans
    chosen under a cost model the autotuner has since refined are
    recomputed instead of served stale.  A pristine model yields the
    empty token, leaving fingerprints byte-identical to the untuned era.
    """
    adj = graph.adj
    weighted = bool(adj.is_weighted)
    scope = (
        f"|{model_name}|{int(in_size)}|{int(out_size)}|{int(weighted)}"
        + (f"|cm:{cost_token}" if cost_token else "")
    )

    key_digest = hashlib.sha1()
    vec = np.ascontiguousarray(np.asarray(featurize_graph(graph), dtype=np.float64))
    key_digest.update(vec.tobytes())
    key_digest.update(scope.encode())

    token_digest = hashlib.sha1()
    token_digest.update(np.ascontiguousarray(adj.indptr).tobytes())
    token_digest.update(np.ascontiguousarray(adj.indices).tobytes())
    token_digest.update(f"{scope}|{adj.shape[0]}x{adj.shape[1]}".encode())

    return GraphFingerprint(
        key=key_digest.hexdigest(), token=token_digest.hexdigest()
    )
