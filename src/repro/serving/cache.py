"""Fingerprint-keyed plan cache: LRU, single-flight, collision-safe.

The cache sits between the service's admission gate and the selection
engine.  On a hit, a request reuses the cached selection and skips
enumeration, cost-model pricing, and static analysis entirely; on a
miss, exactly **one** thread computes the selection while every other
request for the same key waits on its result (single-flight), so a
burst of first-time requests for one graph cannot stampede the
selector.

Correctness properties:

- a hit requires both the key *and* the structural token to match; a
  key collision between structurally different graphs is counted,
  reported, and served by an uncached recompute — never by the wrong
  plan (see :mod:`repro.serving.fingerprint`);
- eviction is capacity-bounded LRU and never invalidates in-flight
  requests: entries are immutable once published, so a request holding
  an evicted entry keeps executing its plan safely while new requests
  recompute.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["CacheEntry", "PlanCache"]

# How long one waiter sleeps on a leader's in-flight computation before
# re-checking; a leader that dies always signals its event from a
# finally block, so this is a liveness backstop, not the exit path.
_WAIT_SLICE_SECONDS = 5.0


@dataclass(frozen=True)
class CacheEntry:
    """One published cache line; immutable after insertion."""

    key: str
    token: str
    payload: object  # the selector's SelectionReport template


class PlanCache:
    """Capacity-bounded LRU keyed by graph fingerprint, with per-key
    single-flight locking around the compute path."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._inflight: Dict[str, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._collisions = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, key: str, token: str) -> Optional[CacheEntry]:
        """Non-computing probe (used by tests and stats endpoints)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.token == token:
                return entry
            return None

    def get_or_compute(
        self, key: str, token: str, compute: Callable[[], object]
    ) -> Tuple[object, bool]:
        """Return ``(payload, hit)`` for this fingerprint.

        Exactly one caller computes a missing key; concurrent callers
        for the same key block until the leader publishes (or fails, in
        which case one waiter is promoted to leader).  A key hit whose
        token mismatches is a **collision**: the payload is recomputed
        for this request and the call is a miss — the existing entry is
        left in place for the graph that legitimately owns the key.
        """
        while True:
            event: Optional[threading.Event] = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    if entry.token == token:
                        self._entries.move_to_end(key)
                        self._hits += 1
                        return entry.payload, True
                    # same key, different structure: never serve this plan
                    self._collisions += 1
                    self._misses += 1
                    collision = True
                else:
                    collision = False
                    event = self._inflight.get(key)
                    if event is None:
                        self._inflight[key] = threading.Event()
            if collision:
                return compute(), False
            if event is not None:
                event.wait(_WAIT_SLICE_SECONDS)
                continue
            # leader: compute outside the lock, publish, wake waiters
            try:
                payload = compute()
            except BaseException:
                with self._lock:
                    stale = self._inflight.pop(key, None)
                if stale is not None:
                    stale.set()  # a waiter re-checks and takes over
                raise
            with self._lock:
                self._misses += 1
                self._entries[key] = CacheEntry(key, token, payload)
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                done = self._inflight.pop(key, None)
            if done is not None:
                done.set()
            return payload, False

    # ------------------------------------------------------------------
    # Durable-state support
    # ------------------------------------------------------------------
    def export_entries(self) -> list:
        """Published entries in LRU order (oldest first) as
        ``(key, token, payload)`` triples — the warm-start snapshot."""
        with self._lock:
            return [
                (e.key, e.token, e.payload) for e in self._entries.values()
            ]

    def seed(self, entries) -> int:
        """Pre-publish ``(key, token, payload)`` triples (warm start).

        Existing keys are left alone — live state beats a snapshot.
        Insertion preserves the given order under the LRU bound, so when
        a snapshot exceeds capacity the *newest* entries survive.
        Returns the count inserted.
        """
        inserted = 0
        with self._lock:
            for key, token, payload in entries:
                if key in self._entries:
                    continue
                self._entries[key] = CacheEntry(key, token, payload)
                inserted += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return inserted

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": float(self.capacity),
                "size": float(len(self._entries)),
                "hits": float(self._hits),
                "misses": float(self._misses),
                "collisions": float(self._collisions),
                "evictions": float(self._evictions),
                "hit_rate": self._hits / total if total else 0.0,
            }
