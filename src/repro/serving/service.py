"""Multi-tenant ``GraniiService``: a fault-tolerant plan-serving runtime.

This is ROADMAP item 2 — the production story for serving selected
plans to many concurrent callers.  One service hosts a set of
registered models and accepts :class:`ServeRequest`\\ s from named
*tenants*; each request is admitted, planned (or served from the
fingerprint-keyed plan cache), and executed through the guarded
runtime.  The failure-handling stack, outermost first:

1. **Admission gate** (caller thread, before anything queues):
   unknown models and malformed inputs are rejected with
   :class:`~repro.errors.GraniiInputError` via the same
   :func:`~repro.core.guard.validate_inputs` the engine uses, and
   oversized requests with :class:`~repro.errors.GraniiMemoryError`
   against the :class:`~repro.core.guard.ExecutionBudget` memory knob.
2. **Backpressure**: each tenant holds a bounded count of
   queued+running requests (``REPRO_SERVE_MAX_QUEUE``); past the bound
   the request is *shed* with a structured
   :class:`~repro.errors.GraniiOverloadError` carrying a retry-after
   hint derived from the tenant's queue depth and recent latency —
   the service never queues unboundedly.
3. **Plan cache** (:class:`~repro.serving.cache.PlanCache`): repeat
   graphs skip enumeration/selection/static-analysis via a
   featurizer-hash fingerprint, with single-flight stampede protection
   and structural-token collision detection.
4. **Per-tenant isolation**: every tenant gets its own
   :class:`~repro.core.runtime.GraniiEngine` (hence its own
   per-(primitive, strategy) circuit breakers), and a tenant-level
   breaker demotes a tenant whose requests keep failing to the
   reference message-passing path — one tenant's pathological graphs
   never trip another tenant's strategies.
5. **Retry/backoff**: transient sharded-pool failures
   (:class:`~repro.kernels.sharded.ShardedWorkerError` — a worker
   SIGKILLed mid-request) are retried at the kernel-dispatch seam with
   bounded, jittered exponential backoff (``REPRO_SERVE_RETRIES``)
   before the fallback ladder ever sees them; the pool rebuilds itself
   between attempts.
6. **Deadlines**: a request deadline (per request or
   ``REPRO_SERVE_DEADLINE_MS``) is propagated into every rung's kernel
   budget via ``SelectionReport.deadline_at``, so a slow tenant's
   requests time out with a structured error instead of occupying a
   worker forever.

Every request terminates in a :class:`ServeResult` — a value, a value
with recorded demotions, or a structured error with the attempt chain
attached.  Raw exceptions never escape a worker thread.

Request-scoped chaos: a :class:`~repro.faults.FaultPlan` attached to a
request is installed **thread-locally** for exactly that request's
execution, so the chaos driver can poison one tenant's kernels while
another tenant's requests run clean on sibling threads
(``python -m repro.serving.chaos``).
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..core.guard import (
    CircuitBreaker,
    ExecutionBudget,
    validate_inputs,
    value_nbytes,
)
from ..core.runtime import GraniiEngine, SelectionReport
from ..errors import (
    GraniiDeadlineError,
    GraniiError,
    GraniiInputError,
    GraniiMemoryError,
    GraniiOverloadError,
)
from ..faults import FaultPlan, fault_injection
from ..kernels.registry import kernel_wrapper
from ..kernels.sharded import (
    ShardedWorkerError,
    drain_pool,
    pool_health,
    release_segments,
)
from ..models import build_layer
from ..state import StateStore
from .cache import PlanCache
from .fingerprint import fingerprint_graph

__all__ = [
    "GraniiService",
    "ModelSpec",
    "ServeRequest",
    "ServeResult",
    "TenantState",
]

_RETRY_BASE_SECONDS = 0.05
_RETRY_MAX_SECONDS = 1.0


@dataclass(frozen=True)
class ModelSpec:
    """One model the service hosts; ``factory`` yields a fresh layer with
    the served weights (layers are per-request: executor attachment
    mutates the layer, and requests must not share that state)."""

    name: str  # the name requests address
    model: str  # zoo model type ("gcn", "gat", ...)
    in_size: int
    out_size: int
    factory: Callable[[], object]


@dataclass
class ServeRequest:
    """One inference request from one tenant."""

    tenant: str
    model: str
    graph: object
    feats: np.ndarray
    request_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    # None -> the service default (REPRO_SERVE_DEADLINE_MS); 0/negative
    # is rejected at admission
    deadline_seconds: Optional[float] = None
    # request-scoped chaos: installed thread-locally around execution
    fault_plan: Optional[FaultPlan] = None


@dataclass
class ServeResult:
    """How one admitted request terminated.  ``ok`` outcomes: ``ok``
    (plan, no demotions), ``ok_demoted`` (correct via the ladder),
    ``reference`` (tenant-breaker demotion to the baseline path).
    Error outcomes: ``timeout``, ``error``, ``raw_escape``."""

    request_id: str
    tenant: str
    model: str
    ok: bool
    outcome: str
    value: Optional[np.ndarray] = None
    cache_hit: bool = False
    retries: int = 0
    attempts: List[Tuple[str, str, str]] = field(default_factory=list)
    demotions: List[str] = field(default_factory=list)
    error: str = ""
    error_type: str = ""
    queue_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class TenantState:
    """Per-tenant bookkeeping: the isolated engine plus queue/latency
    accounting that drives backpressure and retry-after hints."""

    name: str
    engine: GraniiEngine
    inflight: int = 0
    submitted: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    demoted_requests: int = 0
    reference_served: int = 0
    breaker_trips: int = 0
    ema_latency_seconds: float = 0.05

    def snapshot(self) -> Dict[str, float]:
        return {
            "inflight": float(self.inflight),
            "submitted": float(self.submitted),
            "served": float(self.served),
            "failed": float(self.failed),
            "shed": float(self.shed),
            "demoted_requests": float(self.demoted_requests),
            "reference_served": float(self.reference_served),
            "breaker_trips": float(self.breaker_trips),
            "ema_latency_seconds": float(self.ema_latency_seconds),
        }


def _sharded_retry_wrapper(
    retries: int,
    deadline_at: Optional[float],
    attempts: List[Tuple[str, str, str]],
    state: Dict[str, int],
):
    """Kernel wrapper retrying sharded-pool failures with jittered
    exponential backoff.  Installed thread-locally per request, so it
    sits *outside* the faulted dispatch but *inside* the guard: a
    transient worker death is absorbed here (the pool rebuilds lazily
    between attempts) and the fallback ladder only sees failures that
    out-lasted every retry."""

    def wrapper(primitive: str, next_call, tag: str):
        delay = _RETRY_BASE_SECONDS
        attempt = 0
        while True:
            try:
                return next_call()
            except ShardedWorkerError as exc:
                attempt += 1
                if attempt > retries:
                    raise
                if (
                    deadline_at is not None
                    and time.monotonic() + delay >= deadline_at
                ):
                    raise  # no budget left to back off and try again
                state["count"] += 1
                attempts.append(
                    (f"{primitive}@spmm_sharded", "retry", repr(exc))
                )
                time.sleep(delay * (0.5 + random.random()))
                delay = min(delay * 2.0, _RETRY_MAX_SECONDS)

    return wrapper


class GraniiService:
    """Thread-pool plan-serving runtime; see the module docstring.

    The constructor reads its defaults from the ``REPRO_SERVE_*`` /
    ``REPRO_PLAN_CACHE_SIZE`` knobs; explicit arguments win.  Use as a
    context manager, or call :meth:`close` to drain.
    """

    def __init__(
        self,
        device: str = "cpu",
        system: str = "dgl",
        scale: str = "default",
        cost_models=None,
        spmm_strategy: str = "auto",
        num_threads: int = 4,
        max_queue: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        retries: Optional[int] = None,
        plan_cache_size: Optional[int] = None,
        verify_plans: bool = False,
        tenant_breaker_threshold: Optional[int] = None,
        tenant_breaker_cooldown: Optional[float] = None,
        fingerprint_fn=None,
        state_dir: Optional[str] = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self._device = device
        self._system = system
        self._scale = scale
        self._cost_models = cost_models
        self._spmm_strategy = spmm_strategy
        self._verify_plans = bool(verify_plans)
        self._num_threads = int(num_threads)
        self._max_queue = (
            int(max_queue) if max_queue is not None else config.serve_max_queue()
        )
        if self._max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._deadline_seconds = (
            deadline_seconds
            if deadline_seconds is not None
            else config.serve_deadline_seconds()
        )
        self._retries = (
            int(retries) if retries is not None else config.serve_retries()
        )
        self._cache = PlanCache(
            plan_cache_size
            if plan_cache_size is not None
            else config.plan_cache_size()
        )
        # Durable state: with a state dir (argument or REPRO_STATE_DIR),
        # warm-start residuals, cost models, and plan-cache entries saved
        # by a previous process — BEFORE the selector is built and before
        # any fingerprint is computed, because fingerprint keys fold in
        # the cost-model residual token and the selector would otherwise
        # retrain models we already have on disk.
        resolved_state_dir = (
            state_dir if state_dir is not None else config.state_dir()
        )
        self._store: Optional[StateStore] = (
            StateStore(resolved_state_dir) if resolved_state_dir else None
        )
        self.warm_start: Dict[str, object] = {}
        if self._store is not None:
            self.warm_start = self._restore_state()
        if fingerprint_fn is None:
            # default fingerprints fold in the cost-model version token:
            # an autotune refinement that can change strategy selection
            # advances the token, so entries selected under the stale
            # model recompute instead of serving stale choices — while
            # refinements outside the strategy-pricing scope leave every
            # fingerprint (and cached entry) untouched
            def fingerprint_fn(graph, model_name, in_size, out_size):
                from ..core.costmodel import cost_model_token

                return fingerprint_graph(
                    graph, model_name, in_size, out_size,
                    cost_token=cost_model_token(self._device),
                )

        self._fingerprint_fn = fingerprint_fn
        # the selection engine is shared (its outputs are immutable plan
        # templates); computes are serialized under _select_lock so the
        # engine never races itself on a multi-key miss burst
        self._selector = GraniiEngine(
            device=device,
            system=system,
            scale=scale,
            cost_models=self._cost_models,
            spmm_strategy=spmm_strategy,
            verify_plans=False,
            guarded=False,
        )
        self._select_lock = threading.Lock()
        self._tenant_breaker = CircuitBreaker(
            threshold=tenant_breaker_threshold,
            cooldown_seconds=tenant_breaker_cooldown,
        )
        self._models: Dict[str, ModelSpec] = {}
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._completed = 0
        self._shed = 0
        self._rejected = 0
        self._pool = ThreadPoolExecutor(
            max_workers=self._num_threads, thread_name_prefix="granii-serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop admitting; optionally wait for in-flight requests."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def shutdown(self, save: bool = True) -> None:
        """Graceful full stop, in dependency order: drain the request
        threads, persist durable state (if configured), quiesce the
        sharded worker pool, and only then release shared-memory
        segments — so an in-flight shard can never observe an unlinked
        segment."""
        self.close(wait=True)
        if save and self._store is not None:
            try:
                self.save_state()
            except Exception:
                # shutdown must complete even if the disk is gone
                import logging

                logging.getLogger(__name__).warning(
                    "state save failed during shutdown", exc_info=True
                )
        drain_pool()
        release_segments()

    def __enter__(self) -> "GraniiService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def _restore_state(self) -> Dict[str, object]:
        """Warm-start from the state store; every snapshot is optional
        and a corrupt one costs a cold rebuild, never a crash.

        Residuals land first: plan-cache fingerprints embed the
        cost-model residual token, so seeded entries only hit if the
        residual state they were selected under is live again.
        """
        from ..core.costmodel import import_runtime_residuals

        summary: Dict[str, object] = {
            "residuals": 0,
            "cost_models": False,
            "plan_cache": 0,
        }
        residuals = self._store.load("residuals")
        if isinstance(residuals, dict):
            summary["residuals"] = import_runtime_residuals(residuals)
        if self._cost_models is None:
            payload = self._store.load("cost_models")
            if isinstance(payload, dict):
                try:
                    from ..core.costmodel import CostModelSet
                    from ..learn import GradientBoostedTrees

                    self._cost_models = CostModelSet(
                        payload["device"],
                        {
                            name: GradientBoostedTrees.from_dict(data)
                            for name, data in payload["models"].items()
                        },
                    )
                    summary["cost_models"] = True
                except Exception:
                    import logging

                    logging.getLogger(__name__).warning(
                        "cost-model snapshot unusable; training cold",
                        exc_info=True,
                    )
        entries = self._store.load("plan_cache")
        if isinstance(entries, list):
            try:
                summary["plan_cache"] = self._cache.seed(
                    (key, token, payload) for key, token, payload in entries
                )
            except Exception:
                import logging

                logging.getLogger(__name__).warning(
                    "plan-cache snapshot unusable; starting cold",
                    exc_info=True,
                )
        return summary

    def save_state(self) -> Dict[str, str]:
        """Atomically snapshot residuals, cost models, and the plan
        cache to the state store; returns snapshot name -> path.

        Requires a state directory (``state_dir=`` or
        ``REPRO_STATE_DIR``).
        """
        if self._store is None:
            raise RuntimeError(
                "no state directory configured; pass state_dir= or set "
                "REPRO_STATE_DIR"
            )
        from ..core.costmodel import export_runtime_residuals

        paths = {
            "residuals": self._store.save(
                "residuals", export_runtime_residuals()
            ),
            "plan_cache": self._store.save(
                "plan_cache", self._cache.export_entries()
            ),
        }
        # only persist models that exist: never *train* during shutdown
        models = self._cost_models or self._selector._cost_models
        if models is not None:
            paths["cost_models"] = self._store.save(
                "cost_models",
                {
                    "device": models.device_name,
                    "models": {
                        name: m.to_dict()
                        for name, m in models._models.items()
                    },
                },
            )
        return paths

    def health(self) -> Dict[str, object]:
        """Readiness probe: admission state, sharded-pool liveness,
        tenant breaker states, and state-store status — cheap enough to
        poll, and it never takes the pool lock."""
        with self._lock:
            closed = self._closed
            tenants = len(self._tenants)
            models = sorted(self._models)
        pool = pool_health()
        ready = (not closed) and not bool(pool.get("broken"))
        return {
            "ready": ready,
            "closed": closed,
            "models": models,
            "tenants": tenants,
            "pool": pool,
            "tenant_breakers": self._tenant_breaker.snapshot(),
            "state_store": (
                self._store.status() if self._store is not None else None
            ),
            "warm_start": dict(self.warm_start),
        }

    # ------------------------------------------------------------------
    # Model registry
    # ------------------------------------------------------------------
    def register_model(
        self,
        name: str,
        in_size: int,
        out_size: int,
        model: Optional[str] = None,
        factory: Optional[Callable[[], object]] = None,
        seed: int = 0,
    ) -> ModelSpec:
        """Host one model.  Without ``factory``, a zoo layer with
        deterministic weights (``seed``) is built per request."""
        model = (model or name).lower()
        if factory is None:
            def factory(  # noqa: A001 - deliberate closure default
                _model=model, _in=in_size, _out=out_size, _seed=seed
            ):
                return build_layer(
                    _model, _in, _out, rng=np.random.default_rng(_seed)
                )
        spec = ModelSpec(
            name=name,
            model=model,
            in_size=int(in_size),
            out_size=int(out_size),
            factory=factory,
        )
        with self._lock:
            self._models[name] = spec
        return spec

    # ------------------------------------------------------------------
    # Admission + submission
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> TenantState:
        """Find-or-create under the service lock (callers hold it)."""
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(
                name=name,
                engine=GraniiEngine(
                    device=self._device,
                    system=self._system,
                    scale=self._scale,
                    cost_models=self._cost_models,
                    spmm_strategy=self._spmm_strategy,
                    verify_plans=self._verify_plans,
                    guarded=True,
                    breakers=CircuitBreaker(),
                ),
            )
            self._tenants[name] = state
        return state

    def _retry_after_hint(self, tenant: TenantState, depth: int) -> float:
        """When this tenant's queue should have drained one slot."""
        per_slot = tenant.ema_latency_seconds / max(self._num_threads, 1)
        return max(0.05, (depth - self._max_queue + 1) * per_slot)

    def _admit(self, request: ServeRequest, spec: ModelSpec) -> None:
        """Pre-queue admission: structure, dtype, and size — every check
        the engine's own gate would apply, paid once on the caller's
        thread so a malformed request never occupies a worker."""
        if (
            request.deadline_seconds is not None
            and request.deadline_seconds <= 0
        ):
            raise GraniiInputError(
                f"request deadline must be positive, got "
                f"{request.deadline_seconds!r}"
            )
        validate_inputs(spec, request.graph, request.feats)
        budget = ExecutionBudget.for_plan()
        if budget.memory_budget_bytes is not None:
            observed = value_nbytes(
                np.asarray(request.feats)
            ) + value_nbytes(request.graph.adj)
            if observed > budget.memory_budget_bytes:
                raise GraniiMemoryError(
                    f"request carries {observed / 2**20:.1f} MiB of "
                    f"graph+features, over the "
                    f"{budget.memory_budget_bytes / 2**20:.1f} MiB budget "
                    f"(REPRO_MEM_BUDGET_MB)",
                    budget=budget.memory_budget_bytes,
                    observed=observed,
                )

    def submit(self, request: ServeRequest) -> "Future[ServeResult]":
        """Admit one request; returns a future resolving to a
        :class:`ServeResult` (the future itself never raises).

        Raises, on the caller's thread: ``GraniiInputError`` /
        ``GraniiMemoryError`` for malformed or oversized requests,
        ``GraniiOverloadError`` when the tenant's queue is full or the
        service is closed.
        """
        t_submit = time.monotonic()
        with self._lock:
            if self._closed:
                raise GraniiOverloadError(
                    "service is closed and not admitting requests",
                    retry_after_seconds=0.0,
                    tenant=request.tenant,
                )
            spec = self._models.get(request.model)
        if spec is None:
            with self._lock:
                self._rejected += 1
            raise GraniiInputError(
                f"unknown model {request.model!r}; registered: "
                f"{sorted(self._models)}"
            )
        try:
            self._admit(request, spec)
        except GraniiError:
            with self._lock:
                self._rejected += 1
            raise
        with self._lock:
            tenant = self._tenant(request.tenant)
            depth = tenant.inflight
            if depth >= self._max_queue:
                tenant.shed += 1
                self._shed += 1
                hint = self._retry_after_hint(tenant, depth)
                raise GraniiOverloadError(
                    f"tenant {tenant.name!r} has {depth} requests in "
                    f"flight (bound {self._max_queue}, "
                    f"REPRO_SERVE_MAX_QUEUE); shedding — retry in "
                    f"~{hint * 1e3:.0f} ms",
                    retry_after_seconds=hint,
                    tenant=tenant.name,
                    depth=depth,
                )
            tenant.inflight += 1
            tenant.submitted += 1
        try:
            return self._pool.submit(
                self._process, request, spec, tenant, t_submit
            )
        except BaseException:
            with self._lock:
                tenant.inflight -= 1
            raise

    def serve(self, request: ServeRequest, timeout: Optional[float] = None) -> ServeResult:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(request).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    @contextmanager
    def _request_scope(self, request: ServeRequest):
        """Install the request's fault plan thread-locally, if any."""
        if request.fault_plan is None:
            yield
        else:
            with fault_injection(request.fault_plan, thread_local=True):
                yield

    def _cached_selection(
        self, request: ServeRequest, spec: ModelSpec
    ) -> Tuple[SelectionReport, bool]:
        """Fingerprint-keyed selection: hit skips enumeration+selection."""
        fp = self._fingerprint_fn(
            request.graph, spec.model, spec.in_size, spec.out_size
        )

        def compute() -> SelectionReport:
            with self._select_lock:
                layer = spec.factory()
                compiled = self._selector.compile_for(layer, request.graph)
                return self._selector.select(compiled, request.graph, layer)

        return self._cache.get_or_compute(fp.key, fp.token, compute)

    def _request_selection(
        self, template: SelectionReport, deadline_at: Optional[float]
    ) -> SelectionReport:
        """A per-request report sharing the template's immutable plan
        data; demotions/verification land on the request, not the cache."""
        return SelectionReport(
            model_name=template.model_name,
            chosen=template.chosen,
            scenario=template.scenario,
            predicted_costs=dict(template.predicted_costs),
            viable_count=template.viable_count,
            feature_seconds=0.0,
            selection_seconds=0.0,
            peak_memory_bytes=template.peak_memory_bytes,
            spmm_strategy=template.spmm_strategy,
            strategy_costs=dict(template.strategy_costs),
            ranked=list(template.ranked),
            analysis=template.analysis,
            deadline_at=deadline_at,
        )

    def _reference_value(self, spec: ModelSpec, request: ServeRequest) -> np.ndarray:
        """The baseline message-passing forward (no executor attached)."""
        layer = spec.factory()
        out = layer(request.graph, request.feats)
        return np.asarray(getattr(out, "data", out))

    def _process(
        self,
        request: ServeRequest,
        spec: ModelSpec,
        tenant: TenantState,
        t_submit: float,
    ) -> ServeResult:
        started = time.monotonic()
        deadline = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self._deadline_seconds
        )
        deadline_at = t_submit + deadline if deadline else None
        result = ServeResult(
            request_id=request.request_id,
            tenant=request.tenant,
            model=request.model,
            ok=False,
            outcome="error",
            queue_seconds=started - t_submit,
        )
        retry_state = {"count": 0}
        selection: Optional[SelectionReport] = None
        try:
            if deadline_at is not None and started >= deadline_at:
                raise GraniiDeadlineError(
                    f"request spent its whole {deadline * 1e3:.0f} ms "
                    f"deadline queued ({(started - t_submit) * 1e3:.0f} ms "
                    f"before a worker picked it up)",
                    budget=deadline,
                    observed=started - t_submit,
                )
            with self._request_scope(request):
                if self._tenant_breaker.is_open("tenant", request.tenant):
                    # this tenant's recent requests kept failing: serve
                    # the safe baseline path until the cooldown elapses
                    result.attempts.append(
                        ("tenant-breaker", "breaker_open",
                         "tenant demoted to the reference path")
                    )
                    result.value = self._reference_value(spec, request)
                    result.outcome = "reference"
                    result.ok = True
                else:
                    entry, hit = self._cached_selection(request, spec)
                    result.cache_hit = hit
                    selection = self._request_selection(entry, deadline_at)
                    layer = spec.factory()
                    executor = tenant.engine.make_executor(
                        layer,
                        selection.chosen,
                        selection.spmm_strategy,
                        selection=selection,
                        guarded=True,
                    )
                    layer.attach_executor(executor)
                    retry = _sharded_retry_wrapper(
                        self._retries, deadline_at,
                        result.attempts, retry_state,
                    )
                    with kernel_wrapper(retry, thread_local=True):
                        out = layer(request.graph, request.feats)
                    result.value = np.asarray(getattr(out, "data", out))
                    result.outcome = (
                        "ok_demoted" if selection.demotions else "ok"
                    )
                    result.ok = True
        except GraniiError as exc:
            result.ok = False
            result.outcome = (
                "timeout" if isinstance(exc, GraniiDeadlineError) else "error"
            )
            result.error = str(exc)
            result.error_type = type(exc).__name__
            result.attempts.extend(getattr(exc, "attempts", []) or [])
        except Exception as exc:  # noqa: BLE001 - the contract bucket:
            # a raw escape is a bug, but the service must stay up and
            # the caller must still get a terminal, inspectable result
            result.ok = False
            result.outcome = "raw_escape"
            result.error = str(exc)
            result.error_type = type(exc).__name__
        finally:
            if selection is not None:
                result.demotions = [
                    d.describe() for d in selection.demotions
                ]
            result.retries = retry_state["count"]
            result.total_seconds = time.monotonic() - t_submit
            self._finish(tenant, result)
        return result

    def _finish(self, tenant: TenantState, result: ServeResult) -> None:
        """Post-request accounting + tenant breaker bookkeeping."""
        failed_for_tenant = (not result.ok) and result.outcome != "timeout"
        demoted = bool(result.demotions)
        with self._lock:
            tenant.inflight -= 1
            self._completed += 1
            tenant.ema_latency_seconds = (
                0.8 * tenant.ema_latency_seconds + 0.2 * result.total_seconds
            )
            if result.ok:
                tenant.served += 1
                if result.outcome == "reference":
                    tenant.reference_served += 1
                if demoted:
                    tenant.demoted_requests += 1
            else:
                tenant.failed += 1
        # breaker mutation outside the service lock (it has its own):
        # demotions and failures are the tenant-health signal; timeouts
        # under an aggressive caller deadline are not the tenant's plans
        # misbehaving, and input errors never reach this path
        if failed_for_tenant or demoted:
            if self._tenant_breaker.record_failure("tenant", tenant.name):
                with self._lock:
                    tenant.breaker_trips += 1
        elif result.ok and result.outcome == "ok":
            self._tenant_breaker.record_success("tenant", tenant.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            tenants = {
                name: state.snapshot()
                for name, state in sorted(self._tenants.items())
            }
            totals = {
                "completed": float(self._completed),
                "shed": float(self._shed),
                "rejected": float(self._rejected),
                "inflight": float(
                    sum(s.inflight for s in self._tenants.values())
                ),
            }
        return {
            "totals": totals,
            "tenants": tenants,
            "cache": self._cache.stats(),
            "tenant_breakers": self._tenant_breaker.snapshot(),
        }

    @property
    def cache(self) -> PlanCache:
        return self._cache
