"""Beyond-paper models: GraphSAGE and APPNP across the evaluation grid.

The paper demonstrates generalizability with TAGCN and SGC (§VI-B); this
supplementary table extends the same evidence to two further model
families GRANII was never tuned for — GraphSAGE's two-branch update and
APPNP's teleport propagation — using exactly the same offline/online
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .common import geomean
from .report import format_speedup, render_table
from .sweep import SweepResult, run_sweep, sweep_workloads

__all__ = ["ExtraModels", "run", "EXTRA_MODELS"]

EXTRA_MODELS: Tuple[str, ...] = ("sage", "appnp")


@dataclass
class ExtraModels:
    sweep: SweepResult

    def geomean_for(self, model: str, **attrs) -> float:
        return self.sweep.geomean_speedup(model=model, **attrs)

    def render(self) -> str:
        body = []
        for model in EXTRA_MODELS:
            for system, device in (("wisegraph", "a100"), ("dgl", "h100"), ("dgl", "cpu")):
                body.append(
                    [
                        model.upper(), system, device,
                        format_speedup(
                            self.geomean_for(model, system=system, device=device)
                        ),
                        format_speedup(
                            self.sweep.geomean_optimal_speedup(
                                model=model, system=system, device=device
                            )
                        ),
                    ]
                )
        return render_table(
            ["Model", "System", "HW", "GRANII", "Optimal"],
            body,
            title="Beyond-paper models: GraphSAGE and APPNP (inference geomeans)",
        )


def run(scale: str = "default", iterations: int = 100) -> ExtraModels:
    workloads = sweep_workloads(
        models=EXTRA_MODELS,
        grid=(("wisegraph", "a100"), ("dgl", "h100"), ("dgl", "cpu")),
        modes=("inference",),
        scale=scale,
        iterations=iterations,
    )
    return ExtraModels(run_sweep(workloads))
