"""GRANII's decision overheads (§VI-C1 'Overheads').

Two views, matching the paper's accounting:

- the *simulated on-device* overhead (feature extraction passes plus
  cost-model evaluations) expressed in absolute time and as a multiple of
  one GNN iteration on each device;
- the *actual wall-clock* overhead of this implementation's featurizer
  and selection (host Python), as measured by the runtime engine.

Both are one-time costs per input graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import GraniiEngine, compile_model, select_default_plan
from ..core.features import featurize_graph
from ..framework import get_system
from ..graphs import EVALUATION_CODES, load
from ..hardware import DEVICE_NAMES, GraphStats, get_device
from .common import measured_plan_time, overhead_seconds, shape_env_for
from .report import render_table

__all__ = ["Overheads", "run"]


@dataclass
class Overheads:
    rows: List[Dict]

    def render(self) -> str:
        body = [
            [r["graph"], r["device"], f"{1e3 * r['overhead_s']:.3f}",
             f"{r['iterations_equivalent']:.2f}",
             f"{1e3 * r['wallclock_s']:.1f}"]
            for r in self.rows
        ]
        return render_table(
            ["Graph", "HW", "Overhead (ms, simulated)", "x one iteration",
             "Wall-clock (ms, this impl.)"],
            body,
            title="Decision overheads (one-time per graph)",
        )

    def max_iterations_equivalent(self, device: str) -> float:
        return max(
            r["iterations_equivalent"] for r in self.rows if r["device"] == device
        )


def run(scale: str = "default", in_size: int = 256, out_size: int = 256) -> Overheads:
    rows: List[Dict] = []
    compiled = compile_model("gcn")
    system = get_system("dgl")
    for code in EVALUATION_CODES:
        graph = load(code, scale)
        stats = GraphStats.from_graph(graph)
        env = shape_env_for(graph, "gcn", in_size, out_size)
        # wall-clock of this implementation's featurizer + selection
        t0 = time.perf_counter()
        graph_vec = featurize_graph(graph)
        wall_feature = time.perf_counter() - t0
        engine = GraniiEngine(device="h100", system="dgl", scale=scale)
        viable = compiled.viable(in_size, out_size)
        t1 = time.perf_counter()
        for planned in viable:
            engine.predict_plan_cost(planned.plan, env, graph_vec)
        wall_select = time.perf_counter() - t1
        for device_name in DEVICE_NAMES:
            device = get_device(device_name)
            overhead = overhead_seconds(
                device, stats, graph.num_nodes, env["E"], len(viable)
            )
            default = select_default_plan(compiled, system, in_size, out_size)
            iter_time = measured_plan_time(
                default.plan, env, device, system, stats, count_setup=False
            )
            rows.append(
                {
                    "graph": code,
                    "device": device_name,
                    "overhead_s": overhead,
                    "iterations_equivalent": overhead / iter_time,
                    "wallclock_s": wall_feature + wall_select,
                }
            )
    return Overheads(rows)
