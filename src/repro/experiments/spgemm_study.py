"""SpGEMM extension study: materialise propagation powers, or not?

With ``compile_model("sgc", spgemm=True)`` GRANII may precompute Ñ² as a
one-time SpGEMM and aggregate with a *single* (denser) SpMM per
iteration, instead of chaining two hops.  The trade is sharply
input-dependent:

- on sparse, local graphs (road networks) Ñ² stays sparse → the
  materialised power wins once the setup amortises over iterations;
- on dense power-law graphs Ñ² explodes toward N² → chaining wins at any
  iteration count.

The study evaluates both regimes at several iteration counts, using the
*exact* nnz(Ñ²) (computed by actually running the SpGEMM once) for
ground truth while GRANII decides from its input-oblivious fill
estimate — so estimation error is part of what is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

import numpy as np

from ..core import GraniiEngine, compile_model
from ..core.features import featurize_graph
from ..framework import get_system
from ..graphs import load
from ..graphs.graph import Graph
from ..hardware import GraphStats, get_device
from ..kernels import sampled_power_nnz, spgemm
from ..sparse import CSRMatrix
from .common import Workload, _engine_for, measured_plan_time, shape_env_for
from .report import format_speedup, render_table

__all__ = ["SpgemmStudy", "run", "molecule_batch_graph"]


def molecule_batch_graph(num_molecules: int = 2000, size: int = 8) -> Graph:
    """A batch of small disjoint molecule-like cliques (drug-discovery
    workloads from the paper's §I batch many small graphs into one block-
    diagonal adjacency).  Powers of a disjoint-clique adjacency keep the
    SAME pattern — the regime where materialising Ñ^k is a pure win."""
    n = num_molecules * size
    blocks_i, blocks_j = np.triu_indices(size, k=1)
    offsets = np.repeat(np.arange(num_molecules) * size, blocks_i.shape[0])
    rows = np.concatenate([offsets + np.tile(blocks_i, num_molecules),
                           offsets + np.tile(blocks_j, num_molecules)])
    cols = np.concatenate([offsets + np.tile(blocks_j, num_molecules),
                           offsets + np.tile(blocks_i, num_molecules)])
    adj = CSRMatrix.from_coo(rows, cols, None, (n, n)).unweighted()
    return Graph(adj, name=f"molecule_batch_{num_molecules}x{size}")


@dataclass
class SpgemmStudy:
    rows: List[Dict]

    def render(self) -> str:
        body = [
            [r["graph"], r["iterations"],
             f"{r['fill_ratio']:.1f}x",
             format_speedup(r["materialize_speedup"]),
             r["granii"],
             "yes" if r["granii_correct"] else "no"]
            for r in self.rows
        ]
        return render_table(
            ["Graph", "Iters", "nnz(N^2)/nnz(N)", "materialise speedup",
             "GRANII choice", "correct"],
            body,
            title="SpGEMM extension: materialising SGC's propagation power",
        )

    def cell(self, graph: str, iterations: int) -> Dict:
        return next(
            r for r in self.rows
            if r["graph"] == graph and r["iterations"] == iterations
        )


def run(
    graphs: Tuple[str, ...] = ("MOL", "BL", "RD"),
    iteration_counts: Tuple[int, ...] = (1, 100, 5000),
    device: str = "a100",
    system: str = "dgl",
    scale: str = "default",
) -> SpgemmStudy:
    compiled = compile_model("sgc", spgemm=True, hops=2)
    spgemm_plans = [p for p in compiled.promoted if "spgemm" in p.plan.primitives]
    chain_plans = [p for p in compiled.promoted if "spgemm" not in p.plan.primitives]
    dev, sys_ = get_device(device), get_system(system)
    engine = _engine_for(
        Workload("sgc", "BL", 64, 64, system=system, device=device, scale=scale)
    )
    rows: List[Dict] = []
    for code in graphs:
        if code == "MOL":
            graph = molecule_batch_graph(
                num_molecules=2000 if scale == "default" else 200
            )
        else:
            graph = load(code, scale)
        stats = GraphStats.from_graph(graph)
        adj = graph.adj_with_self_loops()
        exact_sq = spgemm(adj.unweighted(), adj.unweighted())
        graph_vec = featurize_graph(graph)
        for iterations in iteration_counts:
            # ground truth uses the exact fill of the materialised power
            true_env = shape_env_for(graph, "sgc", 64, 64)
            est_env = engine.shape_env(graph, _FakeLayer(64, 64))
            true_env.update(
                {k: v for k, v in est_env.items() if k.startswith("E@")}
            )
            true_env["E@2"] = exact_sq.nnz

            def truth(planned):
                return measured_plan_time(
                    planned.plan, true_env, dev, sys_, stats, iterations=iterations
                )

            best_chain = min(truth(p) for p in chain_plans)
            best_spgemm = min(truth(p) for p in spgemm_plans)
            # GRANII decides from an *inspected* estimate: a 5% row-sample
            # SpGEMM scaled up — cheap, and accurate where the oblivious
            # formula misjudges structured graphs (disjoint cliques)
            est_env["K1"], est_env["K2"] = 64, 64
            est_env["E@2"] = sampled_power_nnz(adj.unweighted(), depth=2)
            engine_iterations = engine.iterations
            engine.iterations = iterations
            try:
                preds = [
                    (
                        engine.predict_plan_cost(p.plan, est_env, graph_vec),
                        "materialise" if "spgemm" in p.plan.primitives else "chain",
                    )
                    for p in compiled.promoted
                ]
            finally:
                engine.iterations = engine_iterations
            granii_choice = min(preds)[1]
            truly_best = "materialise" if best_spgemm < best_chain else "chain"
            rows.append(
                {
                    "graph": code,
                    "iterations": iterations,
                    "fill_ratio": exact_sq.nnz / adj.nnz,
                    "materialize_speedup": best_chain / best_spgemm,
                    "granii": granii_choice,
                    "truly_best": truly_best,
                    "granii_correct": granii_choice == truly_best,
                }
            )
    return SpgemmStudy(rows)


class _FakeLayer:
    """Minimal stand-in giving shape_env the embedding sizes it needs."""

    wants_self_loops = True

    def __init__(self, in_size: int, out_size: int) -> None:
        self.in_size = in_size
        self.out_size = out_size
