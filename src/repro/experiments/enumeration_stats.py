"""Enumeration and pruning statistics (§VI-B).

The paper reports, for GCN / GAT / GIN, the number of compositions found
through re-association and the number removed by offline pruning:
12 & 8, 2 & 0, 8 & 4.  Rule vocabularies differ slightly between any two
implementations, so exact equality is not expected; the structural facts
that must hold are (a) GAT enumerates exactly two compositions with
nothing pruned, and (b) pruning removes a large majority of GCN's (and
the hop-models') trees while keeping both normalization strategies and
both GEMM placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import compile_model
from ..models import MODEL_NAMES
from .common import model_compile_kwargs
from .report import render_table

__all__ = ["EnumerationStats", "run", "PAPER_COUNTS"]

# (enumerated, pruned-away) from §VI-B of the paper
PAPER_COUNTS: Dict[str, Tuple[int, int]] = {
    "gcn": (12, 8),
    "gat": (2, 0),
    "gin": (8, 4),
}


@dataclass
class EnumerationStats:
    rows: List[Dict]

    def render(self) -> str:
        body = []
        for r in self.rows:
            paper = PAPER_COUNTS.get(r["model"])
            body.append(
                [
                    r["model"].upper(),
                    r["enumerated"],
                    r["pruned"],
                    r["promoted"],
                    f"{paper[0]} / {paper[1]}" if paper else "-",
                ]
            )
        return render_table(
            ["Model", "Enumerated", "Pruned", "Promoted", "Paper (enum/pruned)"],
            body,
            title="Enumeration & pruning statistics (§VI-B)",
        )

    def for_model(self, model: str) -> Dict:
        return next(r for r in self.rows if r["model"] == model)


def run() -> EnumerationStats:
    rows: List[Dict] = []
    for model in MODEL_NAMES:
        compiled = compile_model(model, **model_compile_kwargs(model))
        rows.append(
            {
                "model": model,
                "enumerated": compiled.enumerated_count,
                "pruned": compiled.pruned_count,
                "promoted": len(compiled.promoted),
            }
        )
    return EnumerationStats(rows)
