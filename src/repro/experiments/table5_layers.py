"""Table V: GRANII with a varying number of GNN layers (§VI-F).

Per-layer decisions chain; the sparsity of the input graph does not
change across layers, so speedups vs the WiseGraph default stay
consistent as depth grows (the amortised Ñ precomputation is shared by
all layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .multilayer import evaluate_multilayer
from .report import format_speedup, render_table

__all__ = ["Table5", "run"]

LAYER_COUNTS = (1, 2, 3, 4)


@dataclass
class Table5:
    rows: List[Dict]

    def render(self) -> str:
        body = [
            [r["model"].upper(), r["graph"], r["layers"], format_speedup(r["speedup"])]
            for r in self.rows
        ]
        return render_table(
            ["Model", "Graph", "Layers", "Speedup"],
            body,
            title="Table V: GRANII speedup vs WiseGraph with multiple layers",
        )

    def speedups_for(self, model: str, graph: str) -> List[float]:
        return [
            r["speedup"]
            for r in self.rows
            if r["model"] == model and r["graph"] == graph
        ]


def run(
    scale: str = "default",
    models: Tuple[str, ...] = ("gcn", "gat"),
    graphs: Tuple[str, ...] = ("RD", "MC", "BL"),
    feat_dim: int = 128,
    hidden: int = 64,
    device: str = "a100",
) -> Table5:
    rows: List[Dict] = []
    for model in models:
        for graph in graphs:
            for depth in LAYER_COUNTS:
                # depth L: feat -> hidden x L; each extra layer adds an
                # identical (hidden, hidden) layer so depths are comparable
                dims = [feat_dim] + [hidden] * depth
                timing = evaluate_multilayer(
                    model, graph, dims, system="wisegraph", device=device,
                    scale=scale,
                )
                rows.append(
                    {
                        "model": model,
                        "graph": graph,
                        "layers": depth,
                        "speedup": timing.speedup,
                    }
                )
    return Table5(rows)
