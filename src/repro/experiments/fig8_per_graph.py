"""Figure 8: per-graph, per-configuration speedup detail.

The full grid behind Table III — one speedup per (system, device, mode,
model, graph, embedding pair).  The paper plots these as line charts;
here they are emitted as rows (and summarised per graph), preserving the
information content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graphs import EVALUATION_CODES
from ..models import MODEL_NAMES
from .common import geomean
from .report import format_speedup, render_table
from .sweep import SweepResult, full_sweep

__all__ = ["Figure8", "run"]


@dataclass
class Figure8:
    sweep: SweepResult

    def rows(self, **attrs) -> List[Dict]:
        return [
            {
                "model": r.workload.model,
                "graph": r.workload.graph_code,
                "in": r.workload.in_size,
                "out": r.workload.out_size,
                "system": r.workload.system,
                "device": r.workload.device,
                "mode": r.workload.mode,
                "speedup": r.speedup,
                "default": r.default_label,
                "granii": r.granii_label,
            }
            for r in self.sweep.filtered(**attrs)
        ]

    def per_graph_geomeans(self, mode: str = "inference") -> Dict[str, float]:
        return {
            code: geomean(
                [r.speedup for r in self.sweep.filtered(graph_code=code, mode=mode)]
            )
            for code in EVALUATION_CODES
        }

    def render(self, system: str = "dgl", device: str = "h100", mode: str = "inference") -> str:
        from .common import embedding_pairs_for

        blocks = []
        for model in MODEL_NAMES:
            pairs = embedding_pairs_for(model)
            headers = ["Graph"] + [f"({a},{b})" for a, b in pairs]
            body = []
            for code in EVALUATION_CODES:
                cells = {
                    (r.workload.in_size, r.workload.out_size): r
                    for r in self.sweep.filtered(
                        model=model, graph_code=code, system=system,
                        device=device, mode=mode,
                    )
                }
                body.append(
                    [code]
                    + [
                        format_speedup(cells[p].speedup) if p in cells else "-"
                        for p in pairs
                    ]
                )
            blocks.append(
                render_table(
                    headers, body,
                    title=f"Figure 8 — {model.upper()} ({system}/{device}/{mode})",
                )
            )
        return "\n\n".join(blocks)


def run(scale: str = "default") -> Figure8:
    return Figure8(full_sweep(scale))
