"""Table III: geomean speedups across systems, hardware, modes, models.

Reproduces the paper's headline table — per (system, hardware, mode) rows
with per-model geomean speedups of GRANII over the system default, plus
the overall inference/training geomeans (paper: 1.56× / 1.4×).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..models import MODEL_NAMES
from .report import format_speedup, render_table
from .sweep import SYSTEM_DEVICE_GRID, SweepResult, full_sweep

__all__ = ["Table3Row", "Table3", "run"]


@dataclass
class Table3Row:
    system: str
    device: str
    mode: str
    overall: float
    per_model: Dict[str, float]


@dataclass
class Table3:
    rows: List[Table3Row]
    overall_inference: float
    overall_training: float
    per_model_inference: Dict[str, float]
    per_model_training: Dict[str, float]

    def render(self) -> str:
        headers = ["System", "HW", "Mode", "Overall"] + [m.upper() for m in MODEL_NAMES]
        body = []
        for row in self.rows:
            body.append(
                [row.system, row.device, row.mode[0].upper(), format_speedup(row.overall)]
                + [format_speedup(row.per_model[m]) for m in MODEL_NAMES]
            )
        body.append(
            ["Overall", "", "I", format_speedup(self.overall_inference)]
            + [format_speedup(self.per_model_inference[m]) for m in MODEL_NAMES]
        )
        body.append(
            ["Overall", "", "T", format_speedup(self.overall_training)]
            + [format_speedup(self.per_model_training[m]) for m in MODEL_NAMES]
        )
        return render_table(
            headers, body,
            title="Table III: geomean speedups of GRANII (100 iterations)",
        )


def run(scale: str = "default") -> Table3:
    sweep = full_sweep(scale)
    rows: List[Table3Row] = []
    for system, device in SYSTEM_DEVICE_GRID:
        for mode in ("inference", "training"):
            per_model = {
                m: sweep.geomean_speedup(
                    system=system, device=device, mode=mode, model=m
                )
                for m in MODEL_NAMES
            }
            overall = sweep.geomean_speedup(
                system=system, device=device, mode=mode
            )
            rows.append(Table3Row(system, device, mode, overall, per_model))
    return Table3(
        rows=rows,
        overall_inference=sweep.geomean_speedup(mode="inference"),
        overall_training=sweep.geomean_speedup(mode="training"),
        per_model_inference={
            m: sweep.geomean_speedup(mode="inference", model=m) for m in MODEL_NAMES
        },
        per_model_training={
            m: sweep.geomean_speedup(mode="training", model=m) for m in MODEL_NAMES
        },
    )
