"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "format_speedup"]


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
