"""Experiment drivers reproducing every table and figure of the paper.

==================  ==========================================
Paper artifact      Driver module
==================  ==========================================
Figure 1            ``fig1_motivation``
Figure 2            ``fig2_runtime_split``
Figure 3            ``fig3_complexity``
Table III           ``table3_main``
Figure 8            ``fig8_per_graph``
Table IV            ``table4_end_to_end``
Figure 9            ``fig9_sampling``
Table V             ``table5_layers``
Table VI            ``table6_oracles``
§VI-B counts        ``enumeration_stats``
§VI-C1 overheads    ``overheads``
==================  ==========================================

Every driver exposes ``run(...)`` returning a result object with a
``render()`` method; benchmarks wrap the same entry points.
"""

from . import (
    ablations,
    changing_sparsity,
    enumeration_stats,
    extra_models,
    fig1_motivation,
    fig2_runtime_split,
    fig3_complexity,
    fig8_per_graph,
    fig9_sampling,
    fusion,
    overheads,
    spgemm_study,
    table3_main,
    table4_end_to_end,
    table5_layers,
    table6_oracles,
    validation_real,
)
from .common import (
    EMBEDDING_PAIRS,
    GAT_EMBEDDING_PAIRS,
    Workload,
    WorkloadResult,
    embedding_pairs_for,
    evaluate_workload,
    geomean,
    measured_plan_time,
    overhead_seconds,
)
from .multilayer import MultiLayerTiming, evaluate_multilayer
from .report import format_speedup, render_table
from .sweep import SYSTEM_DEVICE_GRID, SweepResult, full_sweep, run_sweep, sweep_workloads

__all__ = [
    "EMBEDDING_PAIRS",
    "ablations",
    "changing_sparsity",
    "extra_models",
    "fusion",
    "spgemm_study",
    "validation_real",
    "GAT_EMBEDDING_PAIRS",
    "MultiLayerTiming",
    "SYSTEM_DEVICE_GRID",
    "SweepResult",
    "Workload",
    "WorkloadResult",
    "embedding_pairs_for",
    "enumeration_stats",
    "evaluate_multilayer",
    "evaluate_workload",
    "fig1_motivation",
    "fig2_runtime_split",
    "fig3_complexity",
    "fig8_per_graph",
    "fig9_sampling",
    "format_speedup",
    "full_sweep",
    "geomean",
    "measured_plan_time",
    "overhead_seconds",
    "overheads",
    "render_table",
    "run_sweep",
    "sweep_workloads",
    "table3_main",
    "table4_end_to_end",
    "table5_layers",
    "table6_oracles",
]
