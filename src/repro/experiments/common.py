"""Shared evaluation machinery for the paper's tables and figures.

All experiments compare three execution strategies for a *workload* —
(model, graph, embedding sizes, system, device, mode):

- **default**: the baseline system's fixed composition (§VI-B),
- **granii**: the composition GRANII's online stage selects (including its
  amortised decision overhead),
- **optimal**: the best promoted composition in hindsight.

"Time" is the deterministic simulated execution time from the device
models (setup amortised over the iteration count, backward pass added in
training mode), which plays the role of the paper's wall-clock
measurements on real CPUs/GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import GraniiEngine, ShapeEnv, compile_model, select_default_plan
from ..core.codegen import CompiledModel, PlannedCandidate
from ..core.features import featurize_graph
from ..core.plan import Plan
from ..framework import System, get_system
from ..graphs import Graph, load
from ..hardware import Device, GraphStats, get_device
from ..kernels import KernelCall

__all__ = [
    "Workload",
    "WorkloadResult",
    "EMBEDDING_PAIRS",
    "GAT_EMBEDDING_PAIRS",
    "embedding_pairs_for",
    "measured_plan_time",
    "overhead_seconds",
    "evaluate_workload",
    "geomean",
    "model_compile_kwargs",
]

# The evaluation embedding grid (paper: 32..2048, increasing / equal /
# decreasing combinations).  GAT is only evaluated on increasing sizes,
# the sole regime where the choice is non-trivial (§VI-B).
EMBEDDING_PAIRS: Tuple[Tuple[int, int], ...] = (
    (32, 32),
    (32, 256),
    (256, 32),
    (256, 256),
    (128, 1024),
    (1024, 128),
    (1024, 1024),
    (2048, 256),
)

GAT_EMBEDDING_PAIRS: Tuple[Tuple[int, int], ...] = (
    (32, 64),
    (32, 256),
    (128, 1024),
    (1024, 2048),
)


def embedding_pairs_for(model: str) -> Tuple[Tuple[int, int], ...]:
    return GAT_EMBEDDING_PAIRS if model == "gat" else EMBEDDING_PAIRS


def model_compile_kwargs(model: str) -> Dict[str, int]:
    return {"hops": 2} if model in ("sgc", "tagcn", "appnp") else {}


@dataclass(frozen=True)
class Workload:
    """One cell of the evaluation grid."""

    model: str
    graph_code: str
    in_size: int
    out_size: int
    system: str = "dgl"
    device: str = "h100"
    mode: str = "inference"  # or 'training'
    iterations: int = 100
    scale: str = "default"

    @property
    def key(self) -> Tuple:
        return (
            self.model, self.graph_code, self.in_size, self.out_size,
            self.system, self.device, self.mode, self.iterations, self.scale,
        )


@dataclass
class WorkloadResult:
    """Per-strategy amortised time (seconds per iteration) for one cell."""

    workload: Workload
    default_seconds: float
    granii_seconds: float
    optimal_seconds: float
    default_label: str
    granii_label: str
    optimal_label: str
    plan_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.default_seconds / self.granii_seconds

    @property
    def optimal_speedup(self) -> float:
        return self.default_seconds / self.optimal_seconds


def shape_env_for(graph: Graph, model: str, in_size: int, out_size: int) -> ShapeEnv:
    from ..models import uses_self_loops

    adj = graph.adj_with_self_loops() if uses_self_loops(model) else graph.adj
    return ShapeEnv(
        {"N": graph.num_nodes, "E": adj.nnz, "K1": in_size, "K2": out_size}
    )


def measured_plan_time(
    plan: Plan,
    env: ShapeEnv,
    device: Device,
    system: System,
    stats: GraphStats,
    iterations: int = 100,
    mode: str = "inference",
    count_setup: bool = True,
) -> float:
    """'Ground-truth' amortised per-iteration time of one plan."""
    setup, per_iter = plan.kernel_calls(env, system.degree_method)
    total = sum(
        device.time_call(c, stats) * system.efficiency(c) for c in per_iter
    )
    if mode == "training":
        total += sum(
            device.time_call(c, stats) * system.efficiency(c)
            for c in plan.backward_calls(env)
        )
    if count_setup:
        total += (
            sum(device.time_call(c, stats) * system.efficiency(c) for c in setup)
            / max(iterations, 1)
        )
    return total


def overhead_seconds(
    device: Device, stats: GraphStats, n: int, nnz: int, num_costed: int
) -> float:
    """GRANII's on-device decision overhead (§VI-C1 'Overheads').

    Feature extraction is a handful of O(N+E) passes over the graph;
    selection evaluates the cost models once per costed candidate.
    """
    passes = [
        KernelCall("degree_indptr", {"m": n, "nnz": nnz}),
        KernelCall("edge_softmax", {"m": n, "nnz": nnz}),  # an O(E) pass
        KernelCall("elementwise", {"m": n, "k": 1}),
        KernelCall("elementwise", {"m": n, "k": 1}),
    ]
    feature_time = sum(device.time_call(c, stats) for c in passes)
    # Host-side cost-model evaluations: a few hundred tree traversals per
    # candidate (microseconds each in a compiled GBT implementation).
    selection_time = 2.0e-5 * num_costed
    return feature_time + selection_time


# ----------------------------------------------------------------------
# cached per-graph artifacts
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _graph_artifacts(graph_code: str, scale: str):
    graph = load(graph_code, scale)
    return graph, GraphStats.from_graph(graph), featurize_graph(graph)


_ENGINES: Dict[Tuple, GraniiEngine] = {}


def _engine_for(workload: Workload) -> GraniiEngine:
    key = (workload.device, workload.system, workload.mode, workload.iterations, workload.scale)
    if key not in _ENGINES:
        _ENGINES[key] = GraniiEngine(
            device=workload.device,
            system=workload.system,
            iterations=workload.iterations,
            mode=workload.mode,
            scale=workload.scale,
        )
    return _ENGINES[key]


def evaluate_workload(workload: Workload) -> WorkloadResult:
    """Measure default vs GRANII vs optimal for one grid cell."""
    graph, stats, graph_vec = _graph_artifacts(workload.graph_code, workload.scale)
    device = get_device(workload.device)
    system = get_system(workload.system)
    compiled = compile_model(workload.model, **model_compile_kwargs(workload.model))
    env = shape_env_for(graph, workload.model, workload.in_size, workload.out_size)

    def true_time(planned: PlannedCandidate) -> float:
        return measured_plan_time(
            planned.plan, env, device, system, stats,
            iterations=workload.iterations, mode=workload.mode,
        )

    plan_seconds = {
        f"{p.label}#{i}": true_time(p) for i, p in enumerate(compiled.promoted)
    }

    # default ----------------------------------------------------------
    default = select_default_plan(
        compiled, system, workload.in_size, workload.out_size
    )
    default_seconds = true_time(default)

    # granii -----------------------------------------------------------
    engine = _engine_for(workload)
    viable = compiled.viable(workload.in_size, workload.out_size)
    if len(viable) == 1:
        chosen = viable[0]
        num_costed = 0
    else:
        costs = [
            engine.predict_plan_cost(p.plan, env, graph_vec) for p in viable
        ]
        chosen = viable[int(np.argmin(costs))]
        num_costed = len(viable)
    granii_seconds = true_time(chosen) + (
        overhead_seconds(device, stats, graph.num_nodes, env["E"], num_costed)
        / max(workload.iterations, 1)
    )

    # optimal ----------------------------------------------------------
    best_idx = int(
        np.argmin([true_time(p) for p in compiled.promoted])
    )
    optimal = compiled.promoted[best_idx]

    return WorkloadResult(
        workload=workload,
        default_seconds=default_seconds,
        granii_seconds=granii_seconds,
        optimal_seconds=true_time(optimal),
        default_label=default.label,
        granii_label=chosen.label,
        optimal_label=optimal.label,
        plan_seconds=plan_seconds,
    )


def geomean(values: Sequence[float]) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(values <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
