"""Figure 1: speedup of increasingly input-aware selection strategies.

For GCN across graphs and embedding sizes, three strategies over the
*static* single-ordering baseline:

- ``static``: one fixed primitive ordering regardless of input,
- ``config``: ordering chosen from model configuration only (embedding
  sizes, Yan et al. [17]),
- ``all``: GRANII — configuration *and* input-graph aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import compile_model
from ..framework import get_system
from ..graphs import EVALUATION_CODES
from ..hardware import get_device
from .common import (
    EMBEDDING_PAIRS,
    Workload,
    _graph_artifacts,
    evaluate_workload,
    geomean,
    measured_plan_time,
    shape_env_for,
)
from .report import format_speedup, render_table

__all__ = ["Figure1", "run"]


@dataclass
class Figure1:
    per_cell: List[Dict]
    geomean_config: float
    geomean_all: float

    def render(self) -> str:
        rows = [
            [c["graph"], f"({c['in']},{c['out']})",
             format_speedup(c["config"]), format_speedup(c["all"])]
            for c in self.per_cell
        ]
        rows.append(
            ["geomean", "", format_speedup(self.geomean_config),
             format_speedup(self.geomean_all)]
        )
        return render_table(
            ["Graph", "(in,out)", "config", "all"],
            rows,
            title="Figure 1: GCN speedup over the static ordering",
        )


def run(scale: str = "default", device: str = "h100", system: str = "dgl") -> Figure1:
    compiled = compile_model("gcn")
    dev = get_device(device)
    sys_ = get_system(system)
    # static = the written message-passing order: dynamic, aggregate-first
    static = compiled.find(norm="dynamic", order="agg_first")[0]
    per_cell: List[Dict] = []
    for code in EVALUATION_CODES:
        graph, stats, _ = _graph_artifacts(code, scale)
        for k1, k2 in EMBEDDING_PAIRS:
            env = shape_env_for(graph, "gcn", k1, k2)
            static_t = measured_plan_time(static.plan, env, dev, sys_, stats)
            # config: reorder GEMM by embedding sizes, stay dynamic
            order = "update_first" if k1 >= k2 else "agg_first"
            config = compiled.find(norm="dynamic", order=order)[0]
            config_t = measured_plan_time(config.plan, env, dev, sys_, stats)
            # all: GRANII's input-aware choice (with its overhead)
            result = evaluate_workload(
                Workload("gcn", code, k1, k2, system=system, device=device, scale=scale)
            )
            granii_t = result.granii_seconds
            per_cell.append(
                {
                    "graph": code,
                    "in": k1,
                    "out": k2,
                    "config": static_t / config_t,
                    "all": static_t / granii_t,
                }
            )
    return Figure1(
        per_cell=per_cell,
        geomean_config=geomean([c["config"] for c in per_cell]),
        geomean_all=geomean([c["all"] for c in per_cell]),
    )
