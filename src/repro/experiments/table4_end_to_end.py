"""Table IV: end-to-end two-layer model times on Reddit & ogbn-products.

Forward-pass execution times (ms) for end-to-end GCN and GAT models —
input features → hidden → classes — on the H100 target, against both
baseline systems, for hidden dimensions 32/256/1024.  Feature widths and
class counts follow the paper (Reddit: 602 features / 41 classes for GCN
and 100/47 for GAT; ogbn-products: 100/47).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .multilayer import evaluate_multilayer
from .report import format_speedup, render_table

__all__ = ["Table4", "run", "END_TO_END_CONFIGS"]

# (graph, model, feature width, classes)
END_TO_END_CONFIGS = (
    ("RD", "gcn", 602, 41),
    ("RD", "gat", 100, 47),
    ("OP", "gcn", 100, 47),
    ("OP", "gat", 100, 47),
)

HIDDEN_DIMS = (32, 256, 1024)


@dataclass
class Table4:
    rows: List[Dict]

    def render(self) -> str:
        body = [
            [
                r["graph"], r["model"].upper(), r["hidden"], r["system"],
                f"{1e3 * r['default_ms']:.3f}", f"{1e3 * r['granii_ms']:.3f}",
                format_speedup(r["speedup"]),
            ]
            for r in self.rows
        ]
        return render_table(
            ["Graph", "GNN", "Hidden", "System", "Default (ms)", "GRANII (ms)", "Speedup"],
            body,
            title="Table IV: end-to-end 2-layer forward times on H100",
        )


def run(scale: str = "default", device: str = "h100") -> Table4:
    rows: List[Dict] = []
    for graph_code, model, features, classes in END_TO_END_CONFIGS:
        for hidden in HIDDEN_DIMS:
            for system in ("wisegraph", "dgl"):
                timing = evaluate_multilayer(
                    model,
                    graph_code,
                    [features, hidden, classes],
                    system=system,
                    device=device,
                    scale=scale,
                )
                rows.append(
                    {
                        "graph": graph_code,
                        "model": model,
                        "hidden": hidden,
                        "system": system,
                        "default_ms": timing.default_seconds,
                        "granii_ms": timing.granii_seconds,
                        "speedup": timing.speedup,
                        "labels": timing.layer_labels_granii,
                    }
                )
    return Table4(rows)
