"""Ablations of GRANII's design choices (the DESIGN.md candidates).

1. **Broadcast rewrite** (Appendix C): without converting row-broadcasts
   into diagonal multiplications, they remain association barriers and
   the SDDMM precomputation is never discovered.
2. **Two-stage decoupling**: offline pruning + cheap conditions vs an
   online-only system that costs *every* enumerated tree, vs an
   offline-only system that never consults the cost models.
3. **Learned vs analytic cost model**: selection by FLOP counts misses
   hardware effects (bandwidth-bound kernels, binning atomics).
4. **Featurizer contents**: graph features matter; zeroing all but the
   call dimensions degrades selection on graph-sensitive cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import compile_model
from ..core.assoc import enumerate_candidates
from ..core.features import featurize_graph
from ..core.ir import flatten
from ..core.modelir import build_model_ir
from ..core.plan import Plan
from ..framework import get_system
from ..graphs import EVALUATION_CODES
from ..hardware import get_device
from .common import (
    Workload,
    _engine_for,
    _graph_artifacts,
    embedding_pairs_for,
    geomean,
    measured_plan_time,
    model_compile_kwargs,
    shape_env_for,
)

__all__ = [
    "rewrite_ablation",
    "staging_ablation",
    "cost_model_ablation",
    "featurizer_ablation",
]


# ----------------------------------------------------------------------
# 1. broadcast rewrite
# ----------------------------------------------------------------------
@dataclass
class RewriteAblation:
    with_rewrite_candidates: int
    without_rewrite_candidates: int
    with_rewrite_best: float  # best achievable time on a probe cell
    without_rewrite_best: float

    @property
    def rewrite_gain(self) -> float:
        return self.without_rewrite_best / self.with_rewrite_best


def rewrite_ablation(
    model: str = "gcn",
    graph_code: str = "BL",
    in_size: int = 32,
    out_size: int = 32,
    device: str = "a100",
    system: str = "wisegraph",
    scale: str = "default",
) -> RewriteAblation:
    """Enumerate with and without the Appendix C rewrite and compare the
    best achievable composition on a probe cell."""
    compiled = compile_model(model, **model_compile_kwargs(model))
    raw_ir = flatten(build_model_ir(model, **model_compile_kwargs(model)))
    barrier_candidates = enumerate_candidates([raw_ir])
    graph, stats, _ = _graph_artifacts(graph_code, scale)
    env = shape_env_for(graph, model, in_size, out_size)
    dev, sys_ = get_device(device), get_system(system)

    def best_time(candidates) -> float:
        return min(
            measured_plan_time(Plan(c), env, dev, sys_, stats)
            for c in candidates
        )

    return RewriteAblation(
        with_rewrite_candidates=compiled.enumerated_count,
        without_rewrite_candidates=len(barrier_candidates),
        with_rewrite_best=min(
            measured_plan_time(p.plan, env, dev, sys_, stats)
            for p in compiled.promoted
        ),
        without_rewrite_best=best_time(barrier_candidates),
    )


# ----------------------------------------------------------------------
# 2. two-stage decoupling
# ----------------------------------------------------------------------
@dataclass
class StagingAblation:
    two_stage_candidates_costed: int
    online_only_candidates_costed: int
    two_stage_speedup: float
    online_only_speedup: float  # same selections, more costing work
    offline_only_speedup: float  # no cost models at all


def staging_ablation(
    model: str = "gcn",
    device: str = "h100",
    system: str = "dgl",
    scale: str = "default",
) -> StagingAblation:
    compiled = compile_model(model, **model_compile_kwargs(model))
    workloads = [
        Workload(model, code, k1, k2, system=system, device=device, scale=scale)
        for code in EVALUATION_CODES
        for k1, k2 in embedding_pairs_for(model)
    ]
    engine = _engine_for(workloads[0])
    dev, sys_ = get_device(device), get_system(system)
    two_stage, online_only, offline_only = [], [], []
    costed_two_stage = costed_online = 0
    all_plans = [Plan(c) for c in compiled.all_candidates]
    for w in workloads:
        graph, stats, graph_vec = _graph_artifacts(w.graph_code, scale)
        env = shape_env_for(graph, model, w.in_size, w.out_size)

        def true_time(plan: Plan) -> float:
            return measured_plan_time(plan, env, dev, sys_, stats)

        from ..core.codegen import select_default_plan

        default_t = true_time(select_default_plan(compiled, sys_, w.in_size, w.out_size).plan)

        # two-stage: prune offline, cost the viable few
        viable = compiled.viable(w.in_size, w.out_size)
        if len(viable) > 1:
            costs = [engine.predict_plan_cost(p.plan, env, graph_vec) for p in viable]
            chosen = viable[int(np.argmin(costs))].plan
            costed_two_stage += len(viable)
        else:
            chosen = viable[0].plan
        two_stage.append(default_t / true_time(chosen))

        # online-only: cost every enumerated tree
        costs = [engine.predict_plan_cost(p, env, graph_vec) for p in all_plans]
        online_choice = all_plans[int(np.argmin(costs))]
        costed_online += len(all_plans)
        online_only.append(default_t / true_time(online_choice))

        # offline-only: scenario conditions alone; among viable plans pick
        # the structurally cheapest (fewest steps) without any input look
        fallback = min(viable, key=lambda p: len(p.plan.steps)).plan
        offline_only.append(default_t / true_time(fallback))

    return StagingAblation(
        two_stage_candidates_costed=costed_two_stage,
        online_only_candidates_costed=costed_online,
        two_stage_speedup=geomean(two_stage),
        online_only_speedup=geomean(online_only),
        offline_only_speedup=geomean(offline_only),
    )


# ----------------------------------------------------------------------
# 3 & 4. cost model variants
# ----------------------------------------------------------------------
def _selection_quality(
    predictor,
    model: str,
    device: str,
    system: str,
    scale: str,
) -> float:
    """Geomean of (optimal time / chosen time) over a grid — 1.0 is ideal."""
    compiled = compile_model(model, **model_compile_kwargs(model))
    dev, sys_ = get_device(device), get_system(system)
    ratios = []
    for code in EVALUATION_CODES:
        graph, stats, graph_vec = _graph_artifacts(code, scale)
        for k1, k2 in embedding_pairs_for(model):
            env = shape_env_for(graph, model, k1, k2)
            viable = compiled.viable(k1, k2)
            times = [
                measured_plan_time(p.plan, env, dev, sys_, stats) for p in viable
            ]
            scores = [predictor(p.plan, env, graph_vec) for p in viable]
            chosen = int(np.argmin(scores))
            ratios.append(min(times) / times[chosen])
    return geomean(ratios)


@dataclass
class CostModelAblation:
    learned_quality: float
    analytic_quality: float


def cost_model_ablation(
    model: str = "gcn",
    device: str = "a100",
    system: str = "wisegraph",
    scale: str = "default",
) -> CostModelAblation:
    """Learned GBT cost models vs an analytic FLOP-sum cost model."""
    engine = _engine_for(
        Workload(model, "RD", 32, 32, system=system, device=device, scale=scale)
    )

    def learned(plan, env, graph_vec):
        return engine.predict_plan_cost(plan, env, graph_vec)

    def analytic(plan, env, graph_vec):
        setup, per_iter = plan.kernel_calls(env, get_system(system).degree_method)
        return sum(c.flops for c in per_iter) + sum(c.flops for c in setup) / 100.0

    return CostModelAblation(
        learned_quality=_selection_quality(learned, model, device, system, scale),
        analytic_quality=_selection_quality(analytic, model, device, system, scale),
    )


@dataclass
class FeaturizerAblation:
    full_quality: float
    no_graph_features_quality: float


def featurizer_ablation(
    model: str = "gcn",
    device: str = "a100",
    system: str = "wisegraph",
    scale: str = "default",
) -> FeaturizerAblation:
    """Full featurizer vs one with the graph features blanked out.

    Both variants are *trained* the same way; the ablated one predicts
    with the structural graph features zeroed, so it cannot distinguish
    graphs of similar size but different density/skew.
    """
    engine = _engine_for(
        Workload(model, "RD", 32, 32, system=system, device=device, scale=scale)
    )
    num_graph_features = featurize_graph(_graph_artifacts("RD", scale)[0]).shape[0]

    def full(plan, env, graph_vec):
        return engine.predict_plan_cost(plan, env, graph_vec)

    def blanked(plan, env, graph_vec):
        return engine.predict_plan_cost(plan, env, np.zeros(num_graph_features))

    return FeaturizerAblation(
        full_quality=_selection_quality(full, model, device, system, scale),
        no_graph_features_quality=_selection_quality(blanked, model, device, system, scale),
    )
