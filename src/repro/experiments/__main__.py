"""Command-line runner for the experiment drivers.

Usage::

    python -m repro.experiments table3            # one artifact
    python -m repro.experiments fig9 --scale small
    python -m repro.experiments all               # everything (slow)
    python -m repro.experiments list

Each artifact prints its rendered table; ``--output DIR`` also writes it
to ``DIR/<name>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import (
    changing_sparsity,
    enumeration_stats,
    extra_models,
    fig1_motivation,
    fig2_runtime_split,
    fig3_complexity,
    fig8_per_graph,
    fig9_sampling,
    fusion,
    overheads,
    spgemm_study,
    table3_main,
    table4_end_to_end,
    table5_layers,
    table6_oracles,
    validation_real,
)

_SCALED = {"scale"}

ARTIFACTS = {
    "fig1": ("Figure 1: static vs config vs all", fig1_motivation.run, True),
    "fig2": ("Figure 2: sparse/dense runtime split", fig2_runtime_split.run, True),
    "fig3": ("Figure 3: composition complexities", fig3_complexity.run, False),
    "table3": ("Table III: geomean speedups", table3_main.run, True),
    "fig8": ("Figure 8: per-graph detail", fig8_per_graph.run, True),
    "table4": ("Table IV: end-to-end times", table4_end_to_end.run, True),
    "fig9": ("Figure 9: sampling sensitivity", fig9_sampling.run, True),
    "table5": ("Table V: multiple layers", table5_layers.run, True),
    "table6": ("Table VI: oracles", table6_oracles.run, True),
    "enumstats": ("Enumeration & pruning statistics", enumeration_stats.run, False),
    "overheads": ("Decision overheads", overheads.run, True),
    "realvalid": ("Real-execution validation (measured kernels)", validation_real.run, False),
    "sparsity": ("Changing sparsity across layers (coarsening)", changing_sparsity.run, True),
    "fusion": ("Kernel fusion composed into GRANII (GAT)", fusion.run, True),
    "extramodels": ("Beyond-paper models (GraphSAGE, APPNP)", extra_models.run, True),
    "spgemm": ("SpGEMM extension: materialising propagation powers", spgemm_study.run, True),
}


def _render(name: str, result) -> str:
    if name == "fig8":
        return "\n\n".join(
            result.render(system=s, device=d, mode="inference")
            for s, d in (("wisegraph", "a100"), ("dgl", "h100"))
        )
    return result.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        help="artifact name, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("small", "default"),
        help="graph scale (small is fast, default matches EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write rendered artifacts to this directory",
    )
    args = parser.parse_args(argv)

    if args.artifact == "list":
        for key, (title, _, _) in ARTIFACTS.items():
            print(f"{key:10s} {title}")
        return 0

    names = list(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        parser.error(
            f"unknown artifact(s) {unknown}; run 'list' to see choices"
        )
    for name in names:
        title, runner, takes_scale = ARTIFACTS[name]
        print(f"== {title} ==")
        start = time.perf_counter()
        result = runner(scale=args.scale) if takes_scale else runner()
        text = _render(name, result)
        print(text)
        print(f"[{name}: {time.perf_counter() - start:.1f}s]\n")
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
