"""Figure 3: compositions of GCN and GAT with per-operation complexities.

Regenerates the paper's complexity annotations from the promoted plans
themselves (rather than hand-writing them), so the table is guaranteed to
describe exactly what the system executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.complexity import ComplexityRow, composition_complexities
from .report import render_table

__all__ = ["Figure3", "run"]


@dataclass
class Figure3:
    rows: List[ComplexityRow]

    def render(self) -> str:
        body = [
            [r.composition, r.primitive, r.complexity, r.phase] for r in self.rows
        ]
        return render_table(
            ["Composition", "Primitive", "Complexity", "Phase"],
            body,
            title="Figure 3: GCN & GAT compositions with per-op complexities",
        )


def run() -> Figure3:
    rows = [
        r for model in ("gcn", "gat") for r in composition_complexities(model)
    ]
    return Figure3(rows)
