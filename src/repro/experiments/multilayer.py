"""Multi-layer evaluation shared by Table IV and Table V.

A stack of L layers is timed as the sum of per-layer iteration times plus
*deduplicated* setup costs: graph-only precomputation (the normalized
adjacency Ñ, GIN's B) is shared across layers and iterations, exactly as
a real implementation would cache it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core import compile_model, select_default_plan
from ..core.codegen import PlannedCandidate
from ..framework import get_system
from ..hardware import get_device
from .common import (
    _engine_for,
    _graph_artifacts,
    Workload,
    model_compile_kwargs,
    overhead_seconds,
    shape_env_for,
)

__all__ = ["MultiLayerTiming", "evaluate_multilayer"]


@dataclass
class MultiLayerTiming:
    """Per-strategy amortised per-iteration seconds for a layer stack."""

    default_seconds: float
    granii_seconds: float
    layer_labels_default: List[str]
    layer_labels_granii: List[str]

    @property
    def speedup(self) -> float:
        return self.default_seconds / self.granii_seconds


def _stack_time(
    chosen: Sequence[Tuple[PlannedCandidate, object]],
    device,
    system,
    stats,
    iterations: int,
    mode: str,
) -> float:
    per_iter_total = 0.0
    setup_seen: Dict[tuple, float] = {}
    for planned, env in chosen:
        setup, per_iter = planned.plan.kernel_calls(env, system.degree_method)
        per_iter_total += sum(
            device.time_call(c, stats) * system.efficiency(c) for c in per_iter
        )
        if mode == "training":
            per_iter_total += sum(
                device.time_call(c, stats) * system.efficiency(c)
                for c in planned.plan.backward_calls(env)
            )
        for call in setup:
            key = (call.primitive, tuple(sorted(call.shape.items())))
            if key not in setup_seen:
                setup_seen[key] = (
                    device.time_call(call, stats) * system.efficiency(call)
                )
    return per_iter_total + sum(setup_seen.values()) / max(iterations, 1)


def evaluate_multilayer(
    model: str,
    graph_code: str,
    layer_dims: Sequence[int],
    system: str = "wisegraph",
    device: str = "h100",
    mode: str = "inference",
    iterations: int = 100,
    scale: str = "default",
) -> MultiLayerTiming:
    """Time a multi-layer stack under the default vs GRANII strategies.

    ``layer_dims`` is [in, hidden..., out]; layer i maps dims[i]→dims[i+1].
    """
    if len(layer_dims) < 2:
        raise ValueError("need at least (in, out) dims")
    graph, stats, graph_vec = _graph_artifacts(graph_code, scale)
    dev = get_device(device)
    sys_ = get_system(system)
    compiled = compile_model(model, **model_compile_kwargs(model))
    engine = _engine_for(
        Workload(model, graph_code, layer_dims[0], layer_dims[-1],
                 system=system, device=device, mode=mode,
                 iterations=iterations, scale=scale)
    )

    default_chain: List[Tuple[PlannedCandidate, object]] = []
    granii_chain: List[Tuple[PlannedCandidate, object]] = []
    num_costed = 0
    for k1, k2 in zip(layer_dims[:-1], layer_dims[1:]):
        env = shape_env_for(graph, model, k1, k2)
        default_chain.append(
            (select_default_plan(compiled, sys_, k1, k2), env)
        )
        viable = compiled.viable(k1, k2)
        if len(viable) == 1:
            chosen = viable[0]
        else:
            costs = [engine.predict_plan_cost(p.plan, env, graph_vec) for p in viable]
            chosen = viable[int(np.argmin(costs))]
            num_costed += len(viable)
        granii_chain.append((chosen, env))

    default_seconds = _stack_time(default_chain, dev, sys_, stats, iterations, mode)
    granii_seconds = _stack_time(granii_chain, dev, sys_, stats, iterations, mode)
    granii_seconds += overhead_seconds(
        dev, stats, graph.num_nodes, graph.adj_with_self_loops().nnz, num_costed
    ) / max(iterations, 1)
    return MultiLayerTiming(
        default_seconds=default_seconds,
        granii_seconds=granii_seconds,
        layer_labels_default=[p.label for p, _ in default_chain],
        layer_labels_granii=[p.label for p, _ in granii_chain],
    )
