"""Figure 2: percentage of runtime in sparse vs dense primitives.

For GCN's default composition, the sparse/dense runtime split across
graphs, (in, out) embedding sizes, and hardware — the paper's evidence
that no single factor predicts where time goes, motivating learned cost
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import compile_model, select_default_plan
from ..framework import get_system
from ..graphs import EVALUATION_CODES
from ..hardware import DEVICE_NAMES, get_device
from .common import _graph_artifacts, shape_env_for
from .report import render_table

__all__ = ["Figure2", "run"]


@dataclass
class Figure2:
    rows: List[Dict]

    def render(self) -> str:
        body = [
            [r["graph"], f"({r['in']},{r['out']})", r["device"],
             f"{100 * r['sparse_frac']:.0f}%", f"{100 * (1 - r['sparse_frac']):.0f}%"]
            for r in self.rows
        ]
        return render_table(
            ["Graph", "(in,out)", "HW", "sparse", "dense"],
            body,
            title="Figure 2: runtime split of GCN's default composition",
        )

    def sparse_fraction_range(self) -> Tuple[float, float]:
        fracs = [r["sparse_frac"] for r in self.rows]
        return min(fracs), max(fracs)


def run(
    scale: str = "default",
    pairs: Tuple[Tuple[int, int], ...] = ((32, 32), (512, 512), (2048, 256)),
    system: str = "dgl",
) -> Figure2:
    compiled = compile_model("gcn")
    sys_ = get_system(system)
    rows: List[Dict] = []
    for code in EVALUATION_CODES:
        graph, stats, _ = _graph_artifacts(code, scale)
        for k1, k2 in pairs:
            env = shape_env_for(graph, "gcn", k1, k2)
            default = select_default_plan(compiled, sys_, k1, k2)
            setup, per_iter = default.plan.kernel_calls(env, sys_.degree_method)
            for device_name in DEVICE_NAMES:
                device = get_device(device_name)
                sparse_t = dense_t = 0.0
                for call in per_iter:
                    t = device.time_call(call, stats) * sys_.efficiency(call)
                    if call.kind == "sparse":
                        sparse_t += t
                    else:
                        dense_t += t
                rows.append(
                    {
                        "graph": code,
                        "in": k1,
                        "out": k2,
                        "device": device_name,
                        "sparse_frac": sparse_t / (sparse_t + dense_t),
                    }
                )
    return Figure2(rows)
