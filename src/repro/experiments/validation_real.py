"""End-to-end validation on *real* measurements (no simulator).

The paper's methodology is: profile primitives on real hardware, train
cost models, select compositions for unseen inputs.  This experiment
runs that loop against this repository's actual NumPy kernels on the
host CPU:

1. profile every primitive's wall-clock time on the (disjoint) training
   graph pool;
2. train the per-primitive GBT cost models on those measurements;
3. on held-out evaluation graphs, let the models choose among GCN's
   promoted compositions and compare the choice against the measured
   wall-clock of actually executing each composition.

The reported *selection quality* is geomean(best wall-clock / chosen
wall-clock) — 1.0 means GRANII always picked the truly fastest
composition on real measurements.

Interesting twist: on this backend the dynamic (unweighted-aggregation)
composition usually beats the precomputation — the opposite of the
simulated A100 — which is itself the paper's core claim that the right
composition is hardware-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core import compile_model
from ..core.bindings import build_binding
from ..core.costmodel import train_cost_models
from ..core.features import call_features, featurize_graph
from ..core.profiler import ProfileDataset
from ..framework import MPGraph
from ..graphs import load, training_graphs
from ..hardware import get_device, time_fn
from ..hardware.realexec import RealExecutionBackend
from ..kernels import KernelCall
from ..models import GCNLayer
from .common import geomean, shape_env_for
from .report import render_table

__all__ = ["RealValidation", "run", "collect_real_profile"]


def _representative_calls(n: int, nnz: int, k: int) -> List[KernelCall]:
    return [
        KernelCall("gemm", {"m": n, "k": k, "n": k}),
        KernelCall("gemm", {"m": n, "k": k, "n": 1}),
        KernelCall("spmm", {"m": n, "nnz": nnz, "k": k}),
        KernelCall("spmm_unweighted", {"m": n, "nnz": nnz, "k": k}),
        KernelCall("sddmm", {"m": n, "nnz": nnz, "k": k}),
        KernelCall("sddmm_diag", {"m": n, "nnz": nnz}),
        KernelCall("gsddmm_attn", {"m": n, "nnz": nnz}),
        KernelCall("edge_softmax", {"m": n, "nnz": nnz}),
        KernelCall("row_broadcast", {"m": n, "k": k}),
        KernelCall("elementwise", {"m": n, "k": k}),
        KernelCall("elementwise", {"m": n, "k": 1}),
        KernelCall("degree_indptr", {"m": n, "nnz": nnz}),
        KernelCall("degree_binning", {"m": n, "nnz": nnz}),
        KernelCall("diag_mul", {"m": n}),
        KernelCall("spadd_diag", {"m": n, "nnz": nnz}),
    ]


def collect_real_profile(
    graphs=None,
    sizes: Sequence[int] = (16, 64, 128),
    scale: str = "small",
    backend: RealExecutionBackend = None,
) -> ProfileDataset:
    """Wall-clock profiling of every primitive on the training pool."""
    backend = backend or RealExecutionBackend()
    if graphs is None:
        graphs = training_graphs(scale=scale)
    dataset = ProfileDataset()
    for graph in graphs:
        graph_vec = featurize_graph(graph)
        n = graph.num_nodes
        nnz = max(graph.num_edges, 1)
        for k in sizes:
            for call in _representative_calls(n, nnz, k):
                seconds = backend.time_call(call, graph)
                dataset.add(call.primitive, call_features(call, graph_vec), seconds)
    return dataset


@dataclass
class RealValidation:
    rows: List[Dict]
    selection_quality: float  # geomean(best wall / chosen wall)

    def render(self) -> str:
        body = [
            [r["graph"], f"({r['in']},{r['out']})", r["chosen"], r["best"],
             f"{1e3 * r['chosen_ms']:.2f}", f"{1e3 * r['best_ms']:.2f}"]
            for r in self.rows
        ]
        body.append(["geomean quality", "", "", "", "", f"{self.selection_quality:.3f}"])
        return render_table(
            ["Graph", "(in,out)", "chosen", "wall-clock best",
             "chosen (ms)", "best (ms)"],
            body,
            title="Real-execution validation: GRANII on measured NumPy kernels",
        )


def run(
    graph_codes: Tuple[str, ...] = ("CA", "BL", "MC", "AU"),
    pairs: Tuple[Tuple[int, int], ...] = ((32, 32), (64, 128), (128, 32)),
    scale: str = "small",
    seed: int = 0,
) -> RealValidation:
    backend = RealExecutionBackend(seed=seed)
    dataset = collect_real_profile(scale=scale, backend=backend)
    # train on real log-times (the device argument is unused when a
    # dataset is supplied)
    models = train_cost_models(get_device("cpu"), dataset, num_rounds=80)

    compiled = compile_model("gcn")
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    qualities: List[float] = []
    for code in graph_codes:
        graph = load(code, scale)
        graph_vec = featurize_graph(graph)
        g = MPGraph(graph.adj_with_self_loops())
        for k1, k2 in pairs:
            env = shape_env_for(graph, "gcn", k1, k2)
            layer = GCNLayer(k1, k2, rng=rng)
            feat = rng.standard_normal((graph.num_nodes, k1))
            walls, preds, labels = [], [], []
            for planned in compiled.promoted:
                binding = build_binding(layer, g, feat, "numpy")
                cache: Dict[str, object] = {}
                planned.plan.execute(binding, mode="numpy", setup_cache=cache)
                wall, _ = time_fn(
                    lambda: planned.plan.execute(
                        binding, mode="numpy", setup_cache=cache
                    ),
                    repeats=4,
                )
                setup, per_iter = planned.plan.kernel_calls(env, "indptr")
                pred = models.predict_calls(per_iter, graph_vec)
                walls.append(wall)
                preds.append(pred)
                labels.append(planned.label)
            chosen = int(np.argmin(preds))
            best = int(np.argmin(walls))
            qualities.append(walls[best] / walls[chosen])
            rows.append(
                {
                    "graph": code,
                    "in": k1,
                    "out": k2,
                    "chosen": labels[chosen],
                    "best": labels[best],
                    "chosen_ms": walls[chosen],
                    "best_ms": walls[best],
                }
            )
    return RealValidation(rows, geomean(qualities))
