"""Composing GRANII with kernel fusion (related-work claim, §VII).

The paper argues the optimizations of systems like FusedMM/Graphite
"can compose with GRANII": fusion just adds more candidates for the cost
models to rank.  This experiment compiles GAT with the FusedMM-style
attention-fusion peephole enabled and measures, over the evaluation
grid, the gain of GRANII's fusion-aware selection over (a) the baseline
default and (b) GRANII restricted to unfused candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core import compile_model, select_default_plan
from ..framework import get_system
from ..graphs import EVALUATION_CODES
from ..hardware import get_device
from .common import (
    GAT_EMBEDDING_PAIRS,
    Workload,
    _engine_for,
    _graph_artifacts,
    geomean,
    measured_plan_time,
    shape_env_for,
)
from .report import format_speedup, render_table

__all__ = ["FusionStudy", "run"]


@dataclass
class FusionStudy:
    rows: List[Dict]
    geomean_vs_default: float
    geomean_vs_unfused_granii: float
    fused_chosen_fraction: float

    def render(self) -> str:
        body = [
            [r["graph"], f"({r['in']},{r['out']})", r["chosen"],
             format_speedup(r["vs_default"]), format_speedup(r["vs_unfused"])]
            for r in self.rows
        ]
        body.append(
            ["geomean", "", "", format_speedup(self.geomean_vs_default),
             format_speedup(self.geomean_vs_unfused_granii)]
        )
        return render_table(
            ["Graph", "(in,out)", "chosen", "vs default", "vs unfused GRANII"],
            body,
            title="GAT with FusedMM-style fusion composed into GRANII",
        )


def run(
    device: str = "h100",
    system: str = "dgl",
    scale: str = "default",
    iterations: int = 100,
) -> FusionStudy:
    fused_compiled = compile_model("gat", fusion=True)
    plain_compiled = compile_model("gat")
    dev = get_device(device)
    sys_ = get_system(system)
    engine = _engine_for(
        Workload("gat", "RD", 32, 64, system=system, device=device, scale=scale)
    )
    rows: List[Dict] = []
    vs_default: List[float] = []
    vs_unfused: List[float] = []
    fused_chosen = 0
    for code in EVALUATION_CODES:
        graph, stats, graph_vec = _graph_artifacts(code, scale)
        for k1, k2 in GAT_EMBEDDING_PAIRS:
            env = shape_env_for(graph, "gat", k1, k2)

            def true_time(planned):
                return measured_plan_time(
                    planned.plan, env, dev, sys_, stats, iterations=iterations
                )

            def granii_pick(compiled):
                viable = compiled.viable(k1, k2)
                if len(viable) == 1:
                    return viable[0]
                preds = [
                    engine.predict_plan_cost(p.plan, env, graph_vec) for p in viable
                ]
                return viable[int(np.argmin(preds))]

            default = select_default_plan(plain_compiled, sys_, k1, k2)
            fused_choice = granii_pick(fused_compiled)
            plain_choice = granii_pick(plain_compiled)
            if "fused" in fused_choice.tags.get("gat", ""):
                fused_chosen += 1
            vs_default.append(true_time(default) / true_time(fused_choice))
            vs_unfused.append(true_time(plain_choice) / true_time(fused_choice))
            rows.append(
                {
                    "graph": code,
                    "in": k1,
                    "out": k2,
                    "chosen": fused_choice.label,
                    "vs_default": vs_default[-1],
                    "vs_unfused": vs_unfused[-1],
                }
            )
    return FusionStudy(
        rows=rows,
        geomean_vs_default=geomean(vs_default),
        geomean_vs_unfused_granii=geomean(vs_unfused),
        fused_chosen_fraction=fused_chosen / len(rows),
    )
