"""Table VI: GRANII vs single-factor oracle heuristics (§VI-G).

Each oracle fixes ONE factor and always uses the composition that wins a
majority of the evaluated settings sharing that factor's value:

- ``Config.``: groups by (in, out) embedding sizes,
- ``HW``: groups by device,
- ``Graph``: groups by input graph,
- ``Sys.``: groups by baseline system.

``Optimal`` is per-cell hindsight; ``GRANII`` is the learned selection.
The paper's finding: GRANII beats every oracle, Config. is the best
oracle, and single-factor decisions are insufficient.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..models import MODEL_NAMES
from .common import WorkloadResult, geomean
from .report import format_speedup, render_table
from .sweep import SweepResult, full_sweep

__all__ = ["Table6", "run", "oracle_speedup"]

ORACLES: Dict[str, Callable[[WorkloadResult], object]] = {
    "config": lambda r: (r.workload.in_size, r.workload.out_size),
    "hw": lambda r: r.workload.device,
    "graph": lambda r: r.workload.graph_code,
    "sys": lambda r: r.workload.system,
}


def oracle_speedup(results: List[WorkloadResult], factor) -> float:
    """Geomean speedup of the majority-vote single-factor oracle."""
    groups: Dict[object, List[WorkloadResult]] = defaultdict(list)
    for r in results:
        groups[factor(r)].append(r)
    speedups: List[float] = []
    for group in groups.values():
        # majority vote: the plan that is per-cell best most often
        votes = Counter(
            min(r.plan_seconds, key=r.plan_seconds.get) for r in group
        )
        chosen = votes.most_common(1)[0][0]
        for r in group:
            speedups.append(r.default_seconds / r.plan_seconds[chosen])
    return geomean(speedups)


@dataclass
class Table6:
    rows: Dict[str, Dict[str, float]]  # model -> column -> speedup

    def render(self) -> str:
        headers = ["GNN", "Optimal", "GRANII", "Config.", "HW", "Graph", "Sys."]
        body = []
        for model in MODEL_NAMES:
            row = self.rows[model]
            body.append(
                [model.upper()]
                + [format_speedup(row[c]) for c in
                   ("optimal", "granii", "config", "hw", "graph", "sys")]
            )
        return render_table(
            headers, body, title="Table VI: GRANII vs single-factor oracles"
        )


def run(scale: str = "default", mode: str = "inference") -> Table6:
    sweep = full_sweep(scale)
    rows: Dict[str, Dict[str, float]] = {}
    for model in MODEL_NAMES:
        results = sweep.filtered(model=model, mode=mode)
        row = {
            "optimal": geomean([r.optimal_speedup for r in results]),
            "granii": geomean([r.speedup for r in results]),
        }
        for name, factor in ORACLES.items():
            row[name] = oracle_speedup(results, factor)
        rows[model] = row
    return Table6(rows)
