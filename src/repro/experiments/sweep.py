"""The full evaluation sweep behind Table III and Figure 8.

Grid: 6 graphs × 5 models × embedding pairs × {WiseGraph, DGL} ×
{H100, A100 (+CPU for DGL)} × {inference, training}, matching the
hardware/system combinations of Table III.  (The paper evaluates
WiseGraph on GPUs only; CPU rows exist for DGL.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs import EVALUATION_CODES
from ..models import MODEL_NAMES
from .common import (
    Workload,
    WorkloadResult,
    embedding_pairs_for,
    evaluate_workload,
    geomean,
)

__all__ = ["SYSTEM_DEVICE_GRID", "SweepResult", "run_sweep", "sweep_workloads"]

# (system, device) combinations evaluated in Table III
SYSTEM_DEVICE_GRID: Tuple[Tuple[str, str], ...] = (
    ("wisegraph", "h100"),
    ("wisegraph", "a100"),
    ("dgl", "h100"),
    ("dgl", "a100"),
    ("dgl", "cpu"),
)


def sweep_workloads(
    models: Sequence[str] = MODEL_NAMES,
    graphs: Sequence[str] = EVALUATION_CODES,
    grid: Sequence[Tuple[str, str]] = SYSTEM_DEVICE_GRID,
    modes: Sequence[str] = ("inference", "training"),
    scale: str = "default",
    iterations: int = 100,
) -> List[Workload]:
    """Enumerate the full evaluation grid."""
    out: List[Workload] = []
    for system, device in grid:
        for mode in modes:
            for model in models:
                for code in graphs:
                    for k1, k2 in embedding_pairs_for(model):
                        out.append(
                            Workload(
                                model=model,
                                graph_code=code,
                                in_size=k1,
                                out_size=k2,
                                system=system,
                                device=device,
                                mode=mode,
                                iterations=iterations,
                                scale=scale,
                            )
                        )
    return out


@dataclass
class SweepResult:
    """All per-cell results plus aggregation helpers."""

    results: List[WorkloadResult] = field(default_factory=list)

    def to_csv(self, path) -> None:
        """Dump the raw per-cell grid (the data behind Figure 8)."""
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["model", "graph", "in_size", "out_size", "system", "device",
                 "mode", "default_label", "granii_label", "optimal_label",
                 "default_seconds", "granii_seconds", "optimal_seconds",
                 "speedup"]
            )
            for r in self.results:
                w = r.workload
                writer.writerow(
                    [w.model, w.graph_code, w.in_size, w.out_size, w.system,
                     w.device, w.mode, r.default_label, r.granii_label,
                     r.optimal_label, f"{r.default_seconds:.6e}",
                     f"{r.granii_seconds:.6e}", f"{r.optimal_seconds:.6e}",
                     f"{r.speedup:.4f}"]
                )

    def filtered(self, **attrs) -> List[WorkloadResult]:
        out = self.results
        for key, value in attrs.items():
            out = [r for r in out if getattr(r.workload, key) == value]
        return out

    def geomean_speedup(self, **attrs) -> float:
        subset = self.filtered(**attrs)
        if not subset:
            raise ValueError(f"no results match {attrs}")
        return geomean([r.speedup for r in subset])

    def geomean_optimal_speedup(self, **attrs) -> float:
        subset = self.filtered(**attrs)
        if not subset:
            raise ValueError(f"no results match {attrs}")
        return geomean([r.optimal_speedup for r in subset])


def run_sweep(
    workloads: Optional[Iterable[Workload]] = None, **kwargs
) -> SweepResult:
    """Evaluate every workload cell (deterministic, cached substrates)."""
    if workloads is None:
        workloads = sweep_workloads(**kwargs)
    result = SweepResult()
    for workload in workloads:
        result.results.append(evaluate_workload(workload))
    return result


_FULL_SWEEPS: Dict[str, SweepResult] = {}


def full_sweep(scale: str = "default") -> SweepResult:
    """The complete Table III / Figure 8 sweep, cached per process.

    Several experiment drivers (Table III, Figure 8, Table VI's oracles)
    aggregate the same grid; running it once keeps the benchmark suite
    fast and guarantees they report consistent numbers.
    """
    if scale not in _FULL_SWEEPS:
        _FULL_SWEEPS[scale] = run_sweep(scale=scale)
    return _FULL_SWEEPS[scale]
