"""Figure 9: sensitivity of GRANII's decision to neighborhood sampling.

Reproduces §VI-E: both discovered compositions of GCN (32, 256) and GAT
(1024, 2048) are timed on 10 random *neighborhood* samples per sampling
size (fanouts 1000 / 100 / 10) of the dense MC graph on H100/DGL.

Findings to reproduce:

1. runtime variation across same-size random samples is minimal, so one
   GRANII call per sampling size suffices (no per-sample re-inspection);
2. the preferred composition *changes* with the sampling size (the
   embedding sizes were chosen in the paper to "show clear changes");
3. GRANII's cost models, applied to one representative sample, pick the
   per-size majority winner — and when they miss, the margin between the
   compositions is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core import compile_model
from ..core.features import featurize_graph
from ..framework import get_system
from ..graphs import load, sample_fanout
from ..hardware import GraphStats, get_device
from .common import Workload, _engine_for, measured_plan_time, shape_env_for
from .report import render_table

__all__ = ["Figure9", "run", "SAMPLE_SIZES"]

SAMPLE_SIZES = (1000, 100, 10)


@dataclass
class Figure9:
    rows: List[Dict]  # one per (model, size, sample)
    granii_choice: Dict[Tuple[str, int], str]  # (model, size) -> 'A'|'B'

    def render(self) -> str:
        body = []
        for r in self.rows:
            body.append(
                [r["model"].upper(), r["size"], r["sample"],
                 f"{1e6 * r['time_a']:.1f}", f"{1e6 * r['time_b']:.1f}",
                 r["winner"],
                 self.granii_choice[(r["model"], r["size"])]]
            )
        return render_table(
            ["Model", "Fanout", "Sample", "comp A (us)", "comp B (us)",
             "winner", "GRANII"],
            body,
            title="Figure 9: compositions on neighborhood samples of MC (H100, DGL)",
        )

    def variation_coefficient(self, model: str, size: int, comp: str = "time_a") -> float:
        times = np.array(
            [r[comp] for r in self.rows if r["model"] == model and r["size"] == size]
        )
        return float(times.std() / times.mean())

    def majority_winner(self, model: str, size: int) -> str:
        rows = [r for r in self.rows if r["model"] == model and r["size"] == size]
        wins_a = sum(r["winner"] == "A" for r in rows)
        return "A" if wins_a * 2 >= len(rows) else "B"

    def granii_accuracy(self, model: str) -> float:
        """Fraction of sampling sizes where GRANII picks the majority winner."""
        hits = [
            self.granii_choice[(model, size)] == self.majority_winner(model, size)
            for size in SAMPLE_SIZES
        ]
        return float(np.mean(hits))

    def wrong_decision_margin(self, model: str) -> float:
        """Largest relative margin among sizes GRANII got wrong (0 if none)."""
        worst = 0.0
        for size in SAMPLE_SIZES:
            if self.granii_choice[(model, size)] == self.majority_winner(model, size):
                continue
            rows = [r for r in self.rows if r["model"] == model and r["size"] == size]
            for r in rows:
                margin = abs(r["time_a"] - r["time_b"]) / max(r["time_a"], r["time_b"])
                worst = max(worst, margin)
        return worst

    def preference_changes_with_size(self, model: str) -> bool:
        winners = {self.majority_winner(model, size) for size in SAMPLE_SIZES}
        return len(winners) > 1


def run(
    scale: str = "default",
    graph_code: str = "MC",
    device: str = "h100",
    system: str = "dgl",
    num_samples: int = 10,
    seed: int = 0,
) -> Figure9:
    graph = load(graph_code, scale)
    dev = get_device(device)
    sys_ = get_system(system)
    rng = np.random.default_rng(seed)
    setups = {"gcn": (32, 256), "gat": (1024, 2048)}
    rows: List[Dict] = []
    granii_choice: Dict[Tuple[str, int], str] = {}
    for model, (k1, k2) in setups.items():
        compiled = compile_model(model)
        if model == "gcn":
            comp_a = compiled.find(norm="dynamic", order="agg_first")[0]
            comp_b = compiled.find(norm="precompute", order="agg_first")[0]
        else:
            comp_a = compiled.find(gat="reuse")[0]
            comp_b = compiled.find(gat="recompute")[0]
        engine = _engine_for(
            Workload(model, graph_code, k1, k2, system=system, device=device, scale=scale)
        )
        for size in SAMPLE_SIZES:
            for sample_idx in range(num_samples):
                sub = sample_fanout(graph, size, rng)
                sub.name = f"{sub.name}#{sample_idx}"
                env = shape_env_for(sub, model, k1, k2)
                stats = GraphStats.from_graph(sub)
                time_a = measured_plan_time(comp_a.plan, env, dev, sys_, stats)
                time_b = measured_plan_time(comp_b.plan, env, dev, sys_, stats)
                rows.append(
                    {
                        "model": model,
                        "size": size,
                        "sample": sample_idx,
                        "time_a": time_a,
                        "time_b": time_b,
                        "winner": "A" if time_a <= time_b else "B",
                    }
                )
                if sample_idx == 0:
                    # GRANII's one decision per sampling size, from the
                    # first sample's features (the §VI-E protocol)
                    vec = featurize_graph(sub)
                    cost_a = engine.predict_plan_cost(comp_a.plan, env, vec)
                    cost_b = engine.predict_plan_cost(comp_b.plan, env, vec)
                    granii_choice[(model, size)] = "A" if cost_a <= cost_b else "B"
    return Figure9(rows, granii_choice)
