"""Changing sparsity across layers (the §VI-F discussion point).

A hierarchical (pooling) GNN runs each layer on a different graph: the
input graph, then progressively coarsened versions whose density grows.
GRANII needs no new offline work for this — it re-runs only its online
component per (layer, level) — and its decisions *adapt* to each level's
sparsity, which a per-model static choice cannot.

This experiment builds a coarsening hierarchy over a sparse road-network
graph, asks GRANII for a GCN composition at every level, and compares
three strategies on total hierarchy cost:

- ``granii``: per-level online decisions,
- ``frozen``: the level-0 decision applied to every level,
- ``optimal``: per-level hindsight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core import compile_model
from ..core.features import featurize_graph
from ..graphs import Graph, coarsen_hierarchy, load
from ..hardware import GraphStats, get_device
from ..framework import get_system
from .common import Workload, _engine_for, geomean, measured_plan_time, shape_env_for
from .report import render_table

__all__ = ["ChangingSparsity", "run"]


@dataclass
class ChangingSparsity:
    rows: List[Dict]
    granii_total: float
    frozen_total: float
    optimal_total: float

    @property
    def adaptivity_gain(self) -> float:
        """How much per-level re-decision buys over freezing level 0."""
        return self.frozen_total / self.granii_total

    def render(self) -> str:
        body = [
            [r["level"], r["nodes"], f"{r['avg_degree']:.1f}",
             r["granii"], r["optimal"],
             f"{1e3 * r['granii_ms']:.3f}", f"{1e3 * r['optimal_ms']:.3f}"]
            for r in self.rows
        ]
        body.append([
            "total", "", "", "", "",
            f"{1e3 * self.granii_total:.3f}",
            f"{1e3 * self.optimal_total:.3f}",
        ])
        return render_table(
            ["Level", "Nodes", "AvgDeg", "GRANII choice", "Optimal",
             "GRANII (ms)", "Optimal (ms)"],
            body,
            title="Changing sparsity across layers (coarsening hierarchy)",
        )


def run(
    graph_code: str = "RD",
    levels: int = 4,
    k1: int = 64,
    k2: int = 64,
    device: str = "h100",
    system: str = "dgl",
    scale: str = "default",
    iterations: int = 100,
) -> ChangingSparsity:
    base = load(graph_code, scale)
    hierarchy = coarsen_hierarchy(base, levels)
    graphs: List[Graph] = [base] + [level.graph for level in hierarchy]
    compiled = compile_model("gcn")
    dev = get_device(device)
    sys_ = get_system(system)
    engine = _engine_for(
        Workload("gcn", graph_code, k1, k2, system=system, device=device, scale=scale)
    )
    viable = compiled.viable(k1, k2)

    rows: List[Dict] = []
    granii_total = frozen_total = optimal_total = 0.0
    frozen_choice = None
    for level, graph in enumerate(graphs):
        env = shape_env_for(graph, "gcn", k1, k2)
        stats = GraphStats.from_graph(graph)
        times = [
            measured_plan_time(p.plan, env, dev, sys_, stats, iterations=iterations)
            for p in viable
        ]
        vec = featurize_graph(graph)
        preds = [engine.predict_plan_cost(p.plan, env, vec) for p in viable]
        chosen = int(np.argmin(preds))
        if frozen_choice is None:
            frozen_choice = chosen
        best = int(np.argmin(times))
        granii_total += times[chosen]
        frozen_total += times[frozen_choice]
        optimal_total += times[best]
        rows.append(
            {
                "level": level,
                "nodes": graph.num_nodes,
                "avg_degree": graph.avg_degree,
                "granii": viable[chosen].label,
                "optimal": viable[best].label,
                "granii_ms": times[chosen],
                "optimal_ms": times[best],
            }
        )
    return ChangingSparsity(rows, granii_total, frozen_total, optimal_total)
