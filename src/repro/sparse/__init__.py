"""Sparse matrix substrate: CSR/COO storage and structural operations."""

from .coo import COOMatrix
from .csr import CSRMatrix, DiagonalMatrix
from .ops import (
    degree_vector,
    hstack_patterns,
    is_symmetric_pattern,
    permute,
    spspmul_diag,
    sym_norm_values,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "DiagonalMatrix",
    "degree_vector",
    "hstack_patterns",
    "is_symmetric_pattern",
    "permute",
    "spspmul_diag",
    "sym_norm_values",
]
