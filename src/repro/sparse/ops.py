"""Structural sparse-matrix operations shared across the stack.

These are *pattern-level* helpers (permutation, symmetry checks, degree
normalization) as opposed to the numeric kernels in :mod:`repro.kernels`.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, DiagonalMatrix

__all__ = [
    "permute",
    "is_symmetric_pattern",
    "degree_vector",
    "sym_norm_values",
    "spspmul_diag",
    "hstack_patterns",
]


def permute(mat: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetrically permute a square matrix: ``P A P^T``."""
    perm = np.asarray(perm, dtype=np.int64)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError("permute expects a square matrix")
    if perm.shape[0] != mat.shape[0]:
        raise ValueError("permutation has wrong length")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0])
    rows, cols, vals = mat.to_coo()
    return CSRMatrix.from_coo(
        inv[rows], inv[cols],
        vals if mat.is_weighted else None,
        mat.shape, sum_duplicates=False,
    )


def is_symmetric_pattern(mat: CSRMatrix) -> bool:
    """Whether the sparsity pattern is symmetric (undirected graph)."""
    if mat.shape[0] != mat.shape[1]:
        return False
    t = mat.transpose()
    return (
        np.array_equal(mat.indptr, t.indptr)
        and np.array_equal(mat.indices, t.indices)
    )


def degree_vector(mat: CSRMatrix, direction: str = "out") -> np.ndarray:
    """Degrees of the adjacency matrix, as floats.

    ``out`` counts stored entries per row, ``in`` per column.  For weighted
    matrices the values are summed instead of counted (weighted degree).
    """
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    if mat.values is None:
        if direction == "out":
            return mat.row_degrees().astype(np.float64)
        return mat.col_degrees().astype(np.float64)
    if direction == "out":
        return np.add.reduceat(
            np.concatenate([mat.values, [0.0]]),
            np.minimum(mat.indptr[:-1], mat.nnz),
        ) * (mat.row_degrees() > 0)
    return np.bincount(mat.indices, weights=mat.values, minlength=mat.shape[1])


def sym_norm_values(adj: CSRMatrix) -> np.ndarray:
    """Per-edge values of ``D^{-1/2} A D^{-1/2}`` without materialising it.

    This is the SDDMM-style precomputation of GCN's normalized adjacency
    (Equation 3 of the paper): each stored entry (i, j) becomes
    ``a_ij / sqrt(d_i * d_j)``.
    """
    deg = degree_vector(adj, "out")
    d_inv_sqrt = DiagonalMatrix(deg).power(-0.5).diag
    rows = adj.row_ids()
    return adj.effective_values() * d_inv_sqrt[rows] * d_inv_sqrt[adj.indices]


def spspmul_diag(left: DiagonalMatrix, mat: CSRMatrix, right: DiagonalMatrix) -> CSRMatrix:
    """Compute ``diag(l) @ A @ diag(r)`` keeping A's pattern."""
    return mat.scale_rows(left.diag).scale_cols(right.diag)


def hstack_patterns(mats) -> CSRMatrix:
    """Horizontally stack CSR matrices (used by TAGCN's hop concatenation)."""
    mats = list(mats)
    if not mats:
        raise ValueError("need at least one matrix")
    nrows = mats[0].shape[0]
    if any(m.shape[0] != nrows for m in mats):
        raise ValueError("row counts differ")
    offsets = np.cumsum([0] + [m.shape[1] for m in mats])
    rows = np.concatenate([m.row_ids() for m in mats])
    cols = np.concatenate(
        [m.indices + off for m, off in zip(mats, offsets[:-1])]
    )
    weighted = any(m.is_weighted for m in mats)
    vals = (
        np.concatenate([m.effective_values() for m in mats]) if weighted else None
    )
    return CSRMatrix.from_coo(
        rows, cols, vals, (nrows, int(offsets[-1])), sum_duplicates=False
    )
