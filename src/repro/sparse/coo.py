"""COO (triplet) sparse matrices.

COO is the interchange format used by the graph generators (which naturally
emit edge lists) and by the sampling code.  Computation kernels always run
on :class:`~repro.sparse.csr.CSRMatrix`; ``COOMatrix.to_csr`` is the bridge.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix as (rows, cols, values) triplets."""

    __slots__ = ("rows", "cols", "values", "shape")

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: Optional[np.ndarray],
        shape: Tuple[int, int],
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be 1-D arrays of equal length")
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != rows.shape:
                raise ValueError("values must align with rows/cols")
        self.rows = rows
        self.cols = cols
        self.values = values
        self.shape = (int(shape[0]), int(shape[1]))

    @property
    def nnz(self) -> int:
        return int(self.rows.shape[0])

    def to_csr(self, sum_duplicates: bool = True) -> CSRMatrix:
        return CSRMatrix.from_coo(
            self.rows, self.cols, self.values, self.shape,
            sum_duplicates=sum_duplicates,
        )

    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        n: int,
        values: Optional[np.ndarray] = None,
        symmetrize: bool = False,
    ) -> "COOMatrix":
        """Build an adjacency COO from an edge list.

        With ``symmetrize`` the reverse edges are appended, which is how the
        undirected evaluation graphs of the paper are materialised.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if symmetrize:
            keep = src != dst
            src2 = np.concatenate([src, dst[keep]])
            dst2 = np.concatenate([dst, src[keep]])
            vals = None
            if values is not None:
                values = np.asarray(values, np.float64)
                vals = np.concatenate([values, values[keep]])
            return cls(src2, dst2, vals, (n, n))
        return cls(src, dst, values, (n, n))

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    def __repr__(self) -> str:  # pragma: no cover
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
