"""Compressed Sparse Row matrices.

This module implements the sparse-matrix substrate that the rest of the
reproduction builds on.  GRANII's primitives (g-SpMM, g-SDDMM) consume the
adjacency matrix of the input graph in CSR form; the matrix IR additionally
distinguishes *weighted* sparse matrices (values per non-zero), *unweighted*
ones (structure only, every stored entry is an implicit 1) and *diagonal*
matrices (Table I of the paper).

The implementation is NumPy-backed and deliberately self-contained: no
scipy.sparse objects are used internally, although conversions are provided
so tests can cross-check against scipy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import config
from ..errors import GraniiInputError

__all__ = ["CSRMatrix", "DiagonalMatrix"]


class CSRMatrix:
    """A sparse matrix in CSR format.

    Parameters
    ----------
    indptr:
        Row pointer array of length ``nrows + 1``.
    indices:
        Column indices, sorted within each row.
    values:
        Per-nonzero values, or ``None`` for an unweighted (pattern-only)
        matrix whose stored entries are all implicitly ``1.0``.
    shape:
        ``(nrows, ncols)``.
    """

    __slots__ = ("indptr", "indices", "values", "shape", "_aux")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: Optional[np.ndarray],
        shape: Tuple[int, int],
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraniiInputError("indptr and indices must be 1-D arrays")
        if len(shape) != 2:
            raise GraniiInputError("shape must be a (nrows, ncols) pair")
        nrows, ncols = int(shape[0]), int(shape[1])
        if indptr.shape[0] != nrows + 1:
            raise GraniiInputError(
                f"indptr has length {indptr.shape[0]}, expected {nrows + 1}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise GraniiInputError(
                f"indptr must start at 0 and end at nnz={indices.shape[0]}; "
                f"got indptr[0]={int(indptr[0])}, indptr[-1]={int(indptr[-1])}"
            )
        # O(N)/O(E) structural checks; a negative or >= ncols column
        # index would otherwise wrap around silently in every kernel's
        # fancy-indexing.  Skippable for trusted, hot construction paths
        # via REPRO_SKIP_VALIDATION=1.
        if not config.skip_validation():
            if np.any(np.diff(indptr) < 0):
                bad = int(np.argmax(np.diff(indptr) < 0))
                raise GraniiInputError(
                    f"indptr must be non-decreasing; it drops at row {bad} "
                    f"({int(indptr[bad])} -> {int(indptr[bad + 1])})"
                )
            if indices.size:
                lo, hi = int(indices.min()), int(indices.max())
                if lo < 0 or hi >= ncols:
                    offender = lo if lo < 0 else hi
                    raise GraniiInputError(
                        f"column index {offender} out of range for a matrix "
                        f"with {ncols} columns; NumPy indexing would wrap "
                        f"negative indices around silently"
                    )
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != indices.shape:
                raise GraniiInputError(
                    f"values has shape {values.shape}, expected "
                    f"{indices.shape} to align with the nonzero pattern"
                )
        self.indptr = indptr
        self.indices = indices
        self.values = values
        self.shape = (nrows, ncols)
        # memoised auxiliary structures (row ids, degrees, transpose, ...).
        # The pattern is immutable after construction, so these never need
        # invalidation; they turn the O(E) setup the kernels used to pay on
        # *every* call into a one-time cost per matrix.
        self._aux: dict = {}

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.shape[0])

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (0 for an empty matrix)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def is_weighted(self) -> bool:
        return self.values is not None

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row (memoised; treat as read-only)."""
        deg = self._aux.get("row_degrees")
        if deg is None:
            deg = np.diff(self.indptr)
            self._aux["row_degrees"] = deg
        return deg

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column (memoised; treat as read-only)."""
        deg = self._aux.get("col_degrees")
        if deg is None:
            deg = np.bincount(self.indices, minlength=self.shape[1]).astype(
                np.int64
            )
            self._aux["col_degrees"] = deg
        return deg

    def row_ids(self) -> np.ndarray:
        """Expanded row index per stored entry (COO row array).

        Memoised on the instance; treat the result as read-only.
        """
        rows = self._aux.get("row_ids")
        if rows is None:
            rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), self.row_degrees()
            )
            self._aux["row_ids"] = rows
        return rows

    def effective_values(self) -> np.ndarray:
        """Values array, materialising implicit ones for unweighted matrices.

        For weighted matrices this is the live ``values`` array (as
        before); for unweighted ones the all-ones array is memoised, so
        repeated kernel calls stop paying an O(E) allocation.  Treat the
        result as read-only in both cases.
        """
        if self.values is not None:
            return self.values
        ones = self._aux.get("effective_values")
        if ones is None:
            ones = np.ones(self.nnz, dtype=np.float64)
            self._aux["effective_values"] = ones
        return ones

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: Optional[np.ndarray],
        shape: Tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build a CSR matrix from COO triplets.

        Duplicate coordinates are summed when ``sum_duplicates`` is true
        (for unweighted input, duplicates are simply collapsed).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        nrows, ncols = int(shape[0]), int(shape[1])
        if not config.skip_validation():
            if rows.size and (rows.min() < 0 or rows.max() >= nrows):
                bad = int(rows.min()) if rows.min() < 0 else int(rows.max())
                raise GraniiInputError(
                    f"row index {bad} out of range for {nrows} rows"
                )
            if cols.size and (cols.min() < 0 or cols.max() >= ncols):
                bad = int(cols.min()) if cols.min() < 0 else int(cols.max())
                raise GraniiInputError(
                    f"column index {bad} out of range for {ncols} columns"
                )
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        vals = None if values is None else np.asarray(values, np.float64)[order]
        if sum_duplicates and rows.size:
            keys = rows * np.int64(ncols) + cols
            uniq_mask = np.empty(rows.shape, dtype=bool)
            uniq_mask[0] = True
            np.not_equal(keys[1:], keys[:-1], out=uniq_mask[1:])
            if not uniq_mask.all():
                group_ids = np.cumsum(uniq_mask) - 1
                rows = rows[uniq_mask]
                cols = cols[uniq_mask]
                if vals is not None:
                    vals = np.bincount(group_ids, weights=vals)
        # bincount returns the platform intp (int32 on 32-bit builds);
        # pin to int64 so nnz near/above 2**31 cannot wrap in the cumsum
        counts = np.bincount(rows, minlength=nrows).astype(np.int64, copy=False)
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, cols, vals, (nrows, ncols))

    @classmethod
    def from_dense(cls, dense: np.ndarray, keep_explicit_zeros: bool = False) -> "CSRMatrix":
        """Build a weighted CSR matrix from a dense array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        if keep_explicit_zeros:
            rows, cols = np.indices(dense.shape)
            rows, cols = rows.ravel(), cols.ravel()
        else:
            rows, cols = np.nonzero(dense)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def eye(cls, n: int, values: Optional[np.ndarray] = None) -> "CSRMatrix":
        """Identity-pattern matrix; optionally with per-diagonal values."""
        idx = np.arange(n, dtype=np.int64)
        indptr = np.arange(n + 1, dtype=np.int64)
        vals = None if values is None else np.asarray(values, np.float64).copy()
        return cls(indptr, idx, vals, (n, n))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.row_ids(), self.indices] = self.effective_values()
        return out

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (rows, cols, values) with implicit ones materialised."""
        return self.row_ids(), self.indices.copy(), self.effective_values().copy()

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (test cross-checking only)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.effective_values(), self.indices, self.indptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        mat = mat.tocsr()
        return cls(
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            np.asarray(mat.data, dtype=np.float64),
            mat.shape,
        )

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def with_values(self, values: Optional[np.ndarray]) -> "CSRMatrix":
        """Same pattern with new per-nonzero values (or None for unweighted)."""
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != self.indices.shape:
                raise ValueError("values must align with the nonzero pattern")
        result = CSRMatrix(self.indptr, self.indices, values, self.shape)
        # the pattern is shared, so pattern-derived auxiliaries carry over
        for key in ("row_degrees", "col_degrees", "row_ids"):
            if key in self._aux:
                result._aux[key] = self._aux[key]
        return result

    def unweighted(self) -> "CSRMatrix":
        """Drop values, keeping only the sparsity pattern."""
        return self.with_values(None)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, again in CSR form (i.e. CSC of self).

        Memoised: the autograd backward pass transposes the adjacency on
        every iteration, so the O(E log E) sort is paid once per matrix.
        The cached transpose links back to ``self``, making ``A.T.T is A``.
        """
        cached = self._aux.get("transpose")
        if cached is not None:
            return cached
        rows, cols, vals = self.row_ids(), self.indices, self.values
        order = np.lexsort((rows, cols))
        t_rows = cols[order]
        t_cols = rows[order]
        t_vals = None if vals is None else vals[order]
        counts = np.bincount(t_rows, minlength=self.shape[1]).astype(
            np.int64, copy=False
        )
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        result = CSRMatrix(indptr, t_cols, t_vals, (self.shape[1], self.shape[0]))
        self._aux["transpose"] = result
        result._aux["transpose"] = self
        return result

    def add_self_loops(self) -> "CSRMatrix":
        """Return A + I on the pattern (paper's Ã); existing loops are kept once.

        For weighted matrices the inserted loop entries get value 1.0 added.
        """
        n = min(self.shape)
        if self.shape[0] != self.shape[1]:
            raise ValueError("self loops require a square matrix")
        rows, cols, vals = self.to_coo()
        loop = np.arange(n, dtype=np.int64)
        all_rows = np.concatenate([rows, loop])
        all_cols = np.concatenate([cols, loop])
        if self.values is None:
            merged = CSRMatrix.from_coo(all_rows, all_cols, None, self.shape)
            return merged
        all_vals = np.concatenate([vals, np.ones(n)])
        return CSRMatrix.from_coo(all_rows, all_cols, all_vals, self.shape)

    def submatrix(self, row_idx: np.ndarray, col_idx: np.ndarray) -> "CSRMatrix":
        """Extract the (row_idx × col_idx) submatrix (used by sampling).

        Fully vectorised: the selected rows' edge slices are gathered in
        one indexed load instead of a Python loop over rows (this is the
        hot path of GraphSAGE's neighborhood sampling).
        """
        row_idx = np.asarray(row_idx, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        col_map = -np.ones(self.shape[1], dtype=np.int64)
        col_map[col_idx] = np.arange(col_idx.shape[0])
        starts = self.indptr[row_idx]
        counts = self.indptr[row_idx + 1] - starts
        offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        # per-edge source position: the row's start plus the edge's offset
        # within its row
        gather = np.repeat(starts - offsets[:-1], counts) + np.arange(
            total, dtype=np.int64
        )
        mapped = col_map[self.indices[gather]]
        keep = mapped >= 0
        rows = np.repeat(
            np.arange(row_idx.shape[0], dtype=np.int64), counts
        )[keep]
        cols = mapped[keep]
        vals = None if self.values is None else self.values[gather][keep]
        return CSRMatrix.from_coo(
            rows, cols, vals, (row_idx.shape[0], col_idx.shape[0]),
            sum_duplicates=False,
        )

    def scale_rows(self, d: np.ndarray) -> "CSRMatrix":
        """Return diag(d) @ self as a weighted CSR matrix."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[0],):
            raise ValueError("row scaling vector has wrong length")
        vals = self.effective_values() * np.repeat(d, self.row_degrees())
        return self.with_values(vals)

    def scale_cols(self, d: np.ndarray) -> "CSRMatrix":
        """Return self @ diag(d) as a weighted CSR matrix."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[1],):
            raise ValueError("column scaling vector has wrong length")
        vals = self.effective_values() * d[self.indices]
        return self.with_values(vals)

    def bandwidth(self) -> int:
        """Maximum |row - col| over stored entries (a locality feature)."""
        if self.nnz == 0:
            return 0
        return int(np.max(np.abs(self.row_ids() - self.indices)))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, {kind})"

    def __getstate__(self):
        # the memo cache is derived data (and the transpose link is a
        # reference cycle) — rebuild lazily after unpickling instead
        return (self.indptr, self.indices, self.values, self.shape)

    def __setstate__(self, state) -> None:
        self.indptr, self.indices, self.values, self.shape = state
        self._aux = {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        if not (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        ):
            return False
        if (self.values is None) != (other.values is None):
            return False
        if self.values is None:
            return True
        return np.allclose(self.values, other.values)

    __hash__ = None  # mutable-ish container


class DiagonalMatrix:
    """A diagonal matrix stored as its diagonal vector.

    The paper's IR rewrite (Appendix C) replaces row-broadcast operations
    with multiplications by diagonal matrices, which is what unlocks the
    SDDMM-based normalization precomputation for GCN.  This class is the
    runtime value backing those IR leaves.
    """

    __slots__ = ("diag",)

    def __init__(self, diag: np.ndarray) -> None:
        diag = np.asarray(diag, dtype=np.float64)
        if diag.ndim != 1:
            raise ValueError("diagonal must be a vector")
        self.diag = diag

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.diag.shape[0]
        return (n, n)

    @property
    def n(self) -> int:
        return self.diag.shape[0]

    def to_dense(self) -> np.ndarray:
        return np.diag(self.diag)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.eye(self.n, self.diag)

    def inv(self) -> "DiagonalMatrix":
        """Pseudo-inverse: zeros on the diagonal stay zero."""
        out = np.zeros_like(self.diag)
        nz = self.diag != 0
        out[nz] = 1.0 / self.diag[nz]
        return DiagonalMatrix(out)

    def power(self, p: float) -> "DiagonalMatrix":
        """Element-wise power, mapping 0 -> 0 (used for D^(-1/2))."""
        out = np.zeros_like(self.diag)
        nz = self.diag != 0
        out[nz] = np.power(self.diag[nz], p)
        return DiagonalMatrix(out)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DiagonalMatrix(n={self.n})"
