"""Synthetic graph generators.

These generators replace the paper's SuiteSparse/DGL/OGB downloads.  Each
one targets a *structure class* that drives GRANII's decisions differently:
density, degree skew, and locality are the attributes its featurizer and
cost models consume, so the generators are parameterised to span the same
regimes as the paper's evaluation graphs (Table II).

All generators return an undirected, unweighted :class:`Graph` with a
symmetric adjacency pattern and no self-loops (models add Ã = A + I
themselves, as in the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse import COOMatrix
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "rmat",
    "barabasi_albert",
    "road_mesh",
    "mycielskian",
    "sbm_communities",
    "overlapping_cliques",
    "star",
    "path",
    "complete",
    "empty_graph",
    "single_node",
    "isolated_union",
    "self_loop_cycle",
    "duplicated_edges",
    "disconnected_cliques",
]


def _finalize(src: np.ndarray, dst: np.ndarray, n: int, name: str) -> Graph:
    """Symmetrize, deduplicate and drop self-loops."""
    keep = src != dst
    coo = COOMatrix.from_edges(src[keep], dst[keep], n, symmetrize=True)
    return Graph(coo.to_csr().unweighted(), name=name)


def erdos_renyi(n: int, avg_degree: float, seed: int = 0) -> Graph:
    """G(n, m) uniform random graph with the requested average degree."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return _finalize(src, dst, n, f"er_{n}")


def rmat(
    n: int,
    avg_degree: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: Optional[str] = None,
) -> Graph:
    """Recursive-matrix (R-MAT) generator — skewed power-law graphs.

    The (a, b, c, d) quadrant probabilities control skew; the defaults are
    the classic Graph500 parameters, giving Reddit/ogbn-products-like
    degree distributions.
    """
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(max(n, 2))))
    size = 1 << scale
    m = int(n * avg_degree / 2)
    probs = np.array([a, b, c, 1.0 - a - b - c])
    if np.any(probs < 0):
        raise ValueError("quadrant probabilities must be non-negative")
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        quad = rng.choice(4, size=m, p=probs)
        half = size >> (level + 1)
        src += np.where((quad == 2) | (quad == 3), half, 0)
        dst += np.where((quad == 1) | (quad == 3), half, 0)
    # Fold indices beyond n back into range to keep exactly n nodes.
    src %= n
    dst %= n
    return _finalize(src, dst, n, name or f"rmat_{n}")


def barabasi_albert(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential attachment — power-law with milder skew than R-MAT."""
    if attach < 1 or attach >= n:
        raise ValueError("attach must be in [1, n)")
    rng = np.random.default_rng(seed)
    # Repeated-endpoint list trick: sampling uniformly from the endpoint
    # list is equivalent to degree-proportional sampling.
    endpoints = list(range(attach + 1)) * 2
    src_list = []
    dst_list = []
    for v in range(attach + 1, n):
        targets = rng.choice(len(endpoints), size=attach, replace=False)
        chosen = {endpoints[t] for t in targets}
        for u in chosen:
            src_list.append(v)
            dst_list.append(u)
            endpoints.append(u)
            endpoints.append(v)
    return _finalize(
        np.array(src_list, dtype=np.int64),
        np.array(dst_list, dtype=np.int64),
        n,
        f"ba_{n}",
    )


def road_mesh(n: int, diagonal_prob: float = 0.1, seed: int = 0) -> Graph:
    """A 2-D grid with occasional diagonals — belgium_osm-like road network.

    Low, nearly-uniform degree; huge diameter; tiny density; high locality
    (small bandwidth) — the opposite end of the feature space from R-MAT.
    """
    rng = np.random.default_rng(seed)
    side = int(np.floor(np.sqrt(n)))
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    diag_src = idx[:-1, :-1].ravel()
    diag_dst = idx[1:, 1:].ravel()
    keep = rng.random(diag_src.shape[0]) < diagonal_prob
    src = np.concatenate([right_src, down_src, diag_src[keep]])
    dst = np.concatenate([right_dst, down_dst, diag_dst[keep]])
    return _finalize(src, dst, n, f"mesh_{side}x{side}")


def mycielskian(k: int) -> Graph:
    """The Mycielskian construction M_k — exactly the paper's MC family.

    Starting from K2 (= M_2), each step maps G=(V,E) with n nodes to a
    graph on 2n+1 nodes: a copy u_i of each v_i connected to v_i's
    neighbors, plus an apex node w adjacent to every u_i.  Triangle-free
    with growing chromatic number, and *extremely dense* for larger k —
    mycielskian17 in the paper has ~1% density at 98k nodes.
    """
    if k < 2:
        raise ValueError("mycielskian is defined for k >= 2")
    src = np.array([0], dtype=np.int64)
    dst = np.array([1], dtype=np.int64)
    n = 2
    for _ in range(k - 2):
        # vertices: 0..n-1 original, n..2n-1 copies, 2n apex
        copy_src = src + n
        copy_dst = dst
        copy_src2 = dst + n
        copy_dst2 = src
        apex_src = np.full(n, 2 * n, dtype=np.int64)
        apex_dst = np.arange(n, 2 * n, dtype=np.int64)
        src = np.concatenate([src, copy_src, copy_src2, apex_src])
        dst = np.concatenate([dst, copy_dst, copy_dst2, apex_dst])
        n = 2 * n + 1
    return _finalize(src, dst, n, f"mycielskian{k}")


def sbm_communities(
    n: int,
    num_communities: int,
    avg_degree: float,
    p_in_over_p_out: float = 20.0,
    seed: int = 0,
) -> Graph:
    """Stochastic block model — com-Amazon-like community structure.

    Also plants ``labels`` (the community assignment) on the graph so
    end-to-end training examples have a learnable signal.
    """
    rng = np.random.default_rng(seed)
    membership = rng.integers(0, num_communities, size=n)
    m = int(n * avg_degree / 2)
    frac_in = p_in_over_p_out / (p_in_over_p_out + 1.0)
    m_in = int(m * frac_in)
    # Intra-community edges: pick a community weighted by its size, then two
    # members of it.
    order = np.argsort(membership, kind="stable")
    sorted_members = membership[order]
    starts = np.searchsorted(sorted_members, np.arange(num_communities))
    ends = np.searchsorted(sorted_members, np.arange(num_communities), side="right")
    sizes = ends - starts
    comm_probs = sizes / sizes.sum()
    comm = rng.choice(num_communities, size=m_in, p=comm_probs)
    lo, hi = starts[comm], ends[comm]
    src_in = order[lo + (rng.random(m_in) * (hi - lo)).astype(np.int64)]
    dst_in = order[lo + (rng.random(m_in) * (hi - lo)).astype(np.int64)]
    # Inter-community (and a few coincidental intra) edges: uniform pairs.
    m_out = m - m_in
    src_out = rng.integers(0, n, size=m_out)
    dst_out = rng.integers(0, n, size=m_out)
    graph = _finalize(
        np.concatenate([src_in, src_out]),
        np.concatenate([dst_in, dst_out]),
        n,
        f"sbm_{n}",
    )
    graph.labels = membership
    return graph


def overlapping_cliques(
    n: int, clique_size: int, cliques_per_node: float = 1.2, seed: int = 0
) -> Graph:
    """Union of random cliques — coAuthorsCiteseer-like collaboration graph."""
    rng = np.random.default_rng(seed)
    num_cliques = int(n * cliques_per_node / clique_size)
    src_list, dst_list = [], []
    for _ in range(max(num_cliques, 1)):
        size = max(2, int(rng.poisson(clique_size)))
        members = rng.choice(n, size=min(size, n), replace=False)
        iu, ju = np.triu_indices(members.shape[0], k=1)
        src_list.append(members[iu])
        dst_list.append(members[ju])
    return _finalize(
        np.concatenate(src_list), np.concatenate(dst_list), n, f"cliques_{n}"
    )


def star(n: int) -> Graph:
    """Hub node 0 connected to everything — worst-case degree skew."""
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return _finalize(src, dst, n, f"star_{n}")


def path(n: int) -> Graph:
    """A simple path — minimal density, maximal diameter."""
    src = np.arange(n - 1, dtype=np.int64)
    return _finalize(src, src + 1, n, f"path_{n}")


def complete(n: int) -> Graph:
    """K_n — maximal density."""
    iu, ju = np.triu_indices(n, k=1)
    return _finalize(iu.astype(np.int64), ju.astype(np.int64), n, f"k{n}")


# ----------------------------------------------------------------------
# Adversarial generators (differential plan verification, repro.verify).
#
# Each one targets a structural edge case that has historically broken
# sparse kernels: empty rows, fully empty patterns, explicit self-loops,
# duplicate input edges, and disconnected regions.  They are *inputs* to
# the equivalence battery, not evaluation graphs.
# ----------------------------------------------------------------------


def empty_graph(n: int) -> Graph:
    """``n`` nodes and zero edges — every CSR row is empty."""
    if n < 1:
        raise ValueError("empty_graph needs at least one node")
    return _finalize(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), n, f"empty_{n}"
    )


def single_node() -> Graph:
    """The one-node, zero-edge graph — the smallest valid input."""
    g = empty_graph(1)
    g.name = "single_node"
    return g


def isolated_union(n_connected: int, n_isolated: int, avg_degree: float = 4.0,
                   seed: int = 0) -> Graph:
    """An Erdős–Rényi core plus ``n_isolated`` zero-degree nodes.

    Zero-degree rows exercise empty-segment reductions and zero-degree
    normalisation (``0^-1/2`` must map to 0, not inf).
    """
    core = erdos_renyi(n_connected, avg_degree, seed=seed)
    rows, cols, _ = core.adj.to_coo()
    n = n_connected + n_isolated
    return _finalize(rows, cols, n, f"isolated_{n_connected}+{n_isolated}")


def self_loop_cycle(n: int) -> Graph:
    """A cycle where every node also carries an explicit self-loop.

    The standard generators strip loops (models add Ã = A + I
    themselves); this one keeps them, so ``add_self_loops`` must merge
    rather than duplicate and degree counts include the loop.
    """
    if n < 2:
        raise ValueError("self_loop_cycle needs at least two nodes")
    idx = np.arange(n, dtype=np.int64)
    nxt = (idx + 1) % n
    coo = COOMatrix.from_edges(
        np.concatenate([idx, idx]), np.concatenate([nxt, idx]), n, symmetrize=False
    )
    # symmetrize the cycle edges by hand, keeping exactly one loop per node
    rows = np.concatenate([coo.rows, nxt])
    cols = np.concatenate([coo.cols, idx])
    adj = COOMatrix(rows, cols, None, (n, n)).to_csr().unweighted()
    return Graph(adj, name=f"loops_{n}")


def duplicated_edges(n: int, avg_degree: float = 4.0, copies: int = 3,
                     seed: int = 0) -> Graph:
    """A random graph whose edge list repeats every edge ``copies`` times.

    Duplicate COO input must collapse to a single stored entry per
    coordinate on the unweighted pattern (CSR construction dedups).
    """
    if copies < 2:
        raise ValueError("duplicated_edges wants copies >= 2")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = np.tile(rng.integers(0, n, size=m), copies)
    dst = np.tile(rng.integers(0, n, size=m), copies)
    return _finalize(src, dst, n, f"dup_{n}x{copies}")


def disconnected_cliques(num_components: int, component_size: int) -> Graph:
    """Disjoint K_c components — block-diagonal, reducible adjacency."""
    if num_components < 1 or component_size < 2:
        raise ValueError("need at least one component of size >= 2")
    iu, ju = np.triu_indices(component_size, k=1)
    src_list = []
    dst_list = []
    for c in range(num_components):
        base = c * component_size
        src_list.append(iu.astype(np.int64) + base)
        dst_list.append(ju.astype(np.int64) + base)
    n = num_components * component_size
    return _finalize(
        np.concatenate(src_list), np.concatenate(dst_list), n,
        f"cliques{num_components}x{component_size}",
    )
