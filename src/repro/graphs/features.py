"""Structural graph features for GRANII's input featurizer (paper §IV-E1).

The featurizer must be cheap — it runs once per input graph at runtime and
its cost is part of GRANII's reported overhead — so every feature below is
O(N + E) and vectorised.  The features capture exactly the attributes the
paper argues drive primitive cost: size, density, degree distribution
shape (skew/imbalance matters for scatter/atomic kernels), and locality.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .graph import Graph

__all__ = ["GRAPH_FEATURE_NAMES", "graph_feature_vector", "graph_feature_dict"]

GRAPH_FEATURE_NAMES: List[str] = [
    "log_nodes",
    "log_edges",
    "log_density",
    "avg_degree",
    "log_avg_degree",
    "max_degree_ratio",
    "degree_cv",
    "degree_gini",
    "frac_isolated",
    "frac_high_degree",
    "bandwidth_ratio",
    "row_imbalance",
]


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree inequality)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    n = sorted_vals.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * sorted_vals).sum() - (n + 1) * total) / (n * total))


def graph_feature_dict(graph: Graph) -> Dict[str, float]:
    """All structural features as a name -> value mapping."""
    n = graph.num_nodes
    m = graph.num_edges
    deg = graph.degrees().astype(np.float64)
    avg = m / n if n else 0.0
    max_deg = float(deg.max()) if n else 0.0
    std = float(deg.std()) if n else 0.0
    adj = graph.adj
    if m:
        bandwidth = float(np.abs(adj.row_ids() - adj.indices).mean())
    else:
        bandwidth = 0.0
    # Load imbalance of the CSR rows: share of edges owned by the busiest
    # 1% of rows — what atomics-based kernels serialise on.
    if n and m:
        top = max(1, n // 100)
        busiest = np.partition(deg, n - top)[n - top :]
        row_imbalance = float(busiest.sum() / m)
    else:
        row_imbalance = 0.0
    return {
        "log_nodes": float(np.log1p(n)),
        "log_edges": float(np.log1p(m)),
        "log_density": float(np.log(m / (n * n))) if n and m else -30.0,
        "avg_degree": float(avg),
        "log_avg_degree": float(np.log1p(avg)),
        "max_degree_ratio": float(max_deg / avg) if avg else 0.0,
        "degree_cv": float(std / avg) if avg else 0.0,
        "degree_gini": _gini(deg),
        "frac_isolated": float((deg == 0).mean()) if n else 0.0,
        "frac_high_degree": float((deg > 4 * avg).mean()) if avg else 0.0,
        "bandwidth_ratio": float(bandwidth / n) if n else 0.0,
        "row_imbalance": row_imbalance,
    }


def graph_feature_vector(graph: Graph) -> np.ndarray:
    """Features in ``GRAPH_FEATURE_NAMES`` order, as a float vector."""
    d = graph_feature_dict(graph)
    return np.array([d[name] for name in GRAPH_FEATURE_NAMES])
