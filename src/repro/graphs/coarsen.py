"""Graph coarsening — the changing-sparsity-across-layers substrate.

§VI-F of the paper notes that while the evaluated models keep the
adjacency fixed across layers, classes of GNNs exist whose layer inputs
change sparsity (hierarchical/pooling models); GRANII handles them by
re-running only its online component per layer.  This module provides
that substrate: heavy-edge-matching coarsening, producing a hierarchy of
progressively smaller and *denser* graphs, plus the projection matrices
that move node features between levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..sparse import CSRMatrix
from .graph import Graph

__all__ = ["CoarseLevel", "coarsen", "coarsen_hierarchy"]


@dataclass
class CoarseLevel:
    """One coarsening step: the coarse graph plus the node assignment."""

    graph: Graph
    # membership[v] = coarse node id of fine node v
    membership: np.ndarray

    @property
    def num_coarse_nodes(self) -> int:
        return self.graph.num_nodes

    def pool_matrix(self) -> CSRMatrix:
        """The (coarse × fine) mean-pooling matrix P with P·X pooling
        fine node features into coarse node features."""
        fine = self.membership.shape[0]
        counts = np.bincount(self.membership, minlength=self.num_coarse_nodes)
        values = 1.0 / counts[self.membership]
        return CSRMatrix.from_coo(
            self.membership,
            np.arange(fine, dtype=np.int64),
            values,
            (self.num_coarse_nodes, fine),
        )


def _heavy_edge_matching(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Greedy matching: each unmatched node pairs with an unmatched
    neighbor (highest-degree-first visit order), isolated/unmatched nodes
    become singletons."""
    n = graph.num_nodes
    adj = graph.adj
    match = -np.ones(n, dtype=np.int64)
    visit = np.argsort(graph.degrees(), kind="stable")[::-1]
    for node in visit:
        if match[node] >= 0:
            continue
        start, stop = adj.indptr[node], adj.indptr[node + 1]
        partner = -1
        for neighbor in adj.indices[start:stop]:
            if match[neighbor] < 0 and neighbor != node:
                partner = int(neighbor)
                break
        if partner >= 0:
            match[node] = partner
            match[partner] = node
        else:
            match[node] = node
    # assign coarse ids
    membership = -np.ones(n, dtype=np.int64)
    next_id = 0
    for node in range(n):
        if membership[node] >= 0:
            continue
        membership[node] = next_id
        membership[match[node]] = next_id
        next_id += 1
    return membership


def coarsen(graph: Graph, seed: int = 0) -> CoarseLevel:
    """One heavy-edge-matching coarsening step (roughly halves the nodes).

    Coarse edges are the union of fine edges between distinct coarse
    nodes (self-edges collapse away); the coarse graph is denser than the
    fine one, which is what flips composition decisions across levels.
    """
    rng = np.random.default_rng(seed)
    membership = _heavy_edge_matching(graph, rng)
    num_coarse = int(membership.max()) + 1
    rows, cols, _ = graph.adj.to_coo()
    c_rows = membership[rows]
    c_cols = membership[cols]
    keep = c_rows != c_cols
    coarse_adj = CSRMatrix.from_coo(
        c_rows[keep], c_cols[keep], None, (num_coarse, num_coarse)
    ).unweighted()
    coarse = Graph(coarse_adj, name=f"{graph.name}|coarse{num_coarse}")
    return CoarseLevel(coarse, membership)


def coarsen_hierarchy(
    graph: Graph, levels: int, seed: int = 0, min_nodes: int = 8
) -> List[CoarseLevel]:
    """A hierarchy of ``levels`` coarsening steps (stops early if tiny)."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    out: List[CoarseLevel] = []
    current = graph
    for i in range(levels):
        if current.num_nodes <= min_nodes:
            break
        level = coarsen(current, seed=seed + i)
        out.append(level)
        current = level.graph
    if not out:
        raise ValueError("graph too small to coarsen")
    return out
