"""Graph partitioning and reordering — WiseGraph's substrate technique.

WiseGraph's headline optimization is a joint workload partition of the
graph and its operations, which improves the locality (and hence
efficiency) of its sparse kernels.  This module implements the substrate:
a balanced BFS-grown k-way partitioner, quality metrics (edge cut,
balance), a degree-based reordering, and an efficiency estimator that
turns partition quality into the sparse-kernel time multiplier the
``wisegraph`` system personality applies (≈0.88 on the evaluation
graphs).

It also provides the row-shard planner used by the process-parallel
``spmm_sharded`` strategy: contiguous, nnz-balanced row ranges plus
per-shard halo (boundary-column) statistics that feed the engine's
per-shard plan selection.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .graph import Graph

__all__ = [
    "bfs_partition",
    "edge_cut_fraction",
    "partition_balance",
    "degree_reorder",
    "estimate_partition_efficiency",
    "plan_row_shards",
    "shard_boundary_stats",
]


def _expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of ``frontier``, vectorized multi-range gather."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # positions of each row's slice inside the flat gather
    shifts = np.repeat(starts - np.concatenate(([0], np.cumsum(counts[:-1]))), counts)
    return indices[shifts + np.arange(total, dtype=np.int64)]


def bfs_partition(graph: Graph, num_parts: int, seed: int = 0) -> np.ndarray:
    """Balanced k-way partition by breadth-first region growing.

    Each part grows wave-by-wave from a single seed up to the target
    size; BFS growth keeps each part locally connected, which is what
    yields low edge cuts on graphs with locality (meshes, communities)
    and high cuts on expanders.  Frontier expansion is fully vectorized
    (one multi-range gather per wave instead of a Python loop per edge).

    Components never reached by any part's growth — isolated nodes and
    small components of disconnected graphs — are round-robined across
    the least-loaded parts afterwards, one whole component at a time, so
    disconnected inputs still come out balanced instead of piling into
    the last part.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_nodes
    if num_parts >= n:
        return np.arange(n, dtype=np.int64) % num_parts
    rng = np.random.default_rng(seed)
    membership = -np.ones(n, dtype=np.int64)
    target = int(np.ceil(n / num_parts))
    adj = graph.adj
    indptr = adj.indptr
    indices = adj.indices
    order = rng.permutation(n)
    cursor = 0
    for part in range(num_parts):
        size = 0
        frontier = np.empty(0, dtype=np.int64)
        while size < target:
            frontier = frontier[membership[frontier] < 0]
            if frontier.size == 0:
                while cursor < n and membership[order[cursor]] >= 0:
                    cursor += 1
                if cursor >= n:
                    break
                frontier = np.asarray([order[cursor]], dtype=np.int64)
            if frontier.size > target - size:
                # deterministic truncation: keep the lowest node ids
                frontier = frontier[: target - size]
            membership[frontier] = part
            size += int(frontier.size)
            neighbors = _expand_frontier(indptr, indices, frontier)
            if neighbors.size:
                frontier = np.unique(neighbors[membership[neighbors] < 0])
            else:
                frontier = np.empty(0, dtype=np.int64)
    _assign_unreached(membership, indptr, indices, num_parts)
    return membership


def _assign_unreached(
    membership: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    num_parts: int,
) -> None:
    """Round-robin unreached components across the least-loaded parts.

    Whole components stay together (no extra cut edges); larger
    components are placed first so the cyclic assignment stays balanced.
    """
    unreached = np.flatnonzero(membership < 0)
    if unreached.size == 0:
        return
    claimed = membership >= 0
    components = []
    for seed in unreached:
        if claimed[seed]:
            continue
        claimed[seed] = True
        component = [np.asarray([seed], dtype=np.int64)]
        frontier = component[0]
        while frontier.size:
            neighbors = _expand_frontier(indptr, indices, frontier)
            frontier = np.unique(neighbors[~claimed[neighbors]]) if neighbors.size \
                else np.empty(0, dtype=np.int64)
            if frontier.size:
                claimed[frontier] = True
                component.append(frontier)
        components.append(np.concatenate(component))
    components.sort(key=lambda c: (-c.size, int(c.min())))
    counts = np.bincount(membership[membership >= 0], minlength=num_parts).astype(
        np.int64
    )
    ranked = np.argsort(counts, kind="stable")
    for i, component in enumerate(components):
        membership[component] = int(ranked[i % num_parts])


def edge_cut_fraction(graph: Graph, membership: np.ndarray) -> float:
    """Fraction of stored edges whose endpoints lie in different parts."""
    membership = np.asarray(membership)
    if membership.shape[0] != graph.num_nodes:
        raise ValueError("one part id per node required")
    if graph.num_edges == 0:
        return 0.0
    rows = graph.adj.row_ids()
    cols = graph.adj.indices
    return float((membership[rows] != membership[cols]).mean())


def partition_balance(membership: np.ndarray, num_parts: int) -> float:
    """Largest part size over the ideal size (1.0 = perfectly balanced)."""
    counts = np.bincount(membership, minlength=num_parts)
    ideal = membership.shape[0] / num_parts
    return float(counts.max() / ideal) if ideal else 1.0


def degree_reorder(graph: Graph, descending: bool = True) -> np.ndarray:
    """A permutation ordering nodes by degree (hub-first locality trick)."""
    deg = graph.degrees()
    order = np.argsort(deg, kind="stable")
    return order[::-1].copy() if descending else order


def estimate_partition_efficiency(
    graph: Graph, num_parts: int = 8, seed: int = 0,
    max_gain: float = 0.2,
) -> float:
    """Sparse-kernel time multiplier a partition-aware system achieves.

    Intra-part edges hit cached rows; cut edges do not.  A partition
    keeping fraction ``(1 - cut)`` of edges internal saves up to
    ``max_gain`` of sparse-kernel time:

        efficiency = 1 - max_gain · (1 - cut) · (balance_penalty)

    This is the model behind the wisegraph personality's ≈0.88 sparse
    efficiency constant: on the evaluation graphs the BFS partitioner
    keeps most edges internal at good balance.
    """
    membership = bfs_partition(graph, num_parts, seed=seed)
    cut = edge_cut_fraction(graph, membership)
    balance = partition_balance(membership, num_parts)
    balance_penalty = 1.0 / balance  # imbalance erodes the benefit
    return float(1.0 - max_gain * (1.0 - cut) * balance_penalty)


# ----------------------------------------------------------------------
# Row-shard planning for the process-parallel SpMM backend
# ----------------------------------------------------------------------
def plan_row_shards(indptr: np.ndarray, num_shards: int) -> np.ndarray:
    """Contiguous, nnz-balanced row-shard bounds for sharded SpMM.

    Returns an int64 array of ``num_shards + 1`` non-decreasing row
    bounds with ``bounds[0] == 0`` and ``bounds[-1] == num_rows``; shard
    ``i`` owns rows ``[bounds[i], bounds[i+1])``.  Bounds are placed so
    each shard holds roughly ``nnz / num_shards`` edges (row splits only
    — rows are never broken across shards, which is what preserves the
    bitwise row-reduction contract of the inner kernels).  Shards with
    zero rows are legal output on pathological degree distributions; the
    executor must tolerate them, not renumber them away.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.shape[0] < 1:
        raise ValueError("indptr must be a 1-D array with at least one entry")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = int(indptr.shape[0]) - 1
    nnz = int(indptr[-1])
    if nnz == 0:
        # edgeless graph: fall back to row-balanced bounds
        return np.round(np.linspace(0, n, num_shards + 1)).astype(np.int64)
    targets = np.arange(1, num_shards, dtype=np.float64) * (nnz / num_shards)
    interior = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    bounds = np.concatenate(
        (np.zeros(1, dtype=np.int64), interior, np.asarray([n], dtype=np.int64))
    )
    np.maximum.accumulate(bounds, out=bounds)
    np.clip(bounds, 0, n, out=bounds)
    return bounds


def shard_boundary_stats(
    indptr: np.ndarray, indices: np.ndarray, bounds: np.ndarray
) -> Dict[str, np.ndarray]:
    """Per-shard size and halo statistics for a row-shard plan.

    For square adjacencies, an edge is *halo* when its column falls
    outside its row's shard — the worker must read that feature row from
    another shard's range (served zero-copy from the shared feature
    segment, but a locality miss all the same).  Returns per-shard
    arrays: ``rows``, ``nnz``, ``halo_nnz``, and ``halo_fraction``
    (0.0 for empty shards).  All vectorized; O(nnz).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    bounds = np.asarray(bounds, dtype=np.int64)
    num_shards = bounds.shape[0] - 1
    shard_nnz = np.diff(indptr[bounds])
    if indices.size:
        row_shard = np.repeat(np.arange(num_shards, dtype=np.int64), shard_nnz)
        col_shard = np.searchsorted(bounds, indices, side="right") - 1
        halo = col_shard != row_shard
        halo_nnz = np.bincount(row_shard[halo], minlength=num_shards)
    else:
        halo_nnz = np.zeros(num_shards, dtype=np.int64)
    with np.errstate(divide="ignore", invalid="ignore"):
        fraction = np.where(shard_nnz > 0, halo_nnz / np.maximum(shard_nnz, 1), 0.0)
    return {
        "rows": np.diff(bounds),
        "nnz": shard_nnz,
        "halo_nnz": halo_nnz,
        "halo_fraction": fraction,
    }
