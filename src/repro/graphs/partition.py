"""Graph partitioning and reordering — WiseGraph's substrate technique.

WiseGraph's headline optimization is a joint workload partition of the
graph and its operations, which improves the locality (and hence
efficiency) of its sparse kernels.  This module implements the substrate:
a balanced BFS-grown k-way partitioner, quality metrics (edge cut,
balance), a degree-based reordering, and an efficiency estimator that
turns partition quality into the sparse-kernel time multiplier the
``wisegraph`` system personality applies (≈0.88 on the evaluation
graphs).
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "bfs_partition",
    "edge_cut_fraction",
    "partition_balance",
    "degree_reorder",
    "estimate_partition_efficiency",
]


def bfs_partition(graph: Graph, num_parts: int, seed: int = 0) -> np.ndarray:
    """Balanced k-way partition by breadth-first region growing.

    Parts are grown one at a time from unassigned seed nodes up to the
    target size; BFS growth keeps each part locally connected, which is
    what yields low edge cuts on graphs with locality (meshes,
    communities) and high cuts on expanders.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_nodes
    if num_parts >= n:
        return np.arange(n, dtype=np.int64) % num_parts
    rng = np.random.default_rng(seed)
    membership = -np.ones(n, dtype=np.int64)
    target = int(np.ceil(n / num_parts))
    adj = graph.adj
    order = rng.permutation(n)
    cursor = 0
    for part in range(num_parts):
        size = 0
        queue: deque = deque()
        while size < target:
            if not queue:
                # find the next unassigned seed
                while cursor < n and membership[order[cursor]] >= 0:
                    cursor += 1
                if cursor >= n:
                    break
                queue.append(order[cursor])
            node = queue.popleft()
            if membership[node] >= 0:
                continue
            membership[node] = part
            size += 1
            start, stop = adj.indptr[node], adj.indptr[node + 1]
            for neighbor in adj.indices[start:stop]:
                if membership[neighbor] < 0:
                    queue.append(int(neighbor))
    membership[membership < 0] = num_parts - 1
    return membership


def edge_cut_fraction(graph: Graph, membership: np.ndarray) -> float:
    """Fraction of stored edges whose endpoints lie in different parts."""
    membership = np.asarray(membership)
    if membership.shape[0] != graph.num_nodes:
        raise ValueError("one part id per node required")
    if graph.num_edges == 0:
        return 0.0
    rows = graph.adj.row_ids()
    cols = graph.adj.indices
    return float((membership[rows] != membership[cols]).mean())


def partition_balance(membership: np.ndarray, num_parts: int) -> float:
    """Largest part size over the ideal size (1.0 = perfectly balanced)."""
    counts = np.bincount(membership, minlength=num_parts)
    ideal = membership.shape[0] / num_parts
    return float(counts.max() / ideal) if ideal else 1.0


def degree_reorder(graph: Graph, descending: bool = True) -> np.ndarray:
    """A permutation ordering nodes by degree (hub-first locality trick)."""
    deg = graph.degrees()
    order = np.argsort(deg, kind="stable")
    return order[::-1].copy() if descending else order


def estimate_partition_efficiency(
    graph: Graph, num_parts: int = 8, seed: int = 0,
    max_gain: float = 0.2,
) -> float:
    """Sparse-kernel time multiplier a partition-aware system achieves.

    Intra-part edges hit cached rows; cut edges do not.  A partition
    keeping fraction ``(1 - cut)`` of edges internal saves up to
    ``max_gain`` of sparse-kernel time:

        efficiency = 1 - max_gain · (1 - cut) · (balance_penalty)

    This is the model behind the wisegraph personality's ≈0.88 sparse
    efficiency constant: on the evaluation graphs the BFS partitioner
    keeps most edges internal at good balance.
    """
    membership = bfs_partition(graph, num_parts, seed=seed)
    cut = edge_cut_fraction(graph, membership)
    balance = partition_balance(membership, num_parts)
    balance_penalty = 1.0 / balance  # imbalance erodes the benefit
    return float(1.0 - max_gain * (1.0 - cut) * balance_penalty)
