"""Dataset stand-ins mirroring the paper's evaluation graphs (Table II).

Each entry reproduces the *structure class* of one evaluation graph at a
scaled-down size, so that the whole evaluation runs on one CPU:

====  ==================  ===========================  ======================
Code  Paper graph         Structure class              Stand-in generator
====  ==================  ===========================  ======================
RD    Reddit              dense power-law              R-MAT, high avg degree
CA    com-Amazon          sparse communities           stochastic block model
MC    mycielskian17       very dense, triangle-free    exact Mycielskian M_k
BL    belgium_osm         road network                 2-D mesh w/ diagonals
AU    coAuthorsCiteseer   overlapping collaborations   random clique union
OP    ogbn-products       large power-law              R-MAT, mid avg degree
====  ==================  ===========================  ======================

The cost-model *training* pool (`training_graphs`) is disjoint from these,
matching the paper's train/test split over SuiteSparse graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .generators import (
    barabasi_albert,
    erdos_renyi,
    mycielskian,
    overlapping_cliques,
    rmat,
    road_mesh,
    sbm_communities,
)
from .graph import Graph

__all__ = [
    "EVALUATION_CODES",
    "load",
    "load_all",
    "training_graphs",
    "make_node_features",
    "train_val_test_masks",
]

# Scale factors: "small" for unit tests, "default" for the benchmark sweep.
_SCALES = {"small": 0.125, "default": 1.0}


def _reddit_like(scale: float) -> Graph:
    n = max(256, int(4096 * scale))
    g = rmat(n, avg_degree=100 * max(scale, 0.25), seed=11, name="reddit_like")
    return g


def _com_amazon_like(scale: float) -> Graph:
    n = max(256, int(8192 * scale))
    g = sbm_communities(n, num_communities=16, avg_degree=6.5, seed=22)
    g.name = "com_amazon_like"
    return g


def _mycielskian_like(scale: float) -> Graph:
    k = 12 if scale >= 1.0 else 9
    g = mycielskian(k)
    g.name = "mycielskian_like"
    return g


def _belgium_osm_like(scale: float) -> Graph:
    n = max(256, int(16384 * scale))
    g = road_mesh(n, diagonal_prob=0.08, seed=33)
    g.name = "belgium_osm_like"
    return g


def _coauthors_like(scale: float) -> Graph:
    n = max(256, int(4096 * scale))
    g = overlapping_cliques(n, clique_size=12, cliques_per_node=1.5, seed=44)
    g.name = "coauthors_like"
    return g


def _ogbn_products_like(scale: float) -> Graph:
    n = max(256, int(16384 * scale))
    g = rmat(n, avg_degree=50 * max(scale, 0.25), seed=55, name="ogbn_products_like")
    return g


_LOADERS: Dict[str, Callable[[float], Graph]] = {
    "RD": _reddit_like,
    "CA": _com_amazon_like,
    "MC": _mycielskian_like,
    "BL": _belgium_osm_like,
    "AU": _coauthors_like,
    "OP": _ogbn_products_like,
}

EVALUATION_CODES: Tuple[str, ...] = tuple(_LOADERS)

_CACHE: Dict[Tuple[str, str], Graph] = {}


def load(code: str, scale: str = "default") -> Graph:
    """Load one evaluation graph by its Table II code (cached)."""
    code = code.upper()
    if code not in _LOADERS:
        raise KeyError(f"unknown graph code {code!r}; choices: {EVALUATION_CODES}")
    if scale not in _SCALES:
        raise KeyError(f"unknown scale {scale!r}; choices: {tuple(_SCALES)}")
    key = (code, scale)
    if key not in _CACHE:
        _CACHE[key] = _LOADERS[code](_SCALES[scale])
    return _CACHE[key]


def load_all(scale: str = "default") -> List[Graph]:
    """All six evaluation graphs in Table II order."""
    return [load(code, scale) for code in EVALUATION_CODES]


def training_graphs(scale: str = "default", seed: int = 7) -> List[Graph]:
    """The disjoint pool used to train the cost models (paper §V).

    Spans the same density/skew regimes as the evaluation graphs but with
    different generators/seeds — no overlap with `load_all`.
    """
    s = _SCALES[scale]
    rng = np.random.default_rng(seed)
    pool: List[Graph] = []
    # Size bases bracket the evaluation graphs (tree-based cost models
    # interpolate well but extrapolate poorly, so the profiled pool must
    # cover the size/density ranges seen at selection time — the paper's
    # pool likewise spans 1M-100M nonzeros around its evaluation set).
    bases = [
        max(128, int(1024 * s)),
        max(256, int(4096 * s)),
        max(512, int(20480 * s)),
    ]
    for b, base in enumerate(bases):
        for i, avg_deg in enumerate([4, 24, 120]):
            pool.append(
                rmat(
                    base,
                    avg_degree=avg_deg,
                    seed=100 + 10 * b + i,
                    name=f"train_rmat_n{base}_d{avg_deg}",
                )
            )
        g = erdos_renyi(base, avg_degree=8, seed=200 + b)
        g.name = f"train_er_n{base}"
        pool.append(g)
    mid = bases[1]
    g = road_mesh(mid, diagonal_prob=0.15, seed=300)
    g.name = "train_mesh"
    pool.append(g)
    g = barabasi_albert(max(128, mid // 2), attach=8, seed=400)
    g.name = "train_ba"
    pool.append(g)
    g = overlapping_cliques(mid, clique_size=8, cliques_per_node=1.0, seed=500)
    g.name = "train_cliques"
    pool.append(g)
    g = mycielskian(11 if s >= 1.0 else 9)
    g.name = "train_mycielskian"
    pool.append(g)
    g = sbm_communities(mid, num_communities=8, avg_degree=12, seed=600)
    g.name = "train_sbm"
    pool.append(g)
    rng.shuffle(pool)
    return pool


def make_node_features(
    graph: Graph, dim: int, seed: int = 0, num_classes: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded node features + labels with a learnable planted signal.

    Labels come from the graph's planted communities when available,
    otherwise from a degree-quantile split; features are class-conditional
    Gaussians so even a linear model can beat chance, as with real
    attributed graphs.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    if graph.labels is not None:
        labels = np.asarray(graph.labels, dtype=np.int64)
        num_classes = int(labels.max()) + 1 if num_classes is None else num_classes
        labels = labels % num_classes
    else:
        num_classes = num_classes or 8
        deg = graph.degrees()
        quantiles = np.quantile(deg, np.linspace(0, 1, num_classes + 1)[1:-1])
        labels = np.searchsorted(quantiles, deg).astype(np.int64)
    centers = rng.standard_normal((num_classes, dim))
    feats = centers[labels] + 0.8 * rng.standard_normal((n, dim))
    return feats, labels


def train_val_test_masks(
    n: int, seed: int = 0, fractions: Tuple[float, float] = (0.6, 0.2)
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random 60/20/20 node masks for transductive training."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_train = int(fractions[0] * n)
    n_val = int(fractions[1] * n)
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    train[perm[:n_train]] = True
    val[perm[n_train : n_train + n_val]] = True
    test[perm[n_train + n_val :]] = True
    return train, val, test
