"""Graph sampling: node-induced subgraphs and neighborhood sampling.

Two uses in the paper: (1) §VI-E evaluates GRANII's decision stability on
random samples of sizes 1000/100/10, and (2) GraphSAGE requires
neighborhood (fanout) sampling during training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..sparse import CSRMatrix
from .graph import Graph

__all__ = [
    "sample_nodes",
    "neighbor_sample",
    "sample_fanout",
    "SampledBlock",
    "sample_blocks",
]


def sample_nodes(graph: Graph, size: int, rng: np.random.Generator) -> Graph:
    """A uniformly random node-induced subgraph of the given size."""
    size = min(size, graph.num_nodes)
    nodes = rng.choice(graph.num_nodes, size=size, replace=False)
    return graph.induced_subgraph(np.sort(nodes))


def neighbor_sample(
    adj: CSRMatrix, seeds: np.ndarray, fanout: int, rng: np.random.Generator
) -> CSRMatrix:
    """Sample up to ``fanout`` in-neighbors per seed.

    Returns a bipartite (len(seeds) × adj.ncols) CSR block whose row ``i``
    holds the sampled neighborhood of ``seeds[i]`` — the building block of
    GraphSAGE mini-batch training.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    out_rows: List[np.ndarray] = []
    out_cols: List[np.ndarray] = []
    for i, s in enumerate(seeds):
        start, stop = adj.indptr[s], adj.indptr[s + 1]
        neigh = adj.indices[start:stop]
        if neigh.shape[0] > fanout:
            neigh = rng.choice(neigh, size=fanout, replace=False)
        out_rows.append(np.full(neigh.shape[0], i, dtype=np.int64))
        out_cols.append(neigh)
    rows = np.concatenate(out_rows) if out_rows else np.empty(0, np.int64)
    cols = np.concatenate(out_cols) if out_cols else np.empty(0, np.int64)
    return CSRMatrix.from_coo(
        rows, cols, None, (seeds.shape[0], adj.shape[1]), sum_duplicates=False
    )


def sample_fanout(graph: Graph, fanout: int, rng: np.random.Generator) -> Graph:
    """A neighborhood-sampled copy: every node keeps ≤ ``fanout`` in-edges.

    This is the §VI-E sampling regime (sizes 1000/100/10): the node set is
    unchanged but each destination's neighborhood is capped, thinning
    dense graphs dramatically while leaving sparse ones nearly intact.
    """
    sampled = neighbor_sample(
        graph.adj, np.arange(graph.num_nodes, dtype=np.int64), fanout, rng
    )
    out = Graph(sampled, name=f"{graph.name}~fanout{fanout}")
    out.node_features = graph.node_features
    out.labels = graph.labels
    return out


@dataclass
class SampledBlock:
    """One layer's sampled computation block.

    ``adj`` maps input nodes (columns) to output nodes (rows); ``input_nodes``
    and ``output_nodes`` give the original node ids of columns and rows.
    """

    adj: CSRMatrix
    input_nodes: np.ndarray
    output_nodes: np.ndarray


def sample_blocks(
    graph: Graph,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    rng: np.random.Generator,
) -> List[SampledBlock]:
    """Multi-layer neighborhood sampling (innermost block first).

    Mirrors DGL's block sampling: starting from the seed nodes, each layer
    samples ``fanouts[l]`` neighbors, and blocks are returned in forward
    execution order (layer 0 consumes raw features).
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    blocks: List[SampledBlock] = []
    current = seeds
    for fanout in reversed(list(fanouts)):
        sampled = neighbor_sample(graph.adj, current, fanout, rng)
        # Include the seeds themselves so self-information survives
        # (the usual add-self-loop of sampled GCN aggregation).
        input_nodes = np.unique(np.concatenate([sampled.indices, current]))
        remap = -np.ones(graph.num_nodes, dtype=np.int64)
        remap[input_nodes] = np.arange(input_nodes.shape[0])
        block_adj = CSRMatrix(
            sampled.indptr,
            remap[sampled.indices],
            None,
            (current.shape[0], input_nodes.shape[0]),
        )
        blocks.append(SampledBlock(block_adj, input_nodes, current))
        current = input_nodes
    blocks.reverse()
    return blocks
