"""Graph substrate: container, generators, datasets, sampling, features."""

from .datasets import (
    EVALUATION_CODES,
    load,
    load_all,
    make_node_features,
    train_val_test_masks,
    training_graphs,
)
from .features import GRAPH_FEATURE_NAMES, graph_feature_dict, graph_feature_vector
from .generators import (
    barabasi_albert,
    complete,
    erdos_renyi,
    mycielskian,
    overlapping_cliques,
    path,
    rmat,
    road_mesh,
    sbm_communities,
    star,
)
from .coarsen import CoarseLevel, coarsen, coarsen_hierarchy
from .graph import Graph
from .partition import (
    bfs_partition,
    degree_reorder,
    edge_cut_fraction,
    estimate_partition_efficiency,
    partition_balance,
)
from .sampling import (
    SampledBlock,
    neighbor_sample,
    sample_blocks,
    sample_fanout,
    sample_nodes,
)

__all__ = [
    "EVALUATION_CODES",
    "GRAPH_FEATURE_NAMES",
    "Graph",
    "SampledBlock",
    "barabasi_albert",
    "bfs_partition",
    "CoarseLevel",
    "coarsen",
    "coarsen_hierarchy",
    "complete",
    "degree_reorder",
    "edge_cut_fraction",
    "erdos_renyi",
    "estimate_partition_efficiency",
    "partition_balance",
    "graph_feature_dict",
    "graph_feature_vector",
    "load",
    "load_all",
    "make_node_features",
    "mycielskian",
    "neighbor_sample",
    "overlapping_cliques",
    "path",
    "rmat",
    "road_mesh",
    "sample_blocks",
    "sample_fanout",
    "sample_nodes",
    "sbm_communities",
    "star",
    "train_val_test_masks",
    "training_graphs",
]
