"""The Graph container consumed by models and by GRANII's runtime."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparse import CSRMatrix, is_symmetric_pattern

__all__ = ["Graph"]


class Graph:
    """An (optionally weighted) graph over a square adjacency matrix.

    The adjacency convention matches the kernels: ``adj[i, j]`` stored means
    an edge from source ``j`` to destination ``i``, so ``adj @ X`` aggregates
    neighbor features at each destination.  For the undirected evaluation
    graphs the distinction is moot (the pattern is symmetric).
    """

    def __init__(
        self,
        adj: CSRMatrix,
        name: str = "graph",
        node_features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        if adj.shape[0] != adj.shape[1]:
            raise ValueError("graph adjacency must be square")
        self.adj = adj
        self.name = name
        self.node_features = node_features
        self.labels = labels
        self._with_loops: Optional[CSRMatrix] = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adj.shape[0]

    @property
    def num_edges(self) -> int:
        return self.adj.nnz

    @property
    def density(self) -> float:
        return self.adj.density

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_nodes if self.num_nodes else 0.0

    def degrees(self) -> np.ndarray:
        return self.adj.row_degrees()

    def is_undirected(self) -> bool:
        return is_symmetric_pattern(self.adj)

    def adj_with_self_loops(self) -> CSRMatrix:
        """Ã = A + I, cached — every evaluated model starts from this."""
        if self._with_loops is None:
            self._with_loops = self.adj.add_self_loops()
        return self._with_loops

    # ------------------------------------------------------------------
    def with_features(
        self, node_features: np.ndarray, labels: Optional[np.ndarray] = None
    ) -> "Graph":
        """A copy of this graph carrying node features (and labels)."""
        node_features = np.asarray(node_features, dtype=np.float64)
        if node_features.shape[0] != self.num_nodes:
            raise ValueError("one feature row per node required")
        out = Graph(self.adj, self.name, node_features, labels)
        out._with_loops = self._with_loops
        return out

    def induced_subgraph(self, nodes: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Node-induced subgraph (used by Figure 9's sampling study)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        sub_adj = self.adj.submatrix(nodes, nodes)
        feats = None if self.node_features is None else self.node_features[nodes]
        labels = None if self.labels is None else self.labels[nodes]
        return Graph(sub_adj, name or f"{self.name}[{nodes.shape[0]}]", feats, labels)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Graph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, density={self.density:.2e})"
        )
