"""Segmented reductions over CSR row boundaries.

Every row-wise reduction in the kernel layer goes through
:func:`segment_reduce`, so all execution strategies (``row_segment``,
``blocked``, ``blocked_parallel``, ``spmm_sharded``, ``spmm_fused``)
share one accumulation order and stay mutually bitwise-identical no
matter how a caller partitions the edge range into spans: the result for
a segment is a pure function of that segment's contents.

The implementation is *not* ``ufunc.reduceat``.  ``reduceat`` pays a
per-segment dispatch that dominates g-SpMM wall-clock on real graphs
(mean degree ~16 means hundreds of thousands of tiny reductions), and
its internal accumulation order is an implementation detail that varies
with operand width — unreproducible outside of ``reduceat`` itself.
Instead:

- segments longer than ``_FOLD_BIG`` edges reduce with one
  ``ufunc.reduce`` call each (few such segments; each call is a long
  vectorised reduction);
- the many short segments reduce *lockstep*: segments are ranked by
  length so the still-active ones always form a prefix, and one
  vectorised ``ufunc`` call per edge-position folds the s-th edge of
  every active segment at once — a left-to-right sequential fold per
  segment, in CSR edge order.

Empty segments yield the identity (``reduceat`` instead returns the
element *at* the boundary, one of the reasons this wrapper exists).
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_reduce"]

# Segments longer than this use one ufunc.reduce call; at or below it they
# join the lockstep fold.  The split is keyed on segment length alone, so
# a segment reduces identically regardless of which caller or span it
# arrives in.
_FOLD_BIG = 128


def segment_reduce(
    values: np.ndarray,
    indptr: np.ndarray,
    ufunc,
    identity: float,
) -> np.ndarray:
    """Reduce ``values`` within each ``[indptr[i], indptr[i+1])`` segment.

    Works for 1-D ``values`` (per-edge scalars) and 2-D ``values`` (per-edge
    feature rows); reduction is along axis 0.  Empty segments yield
    ``identity``.
    """
    n = indptr.shape[0] - 1
    out_shape = (n,) + values.shape[1:]
    out = np.full(out_shape, identity, dtype=np.float64)
    lengths = np.diff(indptr)
    # rank segments by length (desc, stable) so the segments still active
    # at fold step s are exactly the prefix [0, count(length > s))
    order = np.argsort(-lengths, kind="stable")
    ordered_len = lengths[order]
    ordered_start = np.asarray(indptr[:-1])[order]
    neg_len = -ordered_len
    nonempty = int(np.searchsorted(neg_len, 0, side="left"))
    if nonempty == 0:
        return out
    nbig = int(np.searchsorted(neg_len, -_FOLD_BIG, side="left"))
    for i in range(nbig):
        s0 = int(ordered_start[i])
        out[order[i]] = ufunc.reduce(values[s0 : s0 + int(ordered_len[i])], axis=0)
    if nonempty > nbig:
        # seed with each segment's first edge, then fold edge s into every
        # segment that still has one — sequential per segment, vectorised
        # across segments
        acc = values[ordered_start[nbig:nonempty]]
        s = 1
        while True:
            active = int(np.searchsorted(neg_len, -s, side="left"))
            if active <= nbig:
                break
            ufunc(
                acc[: active - nbig],
                values[ordered_start[nbig:active] + s],
                out=acc[: active - nbig],
            )
            s += 1
        out[order[nbig:nonempty]] = acc
    return out
