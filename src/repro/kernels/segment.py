"""Segmented reductions over CSR row boundaries.

``ufunc.reduceat`` has awkward semantics for empty segments (it returns the
element *at* the boundary instead of the identity), so every row-wise
reduction in the kernel layer goes through :func:`segment_reduce`, which
reduces only the non-empty rows and fills empty rows with the identity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_reduce"]


def segment_reduce(
    values: np.ndarray,
    indptr: np.ndarray,
    ufunc,
    identity: float,
) -> np.ndarray:
    """Reduce ``values`` within each ``[indptr[i], indptr[i+1])`` segment.

    Works for 1-D ``values`` (per-edge scalars) and 2-D ``values`` (per-edge
    feature rows); reduction is along axis 0.  Empty segments yield
    ``identity``.
    """
    n = indptr.shape[0] - 1
    out_shape = (n,) + values.shape[1:]
    out = np.full(out_shape, identity, dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if nonempty.size:
        # Starts are strictly increasing and in-range, so each reduceat
        # segment spans exactly one non-empty row (empty rows between two
        # non-empty rows contribute no elements).
        starts = indptr[nonempty]
        out[nonempty] = ufunc.reduceat(values, starts, axis=0)
    return out
