"""Row- and column-broadcast primitives (Equation 1 of the paper).

``row_broadcast(d, B)`` computes ``c[i, j] = d[i] * b[i, j]`` — multiplying
every row of a dense matrix by a per-row scalar.  It is the primitive GCN's
dynamic normalization uses, and the one the IR rewrite (Appendix C)
re-expresses as multiplication by a diagonal matrix to unlock further
re-association.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_broadcast", "col_broadcast", "row_broadcast_flops"]


def row_broadcast(d: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``diag(d) @ B`` realised as a broadcasted multiply."""
    d = np.asarray(d, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if d.ndim != 1:
        raise ValueError("broadcast vector must be 1-D")
    if b.ndim != 2 or b.shape[0] != d.shape[0]:
        raise ValueError(f"row_broadcast shape mismatch: {d.shape} vs {b.shape}")
    return d[:, None] * b


def col_broadcast(b: np.ndarray, d: np.ndarray) -> np.ndarray:
    """``B @ diag(d)`` realised as a broadcasted multiply."""
    d = np.asarray(d, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if d.ndim != 1:
        raise ValueError("broadcast vector must be 1-D")
    if b.ndim != 2 or b.shape[1] != d.shape[0]:
        raise ValueError(f"col_broadcast shape mismatch: {b.shape} vs {d.shape}")
    return b * d[None, :]


def row_broadcast_flops(n: int, k: int) -> int:
    """One multiply per output cell; complexity O(N·K) (Figure 3)."""
    return n * k
