"""Sparse × sparse multiplication (SpGEMM).

Neither DGL nor WiseGraph exposes an SpGEMM kernel, so the paper's
association rules never form sparse·sparse products (§IV-C); this module
provides the kernel as an *optional* extension
(``compile_model(..., spgemm=True)``), which lets GRANII consider
materialising propagation powers — e.g. SGC's Ñ² — as a one-time setup
in exchange for a single (denser) aggregation per iteration.  Whether
that trade wins is sharply input-dependent: powers of sparse
road-network adjacencies stay sparse, powers of dense graphs explode.

The kernel delegates to SciPy's CSR multiplication (the
high-performance-library role MKL/cuSPARSE play for the paper's
backends).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["spgemm", "spgemm_output_nnz_estimate", "sampled_power_nnz"]


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """``A @ B`` for two sparse matrices, as a weighted CSR matrix."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"spgemm shape mismatch: {a.shape} @ {b.shape}")
    product = a.to_scipy() @ b.to_scipy()
    product.sum_duplicates()
    product.eliminate_zeros()
    return CSRMatrix.from_scipy(product)


def spgemm_output_nnz_estimate(
    n: int, nnz_a: int, nnz_b: int, damping: float = 0.7
) -> int:
    """Input-oblivious estimate of ``nnz(A @ B)``.

    The expected fill of a random-pattern product is about
    ``nnz_a · (nnz_b / n)`` (every stored (i,k) meets the k-th row of B),
    damped for collision overlap and capped at the dense size.  The
    online selector uses this estimate; the true count is only known
    after actually running the setup.
    """
    if n <= 0:
        return 0
    expected = nnz_a * (nnz_b / n) * damping
    return int(min(expected, float(n) * n))


def sampled_power_nnz(
    adj: CSRMatrix,
    depth: int = 2,
    sample_fraction: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Input-inspecting estimate of ``nnz(A^depth)`` by row sampling.

    Multiplying a random row sample of A^(depth-1) by A and scaling the
    count gives an unbiased fill estimate at a tiny fraction of the full
    SpGEMM cost — the same inspect-cheaply philosophy as GRANII's graph
    featurizer, and far more accurate than the oblivious formula on
    structured graphs (disjoint cliques, meshes).
    """
    if depth < 2:
        return adj.nnz
    rng = rng or np.random.default_rng(0)
    n = adj.shape[0]
    sample = max(1, int(sample_fraction * n))
    rows = np.sort(rng.choice(n, size=sample, replace=False))
    current = adj.submatrix(rows, np.arange(n, dtype=np.int64))
    for _ in range(depth - 1):
        current = spgemm(current, adj)
    return int(round(current.nnz * (n / sample)))
