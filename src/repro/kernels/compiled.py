"""Fused straight-line execution of a compiled plan segment (codegen v2).

The interpreter executes a selected plan one step at a time through
``dispatch_kernel``, materialising every intermediate: a GCN layer's
``relu(D' · (A · (D' · (X · W))))`` tail costs three full ``(N, K)``
round-trips through memory *after* the aggregation itself.  This module
provides the fused alternative: :func:`gspmm_fused` streams the whole
SpMM + row-broadcast + element-wise chain through **one pass over the
CSR row-block tiles**, applying the pre-aggregation scale inside the
edge gather and the post-aggregation epilogues to each output row-span
while it is still cache-resident.  No per-step message array, no
intermediate ``(N, K)`` materialisations, no per-step dispatch.

Which steps may legally fuse is proven statically by
:func:`repro.analysis.planlint.fusion_legality` (single-consumer SSA
chains, alias/in-place-hazard facts, workspace-lifetime balance);
:func:`repro.core.codegen.compile_plan` consults that verdict and lowers
a promoted plan to a schedule of ordinary steps plus
``FusedSegment`` entries that land here.

Determinism
-----------
``gspmm_fused`` is **bitwise equal** to running the same chain
step-by-step through ``row_segment`` (or ``blocked``) kernels, for any
``block_nnz``:

- the pre-scale is materialised once per *node* into arena scratch as
  ``d[:, None] * x`` — every edge then gathers ``d[src] * x[src]``,
  element-for-element the same IEEE products the interpreter's
  ``row_broadcast`` step produces, paying the multiply once per node
  instead of once per edge;
- row reductions replay exactly the accumulation order of
  ``segment_reduce`` (the invariant ``tests/test_determinism.py`` pins):
  the weighted path calls it per span, and the gather-fold fast path
  (``copy_rhs``, or ``mul`` over an implicitly-ones unweighted
  adjacency) re-implements the identical fold while fetching operands
  straight from ``x`` — no message tile at all;
- epilogues (mean finalisation, output row scaling, unary
  non-linearities) are element-wise, so applying them per row-span is
  bit-identical to applying them to the full output afterwards.

All scratch is drawn from a :class:`~repro.kernels.workspace.WorkspaceArena`
and released on the exception edge with ``drop_buffers()`` — the same
leak contract the guard's fallback ladder relies on when it demotes a
compiled plan to ``blocked``.  The ``alloc-in-compiled`` lint rule
enforces that this module allocates scratch only through the arena.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sparse import CSRMatrix
from .blocked import (
    _BINARY_UFUNCS,
    _promote,
    default_block_nnz,
    max_span_nnz,
    row_block_spans,
)
from .dense import elu, leaky_relu, relu, sigmoid
from .segment import _FOLD_BIG, segment_reduce
from .semiring import Semiring, get_semiring
from .workspace import WorkspaceArena

__all__ = ["FUSABLE_NONLINEARS", "gspmm_fused"]

# unary element-wise steps the fused epilogue can replay bit-identically
# to the interpreter's _apply_nonlinear (numpy mode)
FUSABLE_NONLINEARS = ("relu", "leaky_relu", "elu", "sigmoid")

_NONLINEAR_FNS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "elu": elu,
    "sigmoid": sigmoid,
}


def _apply_epilogues(
    view: np.ndarray,
    r0: int,
    r1: int,
    epilogues: Sequence[Tuple[str, object]],
) -> None:
    """Apply the post-aggregation chain to one output row-span in place.

    ``("scale", d)`` replays ``row_broadcast(d, ·)`` on rows [r0, r1);
    ``("nonlinear", name)`` replays the named unary non-linearity.  Both
    are element-wise, so per-span application is bitwise identical to the
    interpreter's whole-array steps.
    """
    for kind, payload in epilogues:
        if kind == "scale":
            np.multiply(payload[r0:r1, None], view, out=view)
        elif kind == "nonlinear":
            if payload == "relu":
                np.maximum(view, 0.0, out=view)
            else:
                # same dense function the interpreter calls; the copy-back
                # keeps the span update in place without changing a bit
                view[:] = _NONLINEAR_FNS[payload](view)
        else:
            raise ValueError(f"unknown epilogue kind {kind!r}")


def _gather_fold(
    adj: CSRMatrix,
    x: np.ndarray,
    ufunc,
    identity: float,
    out: np.ndarray,
    workspace: WorkspaceArena,
) -> None:
    """Row-segment fold that gathers straight from ``x`` — no message tile.

    When every message is a plain row of ``x`` (``copy_rhs``, or ``mul``
    over an implicitly-ones unweighted adjacency), materialising the
    ``(nnz, k)`` message array — even tiled — is a full write + re-read
    of the edge volume for nothing.  This fold replays *exactly* the
    accumulation :func:`~repro.kernels.segment.segment_reduce` performs
    (same ``_FOLD_BIG`` split, same per-segment ``ufunc.reduce`` for long
    rows, same lockstep left-to-right fold for short ones), but each
    operand is fetched as ``x[cols[...]]`` at the moment it is folded.
    Same values, same order — bitwise-identical output, one less pass
    over the edges.
    """
    indptr, cols = adj.indptr, adj.indices
    lengths = np.diff(indptr)
    order = np.argsort(-lengths, kind="stable")
    ordered_len = lengths[order]
    ordered_start = np.asarray(indptr[:-1])[order]
    neg_len = -ordered_len
    nonempty = int(np.searchsorted(neg_len, 0, side="left"))
    out[order[nonempty:]] = identity
    if nonempty == 0:
        return
    nbig = int(np.searchsorted(neg_len, -_FOLD_BIG, side="left"))
    for i in range(nbig):
        s0 = int(ordered_start[i])
        out[order[i]] = ufunc.reduce(
            x[cols[s0 : s0 + int(ordered_len[i])]], axis=0
        )
    if nonempty > nbig:
        acc = workspace.request((nonempty - nbig, x.shape[1]), slot=2)
        np.take(x, cols[ordered_start[nbig:nonempty]], axis=0, out=acc)
        s = 1
        while True:
            active = int(np.searchsorted(neg_len, -s, side="left"))
            if active <= nbig:
                break
            ufunc(
                acc[: active - nbig],
                x[cols[ordered_start[nbig:active] + s]],
                out=acc[: active - nbig],
            )
            s += 1
        out[order[nbig:nonempty]] = acc


def gspmm_fused(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    block_nnz: Optional[int] = None,
    workspace: Optional[WorkspaceArena] = None,
    pre_scale: Optional[np.ndarray] = None,
    epilogues: Sequence[Tuple[str, object]] = (),
) -> np.ndarray:
    """One-pass fused g-SpMM with optional pre-scale and epilogue chain.

    With no ``pre_scale``/``epilogues`` this is a streaming drop-in for
    ``gspmm_blocked`` (and is what the bare ``spmm_fused`` strategy
    runs).  With them, it executes a whole compiled plan segment::

        epilogues(segment_reduce(edge ⊗ (pre_scale ⊙ x[cols])))

    in one pass over the CSR tiles:

    - ``pre_scale``: per-source-node vector (the fused form of a
      preceding ``row_broadcast``), materialised once into arena scratch
      before the tile loop — one multiply per node, not per edge;
      requires a semiring whose ⊗ reads the dense operand.
    - ``epilogues``: ordered ``("scale", d)`` / ``("nonlinear", name)``
      entries applied to each output row-span right after its reduction
      (and after mean finalisation), while the span is cache-hot.

    Scratch comes from ``workspace`` (a private arena when omitted) and
    is released via ``drop_buffers()`` if any tile raises, so a guard
    demotion never inherits a poisoned arena.
    """
    if semiring is None:
        semiring = get_semiring()
    x = _promote(x)
    binary = semiring.binary
    if binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(
            f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}"
        )
    if pre_scale is not None:
        if not binary.uses_rhs:
            raise ValueError(
                f"pre-scale fusion needs a semiring that reads the dense "
                f"operand; {semiring.name!r} ignores it"
            )
        pre_scale = np.asarray(pre_scale, dtype=np.float64).reshape(-1)
        if pre_scale.shape[0] != adj.shape[1]:
            raise ValueError(
                f"pre-scale length {pre_scale.shape[0]} does not match "
                f"source-node count {adj.shape[1]}"
            )
    for kind, payload in epilogues:
        if kind == "scale":
            if np.asarray(payload).shape != (adj.shape[0],):
                raise ValueError(
                    "epilogue scale vector must have one entry per output row"
                )
        elif kind == "nonlinear":
            if payload not in _NONLINEAR_FNS:
                raise ValueError(f"unknown epilogue nonlinearity {payload!r}")
        else:
            raise ValueError(f"unknown epilogue kind {kind!r}")
    if block_nnz is None:
        block_nnz = default_block_nnz()
    if workspace is None:
        workspace = WorkspaceArena()
    n, k = adj.shape[0], x.shape[1]
    # result buffer, returned to the caller — the arena only owns
    # per-tile scratch  # lint: allow(raw-alloc-in-kernels, alloc-in-compiled)
    out = np.empty((n, k), dtype=np.float64)
    reduce_op = semiring.reduce
    identity = 0.0 if reduce_op.is_mean else reduce_op.identity
    degf = None
    if reduce_op.is_mean:
        degf = np.maximum(adj.row_degrees(), 1).astype(np.float64)
    spans = row_block_spans(adj.indptr, block_nnz)
    cap = max_span_nnz(adj.indptr, spans)
    # input inspection: an unweighted adjacency's edge values are
    # implicitly 1.0, and IEEE multiplication by 1.0 is a bitwise
    # identity — the ⊗ pass can be skipped without changing a single
    # output bit (the step-by-step kernels pay it; fusion's win)
    copies_rhs = binary.name == "copy_rhs" or (
        binary.name == "mul" and not adj.is_weighted
    )
    try:
        if pre_scale is not None and adj.nnz:
            # one multiply per node, not per edge: every edge's message is
            # d[src] * x[src] either way — identical IEEE products to the
            # interpreter's materialised row_broadcast step
            scaled = workspace.request((x.shape[0], k), slot=1)
            np.multiply(pre_scale[:, None], x, out=scaled)
            x = scaled
        if copies_rhs:
            # every message is a plain row of x, so the reduction gathers
            # straight from x and the message tile never exists — the
            # gather is fused *into* the fold
            _gather_fold(adj, x, reduce_op.ufunc, identity, out, workspace)
            if degf is not None:
                out /= degf[:, None]
            if epilogues:
                _apply_epilogues(out, 0, n, epilogues)
            return out
        tile = workspace.request((cap, k)) if cap else None
        edge_vals = adj.effective_values()
        for r0, r1 in spans:
            e0, e1 = int(adj.indptr[r0]), int(adj.indptr[r1])
            if e0 == e1:
                out[r0:r1] = identity
            else:
                bn = e1 - e0
                view = tile[:bn]
                idx = adj.indices[e0:e1]
                if binary.name == "copy_lhs":
                    view[:] = edge_vals[e0:e1][:, None]
                else:
                    ufunc = _BINARY_UFUNCS[binary.name]
                    ufunc(edge_vals[e0:e1][:, None], x[idx], out=view)
                local_indptr = adj.indptr[r0 : r1 + 1] - adj.indptr[r0]
                out[r0:r1] = segment_reduce(
                    view, local_indptr, reduce_op.ufunc, identity
                )
            span_out = out[r0:r1]
            if degf is not None:
                span_out /= degf[r0:r1, None]
            if epilogues:
                _apply_epilogues(span_out, r0, r1, epilogues)
    except Exception:
        # an exception mid-tile leaves a partially written (or oversized)
        # buffer pooled; release it so a demoted retry starts clean
        workspace.drop_buffers()
        raise
    return out
