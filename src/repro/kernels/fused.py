"""Fused attention-aggregation kernel (FusedMM-style, related work §VII).

FusedMM and Graphite fuse the SDDMM-like edge scoring with the SpMM
aggregation into one kernel, eliminating the materialised attention
matrix and two kernel launches.  GRANII composes with such optimizations
by exposing the fused kernel as one more primitive the cost models can
select — fusion is *not* always a win (it recomputes per edge and can
lose on very dense graphs where the materialised α is reused cheaply),
so the choice is input-dependent like everything else.

Numerically this function is exactly attention (Equation 4) followed by
aggregation (Equation 5); only the execution granularity differs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sparse import CSRMatrix
from .dense import leaky_relu
from .softmax import edge_softmax
from .spmm import spmm

__all__ = ["fused_attention_aggregate"]


def fused_attention_aggregate(
    pattern: CSRMatrix,
    value_feats: np.ndarray,
    score_dst: np.ndarray,
    score_src: np.ndarray,
    negative_slope: float = 0.2,
) -> np.ndarray:
    """Attention logits + edge softmax + aggregation in one pass.

    ``score_dst``/``score_src`` are the per-node attention scores
    (a_l·Θ_i and a_r·Θ_j); ``value_feats`` are the features aggregated
    under the resulting α (Θ for the reuse composition, H for
    recomputation).
    """
    if score_dst.shape != (pattern.shape[0],) or score_src.shape != (pattern.shape[1],):
        raise ValueError("per-node scores must be one scalar per node")
    rows, cols = pattern.row_ids(), pattern.indices
    logits = leaky_relu(score_dst[rows] + score_src[cols], negative_slope)
    alpha = edge_softmax(pattern, logits)
    return spmm(alpha, value_feats)
