"""Blocked and thread-parallel execution of the sparse primitives.

The naive g-SpMM/g-SDDMM kernels materialise their full ``(nnz, k)``
per-edge intermediate in one shot, so their transient footprint is
O(E·K) and every element round-trips through memory.  The strategies in
this module instead tile the edge stream into **row blocks** — runs of
consecutive CSR rows holding at most ``block_nnz`` edges (a single row
longer than the budget becomes its own block) — and process one tile at
a time through a scratch buffer drawn from a
:class:`~repro.kernels.workspace.WorkspaceArena`.  Peak intermediate
memory drops to O(block·K) and the tile stays cache-resident, which is
how DGL/SENSEi-style CPU kernels get their baseline performance.

Two strategies are exposed, mirroring the existing ``row_segment`` /
``gather_scatter`` pair so the cost models can price all four:

``blocked``
    Sequential tiled execution with a reusable workspace.
``blocked_parallel``
    The same tiling fanned out over a thread pool; blocks cover disjoint
    row ranges so workers write disjoint output slices without locking.
    NumPy releases the GIL inside the large ufunc calls, so this scales
    on multi-core hosts.  Thread count comes from ``REPRO_NUM_THREADS``
    or the ``num_threads`` argument.

Block size comes from ``REPRO_BLOCK_NNZ`` (default 32768 edges, i.e. a
256 KiB float64 tile per feature column budgeted across k).

Determinism
-----------
Both tiled strategies are **bitwise deterministic**, and bitwise equal to
``row_segment``, for any block size and thread count.  The invariant that
guarantees this: spans are contiguous row ranges, so every output row's
reduction happens entirely inside exactly one span, and
:func:`~repro.kernels.segment.segment_reduce` makes each row's result a
pure function of that row's messages in CSR edge order — the same
association the naive kernel uses.  Threads
never split a row's sum: workers own disjoint row ranges, write disjoint
output slices, and draw scratch from per-thread arenas
(:func:`~repro.kernels.workspace.thread_local_arena`), so neither the
pool's scheduling order nor ``REPRO_NUM_THREADS`` nor ``REPRO_BLOCK_NNZ``
can change a single result bit.  Floating-point drift across strategies
would otherwise masquerade as (or mask) plan-equivalence divergences;
``tests/test_determinism.py`` pins the bitwise contract.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..sparse import CSRMatrix
from .segment import segment_reduce
from .semiring import Semiring, get_semiring
from .workspace import WorkspaceArena, thread_local_arena

__all__ = [
    "DEFAULT_BLOCK_NNZ",
    "default_block_nnz",
    "default_num_threads",
    "row_block_spans",
    "gspmm_blocked",
    "gspmm_parallel",
    "gsddmm_blocked",
]

DEFAULT_BLOCK_NNZ = 32768

# ufuncs that support out=, for computing messages in-place in the tile
_BINARY_UFUNCS = {
    "mul": np.multiply,
    "add": np.add,
    "sub": np.subtract,
    "div": np.divide,
}


def default_block_nnz() -> int:
    """Edge budget per block; override with ``REPRO_BLOCK_NNZ``.

    Invalid values raise :class:`~repro.errors.GraniiConfigError` naming
    the variable (see :mod:`repro.config`) instead of being silently
    replaced by the default.
    """
    return config.block_nnz(DEFAULT_BLOCK_NNZ)


def default_num_threads() -> int:
    """Worker count for the parallel strategy; ``REPRO_NUM_THREADS`` wins."""
    value = config.num_threads()
    if value > 0:
        return value
    return min(4, os.cpu_count() or 1)


def row_block_spans(indptr: np.ndarray, block_nnz: int) -> List[Tuple[int, int]]:
    """Partition rows into ``[r0, r1)`` spans of at most ``block_nnz`` edges.

    Spans are contiguous, cover every row exactly once, and contain at
    least one row each — a single row denser than the budget becomes its
    own (oversized) span, so the tile must be sized by
    :func:`max_span_nnz`, not by ``block_nnz`` alone.
    """
    n = indptr.shape[0] - 1
    spans: List[Tuple[int, int]] = []
    r = 0
    while r < n:
        r1 = int(np.searchsorted(indptr, indptr[r] + block_nnz, side="right")) - 1
        r1 = min(max(r1, r + 1), n)
        spans.append((r, r1))
        r = r1
    return spans


def max_span_nnz(indptr: np.ndarray, spans: List[Tuple[int, int]]) -> int:
    """The tile capacity needed to hold the densest span."""
    if not spans:
        return 0
    return max(int(indptr[r1] - indptr[r0]) for r0, r1 in spans)


def _promote(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    return x[:, None] if x.ndim == 1 else x


def _block_messages(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Semiring,
    e0: int,
    e1: int,
    tile: np.ndarray,
) -> np.ndarray:
    """Compute messages for edges [e0, e1) into the tile; returns a view."""
    bn = e1 - e0
    view = tile[:bn]
    binary = semiring.binary
    idx = adj.indices[e0:e1]
    if binary.name == "copy_rhs":
        np.take(x, idx, axis=0, out=view)
        return view
    edge_vals = adj.effective_values()[e0:e1]
    if binary.name == "copy_lhs":
        view[:] = edge_vals[:, None]
        return view
    ufunc = _BINARY_UFUNCS[binary.name]
    ufunc(edge_vals[:, None], x[idx], out=view)
    return view


def _reduce_block_into(
    adj: CSRMatrix,
    messages: np.ndarray,
    r0: int,
    r1: int,
    out: np.ndarray,
    semiring: Semiring,
) -> None:
    reduce_op = semiring.reduce
    identity = 0.0 if reduce_op.is_mean else reduce_op.identity
    local_indptr = adj.indptr[r0 : r1 + 1] - adj.indptr[r0]
    out[r0:r1] = segment_reduce(messages, local_indptr, reduce_op.ufunc, identity)


def _finalize_mean(adj: CSRMatrix, out: np.ndarray, semiring: Semiring) -> np.ndarray:
    if semiring.reduce.is_mean:
        deg = adj.row_degrees()
        out /= np.maximum(deg, 1).astype(np.float64)[:, None]
    return out


def gspmm_blocked(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    block_nnz: Optional[int] = None,
    workspace: Optional[WorkspaceArena] = None,
) -> np.ndarray:
    """Row-block tiled g-SpMM; numerically identical to ``gspmm``.

    Peak intermediate memory is one ``(max_span_nnz, k)`` tile drawn from
    ``workspace`` (a private arena when omitted) instead of the naive
    kernel's full ``(nnz, k)`` message array.
    """
    if semiring is None:
        semiring = get_semiring()
    x = _promote(x)
    if semiring.binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(
            f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}"
        )
    if block_nnz is None:
        block_nnz = default_block_nnz()
    if workspace is None:
        workspace = WorkspaceArena()
    n, k = adj.shape[0], x.shape[1]
    # result buffer, returned to the caller — the arena only owns
    # per-tile scratch  # lint: allow(raw-alloc-in-kernels)
    out = np.empty((n, k), dtype=np.float64)
    spans = row_block_spans(adj.indptr, block_nnz)
    cap = max_span_nnz(adj.indptr, spans)
    try:
        tile = workspace.request((cap, k)) if cap else None
        for r0, r1 in spans:
            e0, e1 = int(adj.indptr[r0]), int(adj.indptr[r1])
            if e0 == e1:
                identity = 0.0 if semiring.reduce.is_mean else semiring.reduce.identity
                out[r0:r1] = identity
                continue
            messages = _block_messages(adj, x, semiring, e0, e1, tile)
            _reduce_block_into(adj, messages, r0, r1, out, semiring)
    except Exception:
        # an exception mid-tile leaves a partially written (or oversized)
        # buffer pooled; release it so the next caller starts clean
        workspace.drop_buffers()
        raise
    return _finalize_mean(adj, out, semiring)


_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _pool(num_threads: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(num_threads)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-spmm"
        )
        _POOLS[num_threads] = pool
    return pool


def gspmm_parallel(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    block_nnz: Optional[int] = None,
    num_threads: Optional[int] = None,
) -> np.ndarray:
    """Thread-parallel tiled g-SpMM over independent row blocks.

    Each worker pulls scratch from its own thread-local arena and writes
    a disjoint slice of the output, so no synchronisation is needed
    beyond the pool itself.
    """
    if semiring is None:
        semiring = get_semiring()
    x = _promote(x)
    if semiring.binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(
            f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}"
        )
    if block_nnz is None:
        block_nnz = default_block_nnz()
    if num_threads is None:
        num_threads = default_num_threads()
    spans = row_block_spans(adj.indptr, block_nnz)
    if num_threads <= 1 or len(spans) <= 1:
        return gspmm_blocked(
            adj, x, semiring, block_nnz=block_nnz, workspace=thread_local_arena()
        )
    n, k = adj.shape[0], x.shape[1]
    # result buffer, returned to the caller — the arena only owns
    # per-tile scratch  # lint: allow(raw-alloc-in-kernels)
    out = np.empty((n, k), dtype=np.float64)
    cap = max_span_nnz(adj.indptr, spans)

    def run_span(span: Tuple[int, int]) -> None:
        r0, r1 = span
        e0, e1 = int(adj.indptr[r0]), int(adj.indptr[r1])
        if e0 == e1:
            identity = 0.0 if semiring.reduce.is_mean else semiring.reduce.identity
            out[r0:r1] = identity
            return
        try:
            tile = thread_local_arena().request((cap, k))
            messages = _block_messages(adj, x, semiring, e0, e1, tile)
            _reduce_block_into(adj, messages, r0, r1, out, semiring)
        except Exception:
            # don't leave this worker's arena holding a poisoned tile
            thread_local_arena().drop_buffers()
            raise

    list(_pool(num_threads).map(run_span, spans))
    return _finalize_mean(adj, out, semiring)


def gsddmm_blocked(
    mask: CSRMatrix,
    u: np.ndarray,
    v: np.ndarray,
    op: str = "dot",
    block_nnz: Optional[int] = None,
    workspace: Optional[WorkspaceArena] = None,
) -> np.ndarray:
    """Edge-chunked g-SDDMM; numerically identical to ``gsddmm``.

    The endpoint gathers ``u[rows]`` / ``v[cols]`` are staged through two
    bounded workspace tiles instead of materialising two full ``(nnz, k)``
    arrays.  For element-wise ops the *output* is still O(E·K) — that is
    the result, not an intermediate — but for ``dot`` (GAT's logits) the
    transient footprint drops from O(E·K) to O(block·K).
    """
    u = np.atleast_2d(np.asarray(u, dtype=np.float64))
    v = np.atleast_2d(np.asarray(v, dtype=np.float64))
    if block_nnz is None:
        block_nnz = default_block_nnz()
    if workspace is None:
        workspace = WorkspaceArena()
    nnz = mask.nnz
    rows = mask.row_ids()
    cols = mask.indices
    if op == "copy_lhs":
        k_out: Tuple[int, ...] = (nnz, u.shape[1])
    elif op == "copy_rhs":
        k_out = (nnz, v.shape[1])
    elif op == "dot":
        k_out = (nnz,)
    elif op in ("add", "mul", "sub"):
        k_out = (nnz, u.shape[1])
    else:
        raise ValueError(f"unknown gsddmm op {op!r}")
    # result buffer, returned to the caller  # lint: allow(raw-alloc-in-kernels)
    out = np.empty(k_out, dtype=np.float64)
    try:
        for e0 in range(0, nnz, block_nnz):
            e1 = min(e0 + block_nnz, nnz)
            bn = e1 - e0
            if op != "copy_rhs":
                u_tile = workspace.request((min(block_nnz, nnz), u.shape[1]), slot=0)[:bn]
                np.take(u, rows[e0:e1], axis=0, out=u_tile)
            if op != "copy_lhs":
                v_tile = workspace.request((min(block_nnz, nnz), v.shape[1]), slot=1)[:bn]
                np.take(v, cols[e0:e1], axis=0, out=v_tile)
            if op == "dot":
                np.einsum("ek,ek->e", u_tile, v_tile, out=out[e0:e1])
            elif op == "add":
                np.add(u_tile, v_tile, out=out[e0:e1])
            elif op == "mul":
                np.multiply(u_tile, v_tile, out=out[e0:e1])
            elif op == "sub":
                np.subtract(u_tile, v_tile, out=out[e0:e1])
            elif op == "copy_lhs":
                out[e0:e1] = u_tile
            else:
                out[e0:e1] = v_tile
    except Exception:
        workspace.drop_buffers()
        raise
    return out
