"""Sampled dense-dense matrix multiplication (g-SDDMM).

The classic SDDMM computes ``C = S ⊙ (A @ B)``: a dense-dense matmul whose
output is only evaluated at the stored positions of a sparse mask ``S``
(Appendix A of the paper).  The generalized form replaces the per-position
dot product with any binary operator over the endpoint feature vectors,
which is how GAT's attention logits over edges are produced.

The GCN normalization precomputation ``D^{-1/2} · A · D^{-1/2}`` (Equation 3)
is the ``sddmm_diag_scale`` special case: both dense operands are diagonal,
so each stored entry costs O(1) and the whole primitive is O(E).
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix, DiagonalMatrix

__all__ = [
    "sddmm",
    "gsddmm",
    "sddmm_diag_scale",
    "sddmm_flops",
    "sddmm_diag_scale_flops",
]


def sddmm(mask: CSRMatrix, a: np.ndarray, b: np.ndarray) -> CSRMatrix:
    """Standard SDDMM: ``S ⊙ (A @ B)`` returned as a weighted CSR matrix.

    ``a`` is (nrows, k) and ``b`` is (k, ncols); the mask's stored values
    multiply the sampled dot products (implicit ones when unweighted).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"sddmm shape mismatch: {a.shape} @ {b.shape}")
    if a.shape[0] != mask.shape[0] or b.shape[1] != mask.shape[1]:
        raise ValueError(
            f"sddmm mask {mask.shape} incompatible with product "
            f"{(a.shape[0], b.shape[1])}"
        )
    rows = mask.row_ids()
    cols = mask.indices
    dots = np.einsum("ek,ek->e", a[rows], b[:, cols].T)
    return mask.with_values(mask.effective_values() * dots)


def gsddmm(
    mask: CSRMatrix,
    u: np.ndarray,
    v: np.ndarray,
    op: str = "dot",
    strategy: str = "naive",
    block_nnz=None,
    workspace=None,
) -> np.ndarray:
    """Generalized SDDMM: per-edge features from endpoint features.

    For each stored position (i, j) of ``mask`` combine ``u[i]`` (row-side)
    and ``v[j]`` (column-side) with ``op``:

    - ``dot``: scalar dot product (returns shape ``(nnz,)``)
    - ``add`` / ``mul`` / ``sub``: element-wise (returns ``(nnz, k)``)
    - ``copy_lhs`` / ``copy_rhs``: gather one side's features

    The edge ordering matches ``mask``'s CSR order, so the result can be
    attached with :meth:`CSRMatrix.with_values` when scalar.

    ``strategy="blocked"`` stages the endpoint gathers through bounded
    workspace tiles (:func:`repro.kernels.blocked.gsddmm_blocked`)
    instead of materialising both full ``(nnz, k)`` gathers at once.
    """
    if strategy == "blocked":
        from .blocked import gsddmm_blocked

        return gsddmm_blocked(
            mask, u, v, op, block_nnz=block_nnz, workspace=workspace
        )
    if strategy != "naive":
        raise ValueError(f"unknown gsddmm strategy {strategy!r}")
    u = np.atleast_2d(np.asarray(u, dtype=np.float64))
    v = np.atleast_2d(np.asarray(v, dtype=np.float64))
    rows = mask.row_ids()
    cols = mask.indices
    if op == "dot":
        return np.einsum("ek,ek->e", u[rows], v[cols])
    if op == "add":
        return u[rows] + v[cols]
    if op == "mul":
        return u[rows] * v[cols]
    if op == "sub":
        return u[rows] - v[cols]
    if op == "copy_lhs":
        return u[rows]
    if op == "copy_rhs":
        return v[cols]
    raise ValueError(f"unknown gsddmm op {op!r}")


def sddmm_diag_scale(
    mask: CSRMatrix, left: DiagonalMatrix, right: DiagonalMatrix
) -> CSRMatrix:
    """``diag(l) @ S @ diag(r)`` evaluated only on S's pattern.

    This is the O(E) primitive GRANII's association rules emit for the
    ``D · A · D`` grouping in Figure 6(d), producing GCN's precomputed
    normalized adjacency.
    """
    if left.n != mask.shape[0] or right.n != mask.shape[1]:
        raise ValueError("diagonal sizes do not match mask")
    vals = (
        mask.effective_values()
        * left.diag[mask.row_ids()]
        * right.diag[mask.indices]
    )
    return mask.with_values(vals)


def sddmm_flops(nnz: int, k: int) -> int:
    """O(E·K): one length-k dot product per stored entry."""
    return 2 * nnz * k


def sddmm_diag_scale_flops(nnz: int) -> int:
    """O(E): two multiplies per stored entry."""
    return 2 * nnz
