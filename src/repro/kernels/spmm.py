"""Generalized sparse-matrix dense-matrix multiplication (g-SpMM).

``gspmm(adj, X, semiring)`` computes, for every row ``i`` of the sparse
matrix ``adj``::

    out[i] = ⊕_{j : adj[i, j] stored}  (adj[i, j] ⊗ X[j])

With the standard ``(sum, mul)`` semiring this is the ordinary ``A @ X``.
GNN aggregation places destinations on rows and sources on columns, so a
g-SpMM over the adjacency aggregates neighbor embeddings (paper §II-C).

Five execution strategies are provided:

``row_segment``
    Gathers messages in edge order and reduces them per-row through
    :func:`~repro.kernels.segment.segment_reduce` — the CSR-natural
    strategy, fast when rows are long.
``gather_scatter``
    Scatters messages with ``ufunc.at`` — an atomics-like strategy whose
    cost profile mirrors GPU scatter kernels.
``blocked``
    Row-block tiled execution (:mod:`repro.kernels.blocked`): edges
    stream through a bounded, reusable workspace tile instead of one
    O(E·K) message array.
``blocked_parallel``
    The tiled kernel fanned out over a thread pool (one worker per row
    block); controlled by ``REPRO_NUM_THREADS``.
``spmm_sharded``
    Row shards executed by a persistent pool of worker *processes* over
    shared-memory buffers (:mod:`repro.kernels.sharded`), each shard
    with its own inner plan; controlled by ``REPRO_NUM_WORKERS``.
``spmm_fused``
    The compiled-plan streaming kernel (:mod:`repro.kernels.compiled`):
    the same row-block tiling as ``blocked``, but able to absorb a
    pre-aggregation row scale and post-aggregation epilogues into the
    single pass.  As a bare strategy (no plan context) it runs the
    aggregation alone, bitwise equal to ``blocked``/``row_segment``.

All produce identical results; the hardware model prices them differently,
which is what lets the engine pick a strategy per input.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

import numpy as np

from .. import config
from ..sparse import CSRMatrix
from .segment import segment_reduce
from .semiring import Semiring, get_semiring

__all__ = [
    "SPMM_STRATEGIES",
    "default_spmm_strategy",
    "spmm_strategy_override",
    "gspmm",
    "spmm",
    "spmm_unweighted",
    "gspmm_flops",
]

SPMM_STRATEGIES = (
    "row_segment",
    "gather_scatter",
    "blocked",
    "blocked_parallel",
    "spmm_sharded",
    "spmm_fused",
)

# Innermost spmm_strategy_override() wins over REPRO_SPMM_STRATEGY.
_STRATEGY_OVERRIDES: List[str] = []


def default_spmm_strategy() -> str:
    """Strategy used when the caller does not pick one.

    An active :func:`spmm_strategy_override` takes precedence; otherwise
    ``REPRO_SPMM_STRATEGY`` overrides the built-in ``row_segment``
    default process-wide (handy for benchmarking a whole model under one
    strategy without touching call sites).  A value outside
    :data:`SPMM_STRATEGIES` raises
    :class:`~repro.errors.GraniiConfigError` naming the variable — a
    typo'd strategy used to silently benchmark ``row_segment``.
    """
    if _STRATEGY_OVERRIDES:
        return _STRATEGY_OVERRIDES[-1]
    return config.spmm_strategy(SPMM_STRATEGIES) or "row_segment"


@contextmanager
def spmm_strategy_override(strategy: str) -> Iterator[None]:
    """Force every default-strategy g-SpMM in the block onto ``strategy``.

    This reaches code that never threads a strategy argument — notably
    the autograd sparse ops, whose forward *and* backward aggregations
    call :func:`gspmm` with ``strategy=None``.  The differential
    verification harness uses it to run whole training iterations under
    each execution strategy.
    """
    if strategy not in SPMM_STRATEGIES:
        raise ValueError(f"strategy must be one of {SPMM_STRATEGIES}")
    _STRATEGY_OVERRIDES.append(strategy)
    try:
        yield
    finally:
        _STRATEGY_OVERRIDES.pop()


def _messages(adj: CSRMatrix, x: np.ndarray, semiring: Semiring) -> np.ndarray:
    """Materialise the per-edge message array of shape (nnz, k)."""
    binary = semiring.binary
    if binary.name == "copy_rhs":
        return x[adj.indices]
    edge_vals = adj.effective_values()[:, None]
    if binary.name == "copy_lhs":
        return edge_vals
    return binary(edge_vals, x[adj.indices])


def _reduce_row_segment(
    adj: CSRMatrix, messages: np.ndarray, semiring: Semiring
) -> np.ndarray:
    reduce_op = semiring.reduce
    identity = 0.0 if reduce_op.is_mean else reduce_op.identity
    out = segment_reduce(messages, adj.indptr, reduce_op.ufunc, identity)
    if reduce_op.is_mean:
        deg = adj.row_degrees()
        out = out / np.maximum(deg, 1).astype(np.float64)[:, None]
    return out


def _reduce_gather_scatter(
    adj: CSRMatrix, messages: np.ndarray, semiring: Semiring
) -> np.ndarray:
    reduce_op = semiring.reduce
    n, k = adj.shape[0], messages.shape[1]
    out = np.full((n, k), reduce_op.identity, dtype=np.float64)
    reduce_op.ufunc.at(out, adj.row_ids(), messages)
    deg = adj.row_degrees()
    empty = deg == 0
    if reduce_op.name in ("max", "min") and empty.any():
        out[empty] = reduce_op.identity
    if reduce_op.is_mean:
        out[empty] = 0.0
        out = out / np.maximum(deg, 1).astype(np.float64)[:, None]
    return out


def gspmm(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    strategy: Optional[str] = None,
    block_nnz: Optional[int] = None,
    num_threads: Optional[int] = None,
    num_workers: Optional[int] = None,
    workspace=None,
) -> np.ndarray:
    """Generalized SpMM; see module docstring.

    Parameters
    ----------
    adj:
        Sparse left operand (destination rows, source columns).
    x:
        Dense right operand of shape ``(adj.ncols, k)``.
    semiring:
        The (⊕, ⊗) pair; defaults to ``(sum, mul)``.
    strategy:
        One of :data:`SPMM_STRATEGIES`; ``None`` means
        :func:`default_spmm_strategy`.
    block_nnz / num_threads / num_workers / workspace:
        Tuning knobs for the blocked and sharded strategies (edge budget
        per tile, thread-pool width, process-pool width, and the
        :class:`~repro.kernels.workspace.WorkspaceArena` scratch buffers
        come from); ignored by the one-shot strategies.
    """
    if semiring is None:
        semiring = get_semiring()
    if strategy is None:
        strategy = default_spmm_strategy()
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if strategy == "blocked":
        from .blocked import gspmm_blocked

        return gspmm_blocked(
            adj, x, semiring, block_nnz=block_nnz, workspace=workspace
        )
    if strategy == "blocked_parallel":
        from .blocked import gspmm_parallel

        return gspmm_parallel(
            adj, x, semiring, block_nnz=block_nnz, num_threads=num_threads
        )
    if strategy == "spmm_sharded":
        from .sharded import gspmm_sharded

        return gspmm_sharded(
            adj, x, semiring, num_workers=num_workers, block_nnz=block_nnz
        )
    if strategy == "spmm_fused":
        from .compiled import gspmm_fused

        return gspmm_fused(
            adj, x, semiring, block_nnz=block_nnz, workspace=workspace
        )
    if semiring.binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(
            f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}"
        )
    messages = _messages(adj, x, semiring)
    if strategy == "row_segment":
        return _reduce_row_segment(adj, messages, semiring)
    if strategy == "gather_scatter":
        return _reduce_gather_scatter(adj, messages, semiring)
    raise ValueError(f"unknown strategy {strategy!r}")


def spmm(adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Standard weighted SpMM: ``A @ X`` over the arithmetic semiring."""
    return gspmm(adj, x, get_semiring("sum", "mul"))


def spmm_unweighted(adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """SpMM that ignores edge values (Appendix B's cheaper aggregation).

    Equivalent to ``spmm`` on the pattern with all-ones values, but skips
    the per-edge multiply entirely.
    """
    return gspmm(adj, x, get_semiring("sum", "copy_rhs"))


def gspmm_flops(nnz: int, k: int, weighted: bool = True) -> int:
    """Operation count: one ⊕ (and one ⊗ if weighted) per edge per feature.

    Complexity O(E·K) as in Figure 3 of the paper.
    """
    per_edge = 2 if weighted else 1
    return per_edge * nnz * k
