"""Generalized semiring operators for g-SpMM and g-SDDMM.

DGL showed that all sparse computations needed by message-passing GNNs can
be expressed with two primitives — g-SpMM and g-SDDMM — parameterised by a
reduction operator ``⊕`` and a message (binary) operator ``⊗`` drawn from a
semiring (paper §II-B).  This module defines those operator vocabularies.

The binary operators follow DGL's naming: ``mul``/``add``/``sub``/``div``
combine the two operands, while ``copy_lhs``/``copy_rhs`` ignore one of
them.  ``copy_lhs`` on an unweighted adjacency is what makes the cheaper
"no edge values" aggregation of Appendix B possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = [
    "BinaryOp",
    "ReduceOp",
    "Semiring",
    "BINARY_OPS",
    "REDUCE_OPS",
    "get_semiring",
]


@dataclass(frozen=True)
class BinaryOp:
    """A generalized multiplication ``⊗`` combining edge and node operands."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    uses_lhs: bool
    uses_rhs: bool

    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return self.fn(lhs, rhs)


@dataclass(frozen=True)
class ReduceOp:
    """A generalized addition ``⊕`` reducing messages per destination."""

    name: str
    identity: float
    # ufunc used with indexed accumulation, or None for mean (handled
    # specially: sum followed by a degree division).
    ufunc: Callable

    @property
    def is_mean(self) -> bool:
        return self.name == "mean"


BINARY_OPS: Dict[str, BinaryOp] = {
    "mul": BinaryOp("mul", lambda a, b: a * b, True, True),
    "add": BinaryOp("add", lambda a, b: a + b, True, True),
    "sub": BinaryOp("sub", lambda a, b: a - b, True, True),
    "div": BinaryOp("div", lambda a, b: a / b, True, True),
    "copy_lhs": BinaryOp("copy_lhs", lambda a, b: a, True, False),
    "copy_rhs": BinaryOp("copy_rhs", lambda a, b: b, False, True),
}

REDUCE_OPS: Dict[str, ReduceOp] = {
    "sum": ReduceOp("sum", 0.0, np.add),
    "max": ReduceOp("max", -np.inf, np.maximum),
    "min": ReduceOp("min", np.inf, np.minimum),
    "mean": ReduceOp("mean", 0.0, np.add),
}


@dataclass(frozen=True)
class Semiring:
    """A (⊕, ⊗) pair, e.g. ``Semiring(sum, mul)`` is ordinary SpMM."""

    reduce: ReduceOp
    binary: BinaryOp

    @property
    def name(self) -> str:
        return f"{self.reduce.name}.{self.binary.name}"

    @property
    def is_standard(self) -> bool:
        """Whether this is the plain (+, ×) arithmetic semiring."""
        return self.reduce.name == "sum" and self.binary.name == "mul"


def get_semiring(reduce_name: str = "sum", binary_name: str = "mul") -> Semiring:
    """Look up a semiring by operator names.

    >>> get_semiring("max", "add").name
    'max.add'
    """
    if reduce_name not in REDUCE_OPS:
        raise KeyError(
            f"unknown reduce op {reduce_name!r}; choices: {sorted(REDUCE_OPS)}"
        )
    if binary_name not in BINARY_OPS:
        raise KeyError(
            f"unknown binary op {binary_name!r}; choices: {sorted(BINARY_OPS)}"
        )
    return Semiring(REDUCE_OPS[reduce_name], BINARY_OPS[binary_name])
