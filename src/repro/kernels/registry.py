"""Registry of the sparse and dense matrix primitives GRANII reasons about.

Every primitive the association rules can emit is described here once:
its name, whether it is a sparse or dense primitive (Figure 2's runtime
split is computed from this), and an analytic operation count used both by
the complexity tables (Figure 3) and as the workload measure the hardware
timing model scales.

A :class:`KernelCall` is the *symbolic* form of one primitive invocation —
enough shape/sparsity metadata to cost it without executing it.  Lowered
plans (``repro.core.codegen``) carry lists of KernelCalls alongside the
executable closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

__all__ = ["Primitive", "KernelCall", "PRIMITIVES", "get_primitive"]


@dataclass(frozen=True)
class Primitive:
    """Static description of one matrix primitive."""

    name: str
    kind: str  # "sparse" or "dense"
    flops: Callable[[Mapping[str, float]], float]
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("sparse", "dense"):
            raise ValueError("kind must be 'sparse' or 'dense'")


def _f(expr: Callable[[Mapping[str, float]], float]) -> Callable:
    return expr


PRIMITIVES: Dict[str, Primitive] = {
    "gemm": Primitive(
        "gemm", "dense",
        _f(lambda s: 2.0 * s["m"] * s["k"] * s["n"]),
        "dense (m×k)·(k×n) matrix multiplication",
    ),
    "spmm": Primitive(
        "spmm", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "weighted sparse·dense multiplication, O(E·K)",
    ),
    "spmm_unweighted": Primitive(
        "spmm_unweighted", "sparse",
        _f(lambda s: 1.0 * s["nnz"] * s["k"]),
        "pattern-only sparse·dense multiplication (no edge-value multiply)",
    ),
    "spmm_blocked": Primitive(
        "spmm_blocked", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "row-block tiled sparse·dense multiplication, O(block·K) workspace",
    ),
    "spmm_parallel": Primitive(
        "spmm_parallel", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "thread-parallel row-block tiled sparse·dense multiplication",
    ),
    "sddmm": Primitive(
        "sddmm", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "sampled dense-dense multiplication, O(E·K)",
    ),
    "sddmm_diag": Primitive(
        "sddmm_diag", "sparse",
        _f(lambda s: 2.0 * s["nnz"]),
        "diag·sparse·diag scaling on the pattern, O(E)",
    ),
    "gsddmm_attn": Primitive(
        "gsddmm_attn", "sparse",
        _f(lambda s: 2.0 * s["nnz"]),
        "per-edge attention logits from endpoint scores, O(E)",
    ),
    "edge_softmax": Primitive(
        "edge_softmax", "sparse",
        _f(lambda s: 4.0 * s["nnz"]),
        "softmax over each destination's incident edges, O(E)",
    ),
    "row_broadcast": Primitive(
        "row_broadcast", "dense",
        _f(lambda s: 1.0 * s["m"] * s["k"]),
        "per-row scalar times dense matrix, O(N·K)",
    ),
    "elementwise": Primitive(
        "elementwise", "dense",
        _f(lambda s: 1.0 * s["m"] * s["k"]),
        "element-wise dense op (add/relu/...), O(N·K)",
    ),
    "degree_indptr": Primitive(
        "degree_indptr", "sparse",
        _f(lambda s: 1.0 * s["m"]),
        "degrees from the CSR row pointer, O(N)",
    ),
    "degree_binning": Primitive(
        "degree_binning", "sparse",
        _f(lambda s: 1.0 * s["nnz"]),
        "degrees by scattering edges into bins, O(E) with atomics",
    ),
    "spgemm": Primitive(
        "spgemm", "sparse",
        # intermediate products: one multiply-add per (i,k)x(k,j) meeting
        _f(lambda s: 2.0 * s["nnz"] * (s["nnz_rhs"] / max(s["m"], 1.0))),
        "sparse x sparse multiplication (setup-only extension kernel)",
    ),
    "fused_attn_spmm": Primitive(
        "fused_attn_spmm", "sparse",
        _f(lambda s: 6.0 * s["nnz"] + 2.0 * s["nnz"] * s["k"]),
        "fused attention-scoring + edge-softmax + aggregation, one pass",
    ),
    "diag_mul": Primitive(
        "diag_mul", "dense",
        _f(lambda s: 1.0 * s["m"]),
        "product of two diagonal matrices (vector multiply), O(N)",
    ),
    "spadd_diag": Primitive(
        "spadd_diag", "sparse",
        _f(lambda s: 1.0 * s["nnz"] + s["m"]),
        "sparse matrix plus diagonal (pattern union), O(E + N)",
    ),
}


def get_primitive(name: str) -> Primitive:
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown primitive {name!r}; choices: {sorted(PRIMITIVES)}"
        ) from None


@dataclass(frozen=True)
class KernelCall:
    """One symbolic invocation of a primitive.

    ``shape`` carries whatever size metadata the primitive's flop/timing
    functions need: ``m``/``k``/``n`` for dense shapes, ``nnz`` and
    ``density`` for the sparse operand, ``weighted`` as 0/1.
    """

    primitive: str
    shape: Mapping[str, float] = field(default_factory=dict)
    tag: str = ""

    def __post_init__(self) -> None:
        get_primitive(self.primitive)  # validate eagerly

    @property
    def kind(self) -> str:
        return get_primitive(self.primitive).kind

    @property
    def flops(self) -> float:
        return float(get_primitive(self.primitive).flops(self.shape))

    def describe(self) -> str:
        dims = ", ".join(f"{k}={int(v)}" for k, v in sorted(self.shape.items()))
        return f"{self.primitive}({dims})"
