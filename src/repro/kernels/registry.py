"""Registry of the sparse and dense matrix primitives GRANII reasons about.

Every primitive the association rules can emit is described here once:
its name, whether it is a sparse or dense primitive (Figure 2's runtime
split is computed from this), and an analytic operation count used both by
the complexity tables (Figure 3) and as the workload measure the hardware
timing model scales.

A :class:`KernelCall` is the *symbolic* form of one primitive invocation —
enough shape/sparsity metadata to cost it without executing it.  Lowered
plans (``repro.core.codegen``) carry lists of KernelCalls alongside the
executable closures.

This module also owns the **wrappable dispatch seam**: plan execution
routes every concrete primitive invocation through
:func:`dispatch_kernel`, which threads the call through any registered
wrappers.  Wrappers see ``(primitive_name, next_call, tag)`` and may
observe, perturb, or replace the invocation — the fault-injection
framework (:mod:`repro.faults`) and the guarded runtime's
instrumentation both attach here, with zero overhead when no wrapper is
installed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping

__all__ = [
    "Primitive",
    "KernelCall",
    "PRIMITIVES",
    "get_primitive",
    "dispatch_kernel",
    "kernel_wrapper",
    "push_kernel_wrapper",
    "remove_kernel_wrapper",
    "transient_bytes",
]


@dataclass(frozen=True)
class Primitive:
    """Static description of one matrix primitive."""

    name: str
    kind: str  # "sparse" or "dense"
    flops: Callable[[Mapping[str, float]], float]
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("sparse", "dense"):
            raise ValueError("kind must be 'sparse' or 'dense'")


def _f(expr: Callable[[Mapping[str, float]], float]) -> Callable:
    return expr


PRIMITIVES: Dict[str, Primitive] = {
    "gemm": Primitive(
        "gemm", "dense",
        _f(lambda s: 2.0 * s["m"] * s["k"] * s["n"]),
        "dense (m×k)·(k×n) matrix multiplication",
    ),
    "spmm": Primitive(
        "spmm", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "weighted sparse·dense multiplication, O(E·K)",
    ),
    "spmm_unweighted": Primitive(
        "spmm_unweighted", "sparse",
        _f(lambda s: 1.0 * s["nnz"] * s["k"]),
        "pattern-only sparse·dense multiplication (no edge-value multiply)",
    ),
    "spmm_blocked": Primitive(
        "spmm_blocked", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "row-block tiled sparse·dense multiplication, O(block·K) workspace",
    ),
    "spmm_parallel": Primitive(
        "spmm_parallel", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "thread-parallel row-block tiled sparse·dense multiplication",
    ),
    "spmm_sharded": Primitive(
        "spmm_sharded", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "process-parallel row-sharded sparse·dense multiplication over "
        "shared-memory buffers, per-shard inner plans",
    ),
    "spmm_fused": Primitive(
        "spmm_fused", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "compiled-plan streaming aggregation: row-block tiled SpMM with "
        "pre-scale and epilogues absorbed into the single pass",
    ),
    "sddmm": Primitive(
        "sddmm", "sparse",
        _f(lambda s: 2.0 * s["nnz"] * s["k"]),
        "sampled dense-dense multiplication, O(E·K)",
    ),
    "sddmm_diag": Primitive(
        "sddmm_diag", "sparse",
        _f(lambda s: 2.0 * s["nnz"]),
        "diag·sparse·diag scaling on the pattern, O(E)",
    ),
    "gsddmm_attn": Primitive(
        "gsddmm_attn", "sparse",
        _f(lambda s: 2.0 * s["nnz"]),
        "per-edge attention logits from endpoint scores, O(E)",
    ),
    "edge_softmax": Primitive(
        "edge_softmax", "sparse",
        _f(lambda s: 4.0 * s["nnz"]),
        "softmax over each destination's incident edges, O(E)",
    ),
    "row_broadcast": Primitive(
        "row_broadcast", "dense",
        _f(lambda s: 1.0 * s["m"] * s["k"]),
        "per-row scalar times dense matrix, O(N·K)",
    ),
    "elementwise": Primitive(
        "elementwise", "dense",
        _f(lambda s: 1.0 * s["m"] * s["k"]),
        "element-wise dense op (add/relu/...), O(N·K)",
    ),
    "degree_indptr": Primitive(
        "degree_indptr", "sparse",
        _f(lambda s: 1.0 * s["m"]),
        "degrees from the CSR row pointer, O(N)",
    ),
    "degree_binning": Primitive(
        "degree_binning", "sparse",
        _f(lambda s: 1.0 * s["nnz"]),
        "degrees by scattering edges into bins, O(E) with atomics",
    ),
    "spgemm": Primitive(
        "spgemm", "sparse",
        # intermediate products: one multiply-add per (i,k)x(k,j) meeting
        _f(lambda s: 2.0 * s["nnz"] * (s["nnz_rhs"] / max(s["m"], 1.0))),
        "sparse x sparse multiplication (setup-only extension kernel)",
    ),
    "fused_attn_spmm": Primitive(
        "fused_attn_spmm", "sparse",
        _f(lambda s: 6.0 * s["nnz"] + 2.0 * s["nnz"] * s["k"]),
        "fused attention-scoring + edge-softmax + aggregation, one pass",
    ),
    "diag_mul": Primitive(
        "diag_mul", "dense",
        _f(lambda s: 1.0 * s["m"]),
        "product of two diagonal matrices (vector multiply), O(N)",
    ),
    "spadd_diag": Primitive(
        "spadd_diag", "sparse",
        _f(lambda s: 1.0 * s["nnz"] + s["m"]),
        "sparse matrix plus diagonal (pattern union), O(E + N)",
    ),
}


def get_primitive(name: str) -> Primitive:
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown primitive {name!r}; choices: {sorted(PRIMITIVES)}"
        ) from None


# ----------------------------------------------------------------------
# Transient-memory model
# ----------------------------------------------------------------------
# Per-call scratch footprint beyond inputs and the output, in bytes.
# This substrate's SpMM/SDDMM materialise per-edge messages; the fused
# attention kernel streams and notably does not (part of fusion's
# appeal).  Used by plan peak-memory estimates and the execution
# memory budget.
_TRANSIENT_BYTES: Dict[str, Callable[[Mapping[str, float]], float]] = {
    "spmm": lambda s: 8.0 * s["nnz"] * s.get("k", 1),
    "spmm_unweighted": lambda s: 8.0 * s["nnz"] * s.get("k", 1),
    # sharded: shared segments for CSR (indptr+indices+values) plus the
    # dense operand and output copies — resident in /dev/shm, not heap,
    # but budgeted all the same.
    "spmm_sharded": lambda s: (
        24.0 * s["nnz"] + 16.0 * s["m"] * s.get("k", 1) + 8.0 * s["m"]
    ),
    # fused: at most two bounded workspace tiles (message + gather
    # staging), never an O(E·K) message array
    "spmm_fused": lambda s: 16.0 * min(s["nnz"], 32768.0) * s.get("k", 1),
    "sddmm": lambda s: 8.0 * s["nnz"] * s.get("k", 1),
    "gsddmm_attn": lambda s: 16.0 * s["nnz"],
    "edge_softmax": lambda s: 16.0 * s["nnz"],
    "fused_attn_spmm": lambda s: 24.0 * s["nnz"],
}


def transient_bytes(primitive: str, shape: Mapping[str, float]) -> float:
    """Estimated per-call scratch bytes of one primitive invocation."""
    fn = _TRANSIENT_BYTES.get(primitive)
    return float(fn(shape)) if fn is not None else 0.0


# ----------------------------------------------------------------------
# Wrappable dispatch
# ----------------------------------------------------------------------
# Wrapper signature: (primitive_name, next_call, tag) -> value, where
# next_call is a zero-argument callable running the rest of the chain.
KernelWrapper = Callable[[str, Callable[[], object], str], object]

_KERNEL_WRAPPERS: List[KernelWrapper] = []

# Thread-local wrappers: installed by one thread, seen only by dispatches
# on that thread, and chained *outside* the global wrappers.  The serving
# runtime uses this scope for request-confined behaviour — per-request
# fault plans and sharded-retry policies must not leak onto requests
# other worker threads are executing concurrently.
_TLS = threading.local()


def _thread_wrappers(create: bool = False):
    wrappers = getattr(_TLS, "wrappers", None)
    if wrappers is None and create:
        wrappers = _TLS.wrappers = []
    return wrappers


def push_kernel_wrapper(
    wrapper: KernelWrapper, thread_local: bool = False
) -> None:
    """Install a dispatch wrapper; the most recently pushed runs outermost.

    With ``thread_local=True`` the wrapper only wraps dispatches made
    from the calling thread, outside any globally installed wrappers.
    """
    if thread_local:
        _thread_wrappers(create=True).append(wrapper)
    else:
        _KERNEL_WRAPPERS.append(wrapper)


def remove_kernel_wrapper(
    wrapper: KernelWrapper, thread_local: bool = False
) -> None:
    """Remove a previously pushed wrapper (no-op if absent)."""
    wrappers = _thread_wrappers() if thread_local else _KERNEL_WRAPPERS
    try:
        if wrappers is not None:
            wrappers.remove(wrapper)
    except ValueError:
        pass


@contextmanager
def kernel_wrapper(
    wrapper: KernelWrapper, thread_local: bool = False
) -> Iterator[None]:
    """Scoped :func:`push_kernel_wrapper` / :func:`remove_kernel_wrapper`."""
    push_kernel_wrapper(wrapper, thread_local=thread_local)
    try:
        yield
    finally:
        remove_kernel_wrapper(wrapper, thread_local=thread_local)


def dispatch_kernel(
    primitive: str, call: Callable[[], object], tag: str = ""
) -> object:
    """Run one concrete primitive invocation through the wrapper chain.

    With no wrappers installed this is a plain function call; plan
    execution funnels every step through here so faults and
    instrumentation can interpose without touching kernel code.
    """
    local = _thread_wrappers()
    if not _KERNEL_WRAPPERS and not local:
        return call()
    chained = call
    for wrapper in _KERNEL_WRAPPERS:
        chained = (
            lambda w=wrapper, nxt=chained: w(primitive, nxt, tag)
        )
    for wrapper in local or ():
        chained = (
            lambda w=wrapper, nxt=chained: w(primitive, nxt, tag)
        )
    return chained()


@dataclass(frozen=True)
class KernelCall:
    """One symbolic invocation of a primitive.

    ``shape`` carries whatever size metadata the primitive's flop/timing
    functions need: ``m``/``k``/``n`` for dense shapes, ``nnz`` and
    ``density`` for the sparse operand, ``weighted`` as 0/1.
    """

    primitive: str
    shape: Mapping[str, float] = field(default_factory=dict)
    tag: str = ""

    def __post_init__(self) -> None:
        get_primitive(self.primitive)  # validate eagerly

    @property
    def kind(self) -> str:
        return get_primitive(self.primitive).kind

    @property
    def flops(self) -> float:
        return float(get_primitive(self.primitive).flops(self.shape))

    def describe(self) -> str:
        dims = ", ".join(f"{k}={int(v)}" for k, v in sorted(self.shape.items()))
        return f"{self.primitive}({dims})"
