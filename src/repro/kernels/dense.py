"""Dense matrix primitives (paper §II-A).

All inputs and outputs here are dense NumPy arrays.  The heavyweight
primitive is GEMM; element-wise non-linearities are also provided because
they delimit re-association regions in the IR (non-linearities are
association barriers, §IV-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gemm",
    "elementwise_add",
    "elementwise_mul",
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "softmax_rows",
    "log_softmax_rows",
    "gemm_flops",
]


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """General matrix-matrix multiplication ``A @ B``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"gemm shape mismatch: {a.shape} @ {b.shape}")
    return a @ b


def gemm_flops(m: int, k: int, n: int) -> int:
    """Multiply-add count of an (m×k)·(k×n) GEMM."""
    return 2 * m * k * n


def elementwise_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a, np.float64) + np.asarray(b, np.float64)


def elementwise_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a, np.float64) * np.asarray(b, np.float64)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    return np.where(x > 0, x, negative_slope * x)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x > 0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax_rows(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


def log_softmax_rows(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
