"""Reusable scratch-buffer arenas for the blocked kernel strategies.

The naive g-SpMM materialises a fresh ``(nnz, k)`` message array on every
call; the blocked strategies instead stream edges through a bounded tile
whose backing buffer lives in a :class:`WorkspaceArena` and is reused
across blocks *and* across plan iterations (the runtime stows one arena
per (plan, graph) in the same ``setup_cache`` that amortises graph-only
sparse precomputation).  Buffers are keyed by (shape, dtype), so a layer
that executes the same composition every iteration allocates its scratch
exactly once.

Thread safety: an arena hands out one buffer per key, so concurrent
workers must not share one arena.  The parallel strategy therefore draws
per-worker arenas from :func:`thread_local_arena`.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = ["WorkspaceArena", "thread_local_arena"]


class WorkspaceArena:
    """A pool of pre-allocated scratch buffers keyed by shape and dtype.

    ``request`` returns an *uninitialised* buffer — callers must overwrite
    every element they read.  Returned buffers are only valid until the
    next ``request`` with the same key.
    """

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Tuple[int, ...], str, int], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def request(self, shape, dtype=np.float64, slot: int = 0) -> np.ndarray:
        """A scratch buffer of exactly ``shape``; contents are undefined.

        ``slot`` discriminates buffers a caller needs *simultaneously*
        with the same shape and dtype (e.g. the two endpoint tiles of a
        blocked SDDMM) — same-key requests otherwise alias one buffer.
        """
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str, slot)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[0], dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes resident across all pooled buffers."""
        return sum(b.nbytes for b in self._buffers.values())

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    def drop_buffers(self) -> None:
        """Release every pooled buffer, keeping the hit/miss counters.

        Called by the blocked kernels when an exception escapes
        mid-execution: a partially written (or abnormally oversized)
        tile must not be handed to the next caller, and the memory
        behind a failed oversized request must not stay resident.
        """
        self._buffers.clear()

    def clear(self) -> None:
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"WorkspaceArena(buffers={self.num_buffers}, "
            f"bytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )


_LOCAL = threading.local()


def thread_local_arena() -> WorkspaceArena:
    """The calling thread's private arena (created on first use).

    Worker threads of the parallel strategy reuse their scratch across
    blocks and across kernel invocations without any locking.
    """
    arena = getattr(_LOCAL, "arena", None)
    if arena is None:
        arena = WorkspaceArena()
        _LOCAL.arena = arena
    return arena
