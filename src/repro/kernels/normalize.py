"""Degree and normalization kernels.

The paper's §VI-C1 analysis traces WiseGraph's GCN slowdowns on dense
graphs to a *binning* kernel: outgoing-edge counts are computed by binning
every edge onto its endpoint, which on GPUs serialises on atomics when few
bins receive many edges.  DGL instead reads degrees directly from the CSR
row pointer.  We implement both so the two system personalities differ in
the same way, and so the hardware model can price the atomic contention.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix, DiagonalMatrix

__all__ = [
    "degrees_from_indptr",
    "degrees_by_binning",
    "norm_diagonal",
    "gcn_norm_vector",
]


def degrees_from_indptr(adj: CSRMatrix) -> np.ndarray:
    """Out-degrees read off the CSR row pointer — O(N), no atomics."""
    return np.diff(adj.indptr).astype(np.float64)


def degrees_by_binning(adj: CSRMatrix) -> np.ndarray:
    """Out-degrees by scattering each edge into its row's bin — O(E).

    Functionally identical to :func:`degrees_from_indptr`; kept separate
    because WiseGraph's default composition uses this kernel and its cost
    behaves very differently on dense graphs (atomic contention).
    """
    # result buffer, returned to the caller  # lint: allow(raw-alloc-in-kernels)
    out = np.zeros(adj.shape[0], dtype=np.float64)
    np.add.at(out, adj.row_ids(), 1.0)
    return out


def norm_diagonal(adj: CSRMatrix, power: float = -0.5, method: str = "indptr") -> DiagonalMatrix:
    """``D^power`` of the adjacency, with a choice of degree kernel."""
    if method == "indptr":
        deg = degrees_from_indptr(adj)
    elif method == "binning":
        deg = degrees_by_binning(adj)
    else:
        raise ValueError(f"unknown degree method {method!r}")
    return DiagonalMatrix(deg).power(power)


def gcn_norm_vector(adj: CSRMatrix) -> np.ndarray:
    """The ``d^{-1/2}`` vector GCN's dynamic normalization broadcasts."""
    return norm_diagonal(adj, -0.5).diag
