"""Sparse and dense matrix primitives (g-SpMM, g-SDDMM, GEMM, broadcasts)."""

from .blocked import (
    DEFAULT_BLOCK_NNZ,
    default_block_nnz,
    default_num_threads,
    gsddmm_blocked,
    gspmm_blocked,
    gspmm_parallel,
    row_block_spans,
)
from .broadcast import col_broadcast, row_broadcast, row_broadcast_flops
from .dense import (
    elementwise_add,
    elementwise_mul,
    elu,
    gemm,
    gemm_flops,
    leaky_relu,
    log_softmax_rows,
    relu,
    sigmoid,
    softmax_rows,
)
from .fused import fused_attention_aggregate
from .normalize import (
    degrees_by_binning,
    degrees_from_indptr,
    gcn_norm_vector,
    norm_diagonal,
)
from .registry import PRIMITIVES, KernelCall, Primitive, get_primitive
from .sddmm import (
    gsddmm,
    sddmm,
    sddmm_diag_scale,
    sddmm_diag_scale_flops,
    sddmm_flops,
)
from .semiring import BINARY_OPS, REDUCE_OPS, BinaryOp, ReduceOp, Semiring, get_semiring
from .softmax import edge_softmax, segment_max, segment_sum
from .spadd import spadd_diag
from .spgemm import sampled_power_nnz, spgemm, spgemm_output_nnz_estimate
from .spmm import (
    SPMM_STRATEGIES,
    default_spmm_strategy,
    spmm_strategy_override,
    gspmm,
    gspmm_flops,
    spmm,
    spmm_unweighted,
)
from .workspace import WorkspaceArena, thread_local_arena

__all__ = [
    "BINARY_OPS",
    "BinaryOp",
    "DEFAULT_BLOCK_NNZ",
    "KernelCall",
    "PRIMITIVES",
    "Primitive",
    "REDUCE_OPS",
    "ReduceOp",
    "SPMM_STRATEGIES",
    "Semiring",
    "WorkspaceArena",
    "col_broadcast",
    "default_block_nnz",
    "default_num_threads",
    "default_spmm_strategy",
    "spmm_strategy_override",
    "degrees_by_binning",
    "degrees_from_indptr",
    "edge_softmax",
    "elementwise_add",
    "elementwise_mul",
    "elu",
    "fused_attention_aggregate",
    "gcn_norm_vector",
    "gemm",
    "gemm_flops",
    "get_primitive",
    "get_semiring",
    "gsddmm",
    "gsddmm_blocked",
    "gspmm",
    "gspmm_blocked",
    "gspmm_flops",
    "gspmm_parallel",
    "leaky_relu",
    "log_softmax_rows",
    "norm_diagonal",
    "relu",
    "row_broadcast",
    "row_broadcast_flops",
    "sddmm",
    "sddmm_diag_scale",
    "sddmm_diag_scale_flops",
    "sddmm_flops",
    "segment_max",
    "segment_sum",
    "sigmoid",
    "softmax_rows",
    "sampled_power_nnz",
    "spadd_diag",
    "spgemm",
    "spgemm_output_nnz_estimate",
    "spmm",
    "spmm_unweighted",
]
