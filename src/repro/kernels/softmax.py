"""Edge softmax — the sparse softmax used by GAT's attention normalisation.

Given per-edge logits aligned with a CSR adjacency, normalise them with a
softmax over each destination's incident edges (each CSR row).  The result
is the sparse attention matrix ``α`` of Equation 4.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix
from .segment import segment_reduce

__all__ = ["edge_softmax", "segment_max", "segment_sum"]


def segment_max(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row maximum over CSR segments; -inf for empty rows."""
    return segment_reduce(values, indptr, np.maximum, -np.inf)


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sum over CSR segments; 0 for empty rows."""
    return segment_reduce(values, indptr, np.add, 0.0)


def edge_softmax(adj: CSRMatrix, logits: np.ndarray) -> CSRMatrix:
    """Softmax of per-edge logits within each CSR row.

    Returns a weighted CSR matrix with the same pattern as ``adj`` whose
    stored values sum to one along every non-empty row.  Fully-masked
    rows — non-empty rows whose logits are all ``-inf`` — yield all-zero
    weights rather than NaN: the max-shift uses 0 where the row maximum
    is not finite (``-inf - (-inf)`` would be NaN), and a zero softmax
    denominator divides by 1 instead of 0.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.shape != (adj.nnz,):
        raise ValueError(
            f"expected one logit per stored entry ({adj.nnz}), got {logits.shape}"
        )
    deg = adj.row_degrees()
    row_max = segment_max(logits, adj.indptr)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    shifted = logits - np.repeat(safe_max, deg)
    exps = np.exp(shifted)
    denom = segment_sum(exps, adj.indptr)
    vals = exps / np.repeat(np.where(denom > 0, denom, 1.0), deg)
    return adj.with_values(vals)
