"""Process-parallel sharded g-SpMM over shared-memory buffers.

The ``blocked_parallel`` strategy fans row blocks over a thread pool,
but NumPy reduction loops hold the GIL often enough that it ties
single-threaded ``blocked`` on large graphs.  This module sidesteps the
GIL entirely: the graph is split into contiguous, nnz-balanced *row
shards* (:func:`repro.graphs.partition.plan_row_shards`), the CSR
arrays, the dense operand and the result matrix are placed in
``multiprocessing.shared_memory`` segments, and a persistent pool of
worker processes each runs an ordinary in-process g-SpMM over its
shard's sub-CSR view, writing results into a disjoint row range of the
shared output — zero-copy reads, no result pickling.

Per-shard plan selection
------------------------
Shards differ in density and skew, so each shard gets its *own* inner
plan from its own stats (:func:`select_shard_plan`): tiny shards run the
one-shot ``row_segment`` kernel, everything else runs ``blocked`` with a
tile sized to the worker's cache budget (``REPRO_SHARD_CACHE_KB``) —
input inspection applied at shard granularity.

Determinism contract
--------------------
Shard bounds never split a row, and the inner kernels reduce each row's
edges in CSR order, so the sharded result is **bitwise identical** to
every other strategy for all supported semirings (mean included: row
degrees are row-local).

Failure model
-------------
A worker death, remote exception, or IPC timeout raises
:class:`ShardedWorkerError` (a ``RuntimeError``), marks the pool broken
(it is rebuilt lazily), and lets the guarded runtime's fallback ladder
demote to an in-process strategy.  Segments are tracked parent-side and
unlinked on release/atexit so ``/dev/shm`` is left clean; workers
unregister attachments from their own ``resource_tracker`` to avoid
double-unlink races.
"""

from __future__ import annotations

import atexit
import logging
import os
import queue
import signal
import time
import traceback
import uuid
import multiprocessing as mp
from collections import OrderedDict
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..graphs.partition import plan_row_shards
from ..sparse import CSRMatrix
from .blocked import DEFAULT_BLOCK_NNZ
from .semiring import Semiring, get_semiring

__all__ = [
    "ShardedWorkerError",
    "default_num_workers",
    "default_num_shards",
    "estimate_segment_bytes",
    "gspmm_sharded",
    "kill_one_worker",
    "live_segment_bytes",
    "request_worker_kill",
    "select_shard_plan",
    "sharded_pool",
    "shutdown_pool",
    "sweep_leaked_segments",
]

logger = logging.getLogger(__name__)

# Every segment this module creates carries this name prefix plus the
# creating pid, so a startup sweep can recognise — and reclaim — segments
# leaked by a previous process that died without running its atexit
# cleanup (SIGKILL, OOM-kill, power loss).
SEGMENT_PREFIX = "granii-shm"

# Shards smaller than this run the one-shot row_segment kernel: the tile
# bookkeeping of the blocked kernel costs more than it saves.
SMALL_SHARD_NNZ = 4096

# How many distinct graphs keep live shared segments at once (the verify
# sweep alternates a graph and its transpose per training step).
_GRAPH_CACHE_CAP = 4

# Per-worker cap on cached segment attachments (attach/mmap is a syscall;
# steady-state reuse should hit this cache).
_WORKER_ATTACH_CAP = 32

_POLL_SECONDS = 0.2  # result-queue poll granularity for liveness checks


class ShardedWorkerError(RuntimeError):
    """A sharded-SpMM worker died, raised remotely, or timed out.

    Deliberately a ``RuntimeError``: the guarded runtime classifies it as
    a kernel error and demotes down the fallback ladder.
    """


def default_num_workers() -> int:
    """``REPRO_NUM_WORKERS``, or ``min(4, cpu_count)`` when unset/0."""
    value = config.num_workers()
    if value > 0:
        return value
    return max(1, min(4, os.cpu_count() or 1))


def default_num_shards(nnz: int, num_workers: int) -> int:
    """Shard count: ~``REPRO_SHARD_NNZ`` edges per shard, clamped so every
    worker has work but no more than 4 shards queue behind each."""
    per_shard = config.shard_nnz()
    wanted = -(-max(int(nnz), 1) // per_shard)  # ceil
    return int(min(max(wanted, num_workers), 4 * num_workers))


def select_shard_plan(
    shard_nnz: int, shard_rows: int, k: int
) -> Tuple[str, Optional[int]]:
    """Pick the inner (strategy, block_nnz) for one shard from its stats.

    This is the engine's input inspection applied per shard: tiny shards
    take the one-shot path; dense shards get a tile sized so one
    ``(block_nnz, k)`` float64 workspace tile fits the configured cache
    budget — on the large R-MAT benchmark this is worth ~2x over the
    global default tile.
    """
    if shard_nnz <= SMALL_SHARD_NNZ:
        return "row_segment", None
    budget_bytes = config.shard_cache_kb() * 1024
    block = budget_bytes // (8 * max(int(k), 1))
    return "blocked", int(min(max(block, 512), DEFAULT_BLOCK_NNZ))


def estimate_segment_bytes(
    num_rows: int, num_cols: int, nnz: int, k: int, weighted: bool = True
) -> float:
    """Parent-side shared-memory footprint of one sharded g-SpMM call.

    indptr + indices (+ values) for the graph, the dense operand, and
    the output — all float64/int64.  Used by :class:`ExecutionBudget` to
    account segments against the per-plan memory budget.
    """
    graph = 8.0 * (num_rows + 1) + 8.0 * nnz * (2 if weighted else 1)
    dense = 8.0 * num_cols * max(int(k), 0)
    out = 8.0 * num_rows * max(int(k), 1)
    return graph + dense + out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Keep the child's resource_tracker from unlinking parent segments."""
    try:  # pragma: no cover - exercised only in worker processes
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _attach(cache: "OrderedDict[str, shared_memory.SharedMemory]", name: str):
    shm = cache.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        cache[name] = shm
        while len(cache) > _WORKER_ATTACH_CAP:
            _, old = cache.popitem(last=False)
            old.close()
    else:
        cache.move_to_end(name)
    return shm


def _run_shard(task, attached, arena) -> None:
    """Execute one shard: sub-CSR view -> inner gspmm -> disjoint write."""
    from .spmm import gspmm

    (_, names, meta, r0, r1, reduce_name, binary_name, inner, block) = task
    n, ncols, nnz, k_in, k_out, has_values = meta
    if r1 <= r0:
        return  # zero-row shard: nothing to compute, nothing to write
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=_attach(attached, names["indptr"]).buf)
    e0, e1 = int(indptr[r0]), int(indptr[r1])
    indices = np.ndarray((nnz,), dtype=np.int64, buffer=_attach(attached, names["indices"]).buf)
    values = None
    if has_values:
        values = np.ndarray(
            (nnz,), dtype=np.float64, buffer=_attach(attached, names["values"]).buf
        )[e0:e1]
    x = np.ndarray((ncols, k_in), dtype=np.float64, buffer=_attach(attached, names["x"]).buf)
    out = np.ndarray((n, k_out), dtype=np.float64, buffer=_attach(attached, names["out"]).buf)
    sub = CSRMatrix(
        indptr[r0 : r1 + 1] - e0,  # copies; the shard's local row pointers
        indices[e0:e1],
        values,
        (r1 - r0, ncols),
    )
    semiring = get_semiring(reduce_name, binary_name)
    out[r0:r1] = gspmm(
        sub, x, semiring, strategy=inner, block_nnz=block, workspace=arena
    )


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover
    """Worker loop; runs in a child process (coverage can't see it)."""
    # The parent validated the CSR once; shard views are trusted.  Set in
    # the child's own environment, before any config read in this process.
    os.environ["REPRO_SKIP_VALIDATION"] = "1"  # lint: allow(env-outside-config)
    from .workspace import WorkspaceArena

    arena = WorkspaceArena()
    attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
    while True:
        task = task_queue.get()
        if task is None:
            break
        try:
            _run_shard(task, attached, arena)
        except BaseException as exc:
            result_queue.put(
                ("err", task[0], f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        else:
            result_queue.put(("ok", task[0]))
    for shm in attached.values():
        shm.close()


# ----------------------------------------------------------------------
# Parent side: segments
# ----------------------------------------------------------------------
def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    # SharedMemory refuses size=0; zero-size arrays ride a 1-byte segment
    return shared_memory.SharedMemory(
        create=True, size=max(int(nbytes), 1), name=_segment_name()
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else — not ours to judge
    except OSError:
        return True
    return True


_SWEEP_DONE = False


def sweep_leaked_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Reclaim shared-memory segments leaked by dead processes.

    Scans ``shm_dir`` for segments matching our naming scheme
    (``granii-shm-<pid>-<token>``), and unlinks every one whose creating
    pid no longer exists — the leftovers of a process that was
    SIGKILLed/OOM-killed before its atexit cleanup ran.  Segments of
    live processes (including our own) are never touched.  Returns the
    reclaimed segment names; logs a warning naming what it reclaimed.
    """
    reclaimed: List[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return reclaimed  # non-POSIX shm layout: nothing to sweep
    own_pid = os.getpid()
    for name in entries:
        if not name.startswith(SEGMENT_PREFIX + "-"):
            continue
        parts = name.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
        except FileNotFoundError:
            continue  # raced another sweeper; already gone
        except OSError:
            continue
        reclaimed.append(name)
    if reclaimed:
        logger.warning(
            "reclaimed %d leaked shared-memory segment(s) from dead "
            "processes: %s",
            len(reclaimed),
            ", ".join(sorted(reclaimed)),
        )
    return reclaimed


def _startup_sweep() -> None:
    """Run the leak sweep once, the first time a pool is brought up."""
    global _SWEEP_DONE
    if not _SWEEP_DONE:
        _SWEEP_DONE = True
        sweep_leaked_segments()


def _fill_segment(shm: shared_memory.SharedMemory, arr: np.ndarray) -> None:
    if arr.size:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr


_GRAPH_SEGMENTS: "OrderedDict[str, Dict[str, shared_memory.SharedMemory]]" = OrderedDict()


def _release_entry(entry: Dict[str, shared_memory.SharedMemory]) -> None:
    for shm in entry.values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


def _graph_segments(adj: CSRMatrix) -> Dict[str, shared_memory.SharedMemory]:
    """Shared segments holding ``adj``'s CSR arrays, cached on the matrix.

    The cache token lives in ``adj._aux`` (the matrix's memo dict), so a
    plan that aggregates over the same adjacency every iteration uploads
    the graph exactly once; the LRU cap bounds resident segments when
    many distinct graphs stream through (the verify battery).
    """
    token = adj._aux.get("sharded_segments")
    if token is not None and token in _GRAPH_SEGMENTS:
        _GRAPH_SEGMENTS.move_to_end(token)
        return _GRAPH_SEGMENTS[token]
    token = uuid.uuid4().hex
    entry: Dict[str, shared_memory.SharedMemory] = {}
    for role, arr in (
        ("indptr", adj.indptr),
        ("indices", adj.indices),
        ("values", adj.values),
    ):
        if arr is None:
            continue
        arr = np.ascontiguousarray(arr)
        shm = _create_segment(arr.nbytes)
        _fill_segment(shm, arr)
        entry[role] = shm
    adj._aux["sharded_segments"] = token
    _GRAPH_SEGMENTS[token] = entry
    while len(_GRAPH_SEGMENTS) > _GRAPH_CACHE_CAP:
        _, old = _GRAPH_SEGMENTS.popitem(last=False)
        _release_entry(old)
    return entry


# Free dense buffers pooled by (rounded) size, reused across calls.
_BUFFER_POOL: Dict[int, List[shared_memory.SharedMemory]] = {}
_BUFFER_POOL_CAP_BYTES = 1 << 30


def _rounded_size(nbytes: int) -> int:
    return 1 << max(int(nbytes - 1).bit_length() if nbytes > 1 else 0, 12)


def _acquire_buffer(nbytes: int) -> shared_memory.SharedMemory:
    size = _rounded_size(nbytes)
    free = _BUFFER_POOL.get(size)
    if free:
        return free.pop()
    return shared_memory.SharedMemory(
        create=True, size=size, name=_segment_name()
    )


def _release_buffer(shm: shared_memory.SharedMemory) -> None:
    pooled = sum(size * len(free) for size, free in _BUFFER_POOL.items())
    if pooled + shm.size > _BUFFER_POOL_CAP_BYTES:
        _discard_buffer(shm)
        return
    _BUFFER_POOL.setdefault(shm.size, []).append(shm)


def _discard_buffer(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:
        pass


def live_segment_bytes() -> int:
    """Bytes of shared memory currently held by this process (cache+pool)."""
    total = 0
    for entry in _GRAPH_SEGMENTS.values():
        total += sum(shm.size for shm in entry.values())
    for size, free in _BUFFER_POOL.items():
        total += size * len(free)
    return total


def release_segments() -> None:
    """Unlink every cached graph segment and pooled buffer."""
    while _GRAPH_SEGMENTS:
        _, entry = _GRAPH_SEGMENTS.popitem(last=False)
        _release_entry(entry)
    for free in _BUFFER_POOL.values():
        for shm in free:
            _discard_buffer(shm)
    _BUFFER_POOL.clear()


# ----------------------------------------------------------------------
# Parent side: the worker pool
# ----------------------------------------------------------------------
def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _WorkerPool:
    """Persistent workers, one task queue each plus a shared result queue.

    Per-worker queues make submission a deterministic round-robin (shard
    ``i`` -> worker ``i % W``) and keep a poisoned worker from stealing
    its siblings' tasks; the shared result queue gives the parent one
    place to wait with a timeout and a liveness check.
    """

    def __init__(self, num_workers: int) -> None:
        ctx = _mp_context()
        self.num_workers = num_workers
        self.broken = False
        self.task_queues = [ctx.SimpleQueue() for _ in range(num_workers)]
        self.result_queue = ctx.Queue()
        self.processes = []
        for i, task_queue in enumerate(self.task_queues):
            proc = ctx.Process(
                target=_worker_main,
                args=(task_queue, self.result_queue),
                name=f"repro-shard-{i}",
                daemon=True,
            )
            proc.start()
            self.processes.append(proc)

    def submit(self, shard_index: int, task) -> None:
        self.task_queues[shard_index % self.num_workers].put(task)

    def dead_workers(self) -> List[str]:
        return [
            f"{p.name} (exitcode {p.exitcode})"
            for p in self.processes
            if not p.is_alive()
        ]

    def collect(self, expected: int, timeout: float) -> None:
        """Wait for ``expected`` shard acks; raise on death/timeout/error."""
        deadline = time.monotonic() + timeout
        done = 0
        while done < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.broken = True
                raise ShardedWorkerError(
                    f"sharded SpMM timed out after {timeout:.1f}s with "
                    f"{expected - done} shard(s) outstanding "
                    f"(raise REPRO_SHARDED_TIMEOUT for slow hosts)"
                )
            try:
                msg = self.result_queue.get(timeout=min(_POLL_SECONDS, remaining))
            except queue.Empty:
                dead = self.dead_workers()
                if dead:
                    self.broken = True
                    raise ShardedWorkerError(
                        f"sharded SpMM worker(s) died mid-shard: {', '.join(dead)}"
                    ) from None
                continue
            if msg[0] == "ok":
                done += 1
            else:
                self.broken = True
                raise ShardedWorkerError(
                    f"shard {msg[1]} failed remotely: {msg[2]}\n{msg[3]}"
                )

    def kill_one(self) -> bool:
        """SIGKILL one live worker (the chaos harness's fault hook)."""
        for proc in self.processes:
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)
                return True
        return False

    def shutdown(self) -> None:
        for task_queue, proc in zip(self.task_queues, self.processes):
            try:
                if proc.is_alive():
                    task_queue.put(None)
            except Exception:
                pass
        for proc in self.processes:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for task_queue in self.task_queues:
            task_queue.close()
        self.result_queue.close()
        self.result_queue.join_thread()


_POOL: Optional[_WorkerPool] = None
_KILL_REQUESTED = False


def _get_pool(num_workers: int) -> _WorkerPool:
    global _POOL
    if _POOL is not None and (
        _POOL.broken or _POOL.num_workers != num_workers or _POOL.dead_workers()
    ):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _startup_sweep()
        _POOL = _WorkerPool(num_workers)
    return _POOL


def shutdown_pool() -> None:
    """Stop the warm worker pool (restarted lazily on the next call)."""
    global _POOL, _KILL_REQUESTED
    _KILL_REQUESTED = False
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def request_worker_kill() -> None:
    """Arm a one-shot SIGKILL of a worker during the *next* sharded call.

    Used by the ``kill_worker`` fault action to simulate a worker crash
    mid-shard; the next :func:`gspmm_sharded` kills one worker right
    after dispatching its shards.
    """
    global _KILL_REQUESTED
    _KILL_REQUESTED = True


def kill_one_worker() -> bool:
    """SIGKILL a live pool worker right now; returns False if no pool."""
    if _POOL is None:
        return False
    return _POOL.kill_one()


@contextmanager
def sharded_pool(num_workers: Optional[int] = None):
    """Scoped pool: warm within the block, shut down (and segments
    released) on exit.  Tests and short-lived drivers use this to
    guarantee a clean ``/dev/shm``; long-lived engines rely on the warm
    module pool plus the atexit hook instead."""
    pool = _get_pool(num_workers or default_num_workers())
    try:
        yield pool
    finally:
        shutdown_pool()
        release_segments()


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter shutdown
    try:
        shutdown_pool()
    finally:
        release_segments()


atexit.register(_atexit_cleanup)


# ----------------------------------------------------------------------
# The strategy entry point
# ----------------------------------------------------------------------
def _check_shard_bounds(bounds: np.ndarray, num_rows: int) -> None:
    """Disjoint-coverage check: the runtime discharge of the planlint
    obligation that sharded writes partition the output rows."""
    if (
        bounds.shape[0] < 2
        or int(bounds[0]) != 0
        or int(bounds[-1]) != num_rows
        or bool(np.any(np.diff(bounds) < 0))
    ):
        raise ShardedWorkerError(
            f"shard bounds {np.asarray(bounds).tolist()} do not disjointly "
            f"cover rows [0, {num_rows})"
        )


def gspmm_sharded(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    num_workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    block_nnz: Optional[int] = None,
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Process-parallel sharded g-SpMM; see the module docstring.

    ``block_nnz`` forces one tile size on every non-tiny shard; ``None``
    lets :func:`select_shard_plan` pick per shard.  ``timeout`` defaults
    to ``REPRO_SHARDED_TIMEOUT`` seconds.
    """
    global _KILL_REQUESTED
    if semiring is None:
        semiring = get_semiring()
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if semiring.binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}")
    n, ncols = int(adj.shape[0]), int(adj.shape[1])
    k_in = int(x.shape[1])
    k_out = 1 if semiring.binary.name == "copy_lhs" else k_in
    if n == 0:
        # empty result, returned to the caller  # lint: allow(raw-alloc-in-kernels)
        return np.empty((0, k_out), dtype=np.float64)
    if num_workers is None:
        num_workers = default_num_workers()
    num_workers = max(1, int(num_workers))
    if num_shards is None:
        num_shards = default_num_shards(adj.nnz, num_workers)
    bounds = plan_row_shards(adj.indptr, num_shards)
    _check_shard_bounds(bounds, n)

    pool = _get_pool(num_workers)
    if _KILL_REQUESTED:
        # Fault hook (repro.faults kill_worker): SIGKILL one worker *before*
        # its shards are submitted, so the tasks round-robined onto the dead
        # process can never complete and collect() must detect the corpse —
        # a deterministic stand-in for a worker dying mid-shard.
        _KILL_REQUESTED = False
        pool.kill_one()
    graph_entry = _graph_segments(adj)
    x_shm = _acquire_buffer(max(x.nbytes, 1))
    out_shm = _acquire_buffer(max(n * k_out * 8, 1))
    try:
        _fill_segment(x_shm, x)
        names = {
            "indptr": graph_entry["indptr"].name,
            "indices": graph_entry["indices"].name,
            "x": x_shm.name,
            "out": out_shm.name,
        }
        has_values = adj.values is not None
        if has_values:
            names["values"] = graph_entry["values"].name
        meta = (n, ncols, int(adj.nnz), k_in, k_out, has_values)
        submitted = 0
        for i in range(num_shards):
            r0, r1 = int(bounds[i]), int(bounds[i + 1])
            shard_edges = int(adj.indptr[r1] - adj.indptr[r0])
            if block_nnz is not None:
                inner, block = "blocked", int(block_nnz)
            else:
                inner, block = select_shard_plan(shard_edges, r1 - r0, k_in)
            pool.submit(i, (i, names, meta, r0, r1,
                            semiring.reduce.name, semiring.binary.name,
                            inner, block))
            submitted += 1
        pool.collect(submitted, timeout or config.sharded_timeout_seconds())
        out = np.ndarray((n, k_out), dtype=np.float64, buffer=out_shm.buf).copy()
    except Exception:
        # A late worker write into a recycled buffer would corrupt an
        # unrelated call: on any failure the buffers die with the pool.
        _discard_buffer(x_shm)
        _discard_buffer(out_shm)
        shutdown_pool()
        raise
    _release_buffer(x_shm)
    _release_buffer(out_shm)
    return out
