"""Process-parallel sharded g-SpMM over shared-memory buffers.

The ``blocked_parallel`` strategy fans row blocks over a thread pool,
but NumPy reduction loops hold the GIL often enough that it ties
single-threaded ``blocked`` on large graphs.  This module sidesteps the
GIL entirely: the graph is split into contiguous, nnz-balanced *row
shards* (:func:`repro.graphs.partition.plan_row_shards`), the CSR
arrays, the dense operand and the result matrix are placed in
``multiprocessing.shared_memory`` segments, and a persistent pool of
worker processes each runs an ordinary in-process g-SpMM over its
shard's sub-CSR view, writing results into a disjoint row range of the
shared output — zero-copy reads, no result pickling.

Per-shard plan selection
------------------------
Shards differ in density and skew, so each shard gets its *own* inner
plan from its own stats (:func:`select_shard_plan`): tiny shards run the
one-shot ``row_segment`` kernel, everything else runs ``blocked`` with a
tile sized to the worker's cache budget (``REPRO_SHARD_CACHE_KB``) —
input inspection applied at shard granularity.

Determinism contract
--------------------
Shard bounds never split a row, and the inner kernels reduce each row's
edges in CSR order, so the sharded result is **bitwise identical** to
every other strategy for all supported semirings (mean included: row
degrees are row-local).

Failure model
-------------
The pool is *self-healing*: every worker stamps a heartbeat into a
shared segment around each shard, so the parent can tell a dead worker
(SIGKILL/OOM), a hung worker (alive but silent past
``REPRO_SHARD_HEARTBEAT_S`` — e.g. SIGSTOPped or deadlocked), and an
idle worker apart.  A dead or hung worker is killed and respawned in
place (fresh task queue, exponential backoff per slot) and its unacked
shards are resubmitted to the surviving workers — the call completes
with the same bitwise-deterministic output instead of failing.
:class:`ShardedWorkerError` (a ``RuntimeError``) is the *last resort*:
it is raised only for a remote kernel exception (a deterministic bug a
retry cannot fix), an exhausted respawn budget
(``REPRO_SHARD_RESPAWNS``), shared-memory exhaustion, or an overall
call timeout — and then the guarded runtime's fallback ladder demotes
to an in-process strategy.  Segments are tracked parent-side and
unlinked on release/atexit so ``/dev/shm`` is left clean; workers
unregister attachments from their own ``resource_tracker`` to avoid
double-unlink races.
"""

from __future__ import annotations

import atexit
import logging
import os
import queue
import signal
import threading
import time
import traceback
import uuid
import multiprocessing as mp
from collections import OrderedDict
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config
from ..graphs.partition import plan_row_shards
from ..sparse import CSRMatrix
from .blocked import DEFAULT_BLOCK_NNZ
from .semiring import Semiring, get_semiring

__all__ = [
    "ShardedWorkerError",
    "default_num_workers",
    "default_num_shards",
    "drain_pool",
    "estimate_segment_bytes",
    "gspmm_sharded",
    "hang_one_worker",
    "kill_one_worker",
    "live_segment_bytes",
    "pool_health",
    "request_shm_exhaustion",
    "request_worker_hang",
    "request_worker_kill",
    "select_shard_plan",
    "sharded_pool",
    "shutdown_pool",
    "sweep_leaked_segments",
]

logger = logging.getLogger(__name__)

# Every segment this module creates carries this name prefix plus the
# creating pid, so a startup sweep can recognise — and reclaim — segments
# leaked by a previous process that died without running its atexit
# cleanup (SIGKILL, OOM-kill, power loss).
SEGMENT_PREFIX = "granii-shm"

# Shards smaller than this run the one-shot row_segment kernel: the tile
# bookkeeping of the blocked kernel costs more than it saves.
SMALL_SHARD_NNZ = 4096

# How many distinct graphs keep live shared segments at once (the verify
# sweep alternates a graph and its transpose per training step).
_GRAPH_CACHE_CAP = 4

# Per-worker cap on cached segment attachments (attach/mmap is a syscall;
# steady-state reuse should hit this cache).
_WORKER_ATTACH_CAP = 32

# Exponential-backoff base/cap for in-place worker respawns.
_RESPAWN_BACKOFF_BASE = 0.05
_RESPAWN_BACKOFF_MAX = 1.0


class ShardedWorkerError(RuntimeError):
    """The sharded pool could not complete a call despite self-healing:
    a remote kernel exception, an exhausted respawn budget, shared-memory
    exhaustion, or an overall call timeout.

    Deliberately a ``RuntimeError``: the guarded runtime classifies it as
    a kernel error and demotes down the fallback ladder.
    """


def default_num_workers() -> int:
    """``REPRO_NUM_WORKERS``, or ``min(4, cpu_count)`` when unset/0."""
    value = config.num_workers()
    if value > 0:
        return value
    return max(1, min(4, os.cpu_count() or 1))


def default_num_shards(nnz: int, num_workers: int) -> int:
    """Shard count: ~``REPRO_SHARD_NNZ`` edges per shard, clamped so every
    worker has work but no more than 4 shards queue behind each."""
    per_shard = config.shard_nnz()
    wanted = -(-max(int(nnz), 1) // per_shard)  # ceil
    return int(min(max(wanted, num_workers), 4 * num_workers))


def select_shard_plan(
    shard_nnz: int, shard_rows: int, k: int
) -> Tuple[str, Optional[int]]:
    """Pick the inner (strategy, block_nnz) for one shard from its stats.

    This is the engine's input inspection applied per shard: tiny shards
    take the one-shot path; dense shards get a tile sized so one
    ``(block_nnz, k)`` float64 workspace tile fits the configured cache
    budget — on the large R-MAT benchmark this is worth ~2x over the
    global default tile.
    """
    if shard_nnz <= SMALL_SHARD_NNZ:
        return "row_segment", None
    budget_bytes = config.shard_cache_kb() * 1024
    block = budget_bytes // (8 * max(int(k), 1))
    return "blocked", int(min(max(block, 512), DEFAULT_BLOCK_NNZ))


def estimate_segment_bytes(
    num_rows: int, num_cols: int, nnz: int, k: int, weighted: bool = True
) -> float:
    """Parent-side shared-memory footprint of one sharded g-SpMM call.

    indptr + indices (+ values) for the graph, the dense operand, and
    the output — all float64/int64.  Used by :class:`ExecutionBudget` to
    account segments against the per-plan memory budget.
    """
    graph = 8.0 * (num_rows + 1) + 8.0 * nnz * (2 if weighted else 1)
    dense = 8.0 * num_cols * max(int(k), 0)
    out = 8.0 * num_rows * max(int(k), 1)
    return graph + dense + out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Keep the child's resource_tracker from unlinking parent segments."""
    try:  # pragma: no cover - exercised only in worker processes
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _attach(cache: "OrderedDict[str, shared_memory.SharedMemory]", name: str):
    shm = cache.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        cache[name] = shm
        while len(cache) > _WORKER_ATTACH_CAP:
            _, old = cache.popitem(last=False)
            old.close()
    else:
        cache.move_to_end(name)
    return shm


def _run_shard(task, attached, arena) -> None:
    """Execute one shard: sub-CSR view -> inner gspmm -> disjoint write."""
    from .spmm import gspmm

    (_, names, meta, r0, r1, reduce_name, binary_name, inner, block) = task
    n, ncols, nnz, k_in, k_out, has_values = meta
    if r1 <= r0:
        return  # zero-row shard: nothing to compute, nothing to write
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=_attach(attached, names["indptr"]).buf)
    e0, e1 = int(indptr[r0]), int(indptr[r1])
    indices = np.ndarray((nnz,), dtype=np.int64, buffer=_attach(attached, names["indices"]).buf)
    values = None
    if has_values:
        values = np.ndarray(
            (nnz,), dtype=np.float64, buffer=_attach(attached, names["values"]).buf
        )[e0:e1]
    x = np.ndarray((ncols, k_in), dtype=np.float64, buffer=_attach(attached, names["x"]).buf)
    out = np.ndarray((n, k_out), dtype=np.float64, buffer=_attach(attached, names["out"]).buf)
    sub = CSRMatrix(
        indptr[r0 : r1 + 1] - e0,  # copies; the shard's local row pointers
        indices[e0:e1],
        values,
        (r1 - r0, ncols),
    )
    semiring = get_semiring(reduce_name, binary_name)
    out[r0:r1] = gspmm(
        sub, x, semiring, strategy=inner, block_nnz=block, workspace=arena
    )


def _worker_main(
    worker_index, hb_name, task_queue, result_queue
) -> None:  # pragma: no cover
    """Worker loop; runs in a child process (coverage can't see it).

    The worker stamps a heartbeat — ``[last_beat, busy_since]`` float64
    pair at its slot of the shared heartbeat segment — at startup, when
    it picks a task up, and when it finishes one, so the parent can tell
    *hung while computing* (stale ``busy_since``) from *idle* apart.
    """
    # The parent validated the CSR once; shard views are trusted.  Set in
    # the child's own environment, before any config read in this process.
    os.environ["REPRO_SKIP_VALIDATION"] = "1"  # lint: allow(env-outside-config)
    from .workspace import WorkspaceArena

    arena = WorkspaceArena()
    attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
    hb = None
    try:
        hb_shm = shared_memory.SharedMemory(name=hb_name)
        _untrack(hb_shm)
        hb = np.ndarray(
            (2,), dtype=np.float64, buffer=hb_shm.buf,
            offset=16 * int(worker_index),
        )
        hb[0] = time.monotonic()
    except Exception:
        hb = None  # heartbeatless workers still compute; only healing degrades
    parent_pid = os.getppid()
    while True:
        # Poll instead of blocking forever: if the parent is SIGKILLed its
        # sentinel never arrives (and sibling workers inherited the queue's
        # write end, so no EOF either) — self-reap instead of leaking an
        # orphan that pins attached segments.
        try:
            if not task_queue._reader.poll(2.0):
                # getppid changes the moment the parent terminates, even
                # while it is still an unreaped zombie (os.kill(pid, 0)
                # would succeed on the zombie and deadlock against a
                # supervisor that reaps only after pipe EOF)
                if os.getppid() != parent_pid:
                    break
                continue
        except (OSError, EOFError):
            break
        task = task_queue.get()
        if task is None:
            break
        if hb is not None:
            hb[1] = hb[0] = time.monotonic()
        try:
            _run_shard(task, attached, arena)
        except BaseException as exc:
            result_queue.put(
                ("err", task[0], f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        else:
            result_queue.put(("ok", task[0]))
        if hb is not None:
            hb[0] = time.monotonic()
            hb[1] = 0.0
    for shm in attached.values():
        shm.close()


# ----------------------------------------------------------------------
# Parent side: segments
# ----------------------------------------------------------------------
def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"


_SHM_EXHAUST_REQUESTED = False


def request_shm_exhaustion() -> None:
    """Arm a one-shot allocation failure for the *next* segment create.

    Used by the ``shm_exhaustion`` fault action to simulate ``/dev/shm``
    running out of space; the next sharded call fails structured (the
    fallback ladder demotes it) instead of half-allocating.
    """
    global _SHM_EXHAUST_REQUESTED
    _SHM_EXHAUST_REQUESTED = True


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    global _SHM_EXHAUST_REQUESTED
    if _SHM_EXHAUST_REQUESTED:
        _SHM_EXHAUST_REQUESTED = False
        raise ShardedWorkerError(
            "injected shared-memory exhaustion (shm_exhaustion fault)"
        )
    try:
        # SharedMemory refuses size=0; zero-size arrays ride a 1-byte segment
        return shared_memory.SharedMemory(
            create=True, size=max(int(nbytes), 1), name=_segment_name()
        )
    except OSError as exc:
        # ENOSPC/ENOMEM on /dev/shm: surface structured so the guard
        # ladder demotes to an in-process strategy instead of crashing
        raise ShardedWorkerError(
            f"shared-memory segment allocation of {max(int(nbytes), 1)} "
            f"bytes failed ({exc}); /dev/shm may be exhausted"
        ) from exc


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else — not ours to judge
    except OSError:
        return True
    return True


_SWEEP_DONE = False


def sweep_leaked_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Reclaim shared-memory segments leaked by dead processes.

    Scans ``shm_dir`` for segments matching our naming scheme
    (``granii-shm-<pid>-<token>``), and unlinks every one whose creating
    pid no longer exists — the leftovers of a process that was
    SIGKILLed/OOM-killed before its atexit cleanup ran.  Segments of
    live processes (including our own) are never touched.  Returns the
    reclaimed segment names; logs a warning naming what it reclaimed.
    """
    reclaimed: List[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return reclaimed  # non-POSIX shm layout: nothing to sweep
    own_pid = os.getpid()
    for name in entries:
        if not name.startswith(SEGMENT_PREFIX + "-"):
            continue
        parts = name.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
        except FileNotFoundError:
            continue  # raced another sweeper; already gone
        except OSError:
            continue
        reclaimed.append(name)
    if reclaimed:
        logger.warning(
            "reclaimed %d leaked shared-memory segment(s) from dead "
            "processes: %s",
            len(reclaimed),
            ", ".join(sorted(reclaimed)),
        )
    return reclaimed


def _startup_sweep() -> None:
    """Run the leak sweep once, the first time a pool is brought up."""
    global _SWEEP_DONE
    if not _SWEEP_DONE:
        _SWEEP_DONE = True
        sweep_leaked_segments()


def _fill_segment(shm: shared_memory.SharedMemory, arr: np.ndarray) -> None:
    if arr.size:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr


_GRAPH_SEGMENTS: "OrderedDict[str, Dict[str, shared_memory.SharedMemory]]" = OrderedDict()


def _release_entry(entry: Dict[str, shared_memory.SharedMemory]) -> None:
    for shm in entry.values():
        try:
            shm.close()
            shm.unlink()
        except OSError:
            # a respawn/atexit race may have unlinked it already: a
            # double release must log-and-continue, never raise
            logger.debug("segment %s already released", shm.name)


def _graph_segments(adj: CSRMatrix) -> Dict[str, shared_memory.SharedMemory]:
    """Shared segments holding ``adj``'s CSR arrays, cached on the matrix.

    The cache token lives in ``adj._aux`` (the matrix's memo dict), so a
    plan that aggregates over the same adjacency every iteration uploads
    the graph exactly once; the LRU cap bounds resident segments when
    many distinct graphs stream through (the verify battery).
    """
    token = adj._aux.get("sharded_segments")
    if token is not None and token in _GRAPH_SEGMENTS:
        _GRAPH_SEGMENTS.move_to_end(token)
        return _GRAPH_SEGMENTS[token]
    token = uuid.uuid4().hex
    entry: Dict[str, shared_memory.SharedMemory] = {}
    try:
        for role, arr in (
            ("indptr", adj.indptr),
            ("indices", adj.indices),
            ("values", adj.values),
        ):
            if arr is None:
                continue
            arr = np.ascontiguousarray(arr)
            shm = _create_segment(arr.nbytes)
            # register before filling: if the fill faults, the handler
            # below can only release segments the entry already owns
            entry[role] = shm
            _fill_segment(shm, arr)
    except Exception:
        _release_entry(entry)  # allocation died mid-graph: no half entries
        raise
    adj._aux["sharded_segments"] = token
    _GRAPH_SEGMENTS[token] = entry
    while len(_GRAPH_SEGMENTS) > _GRAPH_CACHE_CAP:
        _, old = _GRAPH_SEGMENTS.popitem(last=False)
        _release_entry(old)
    return entry


# Free dense buffers pooled by (rounded) size, reused across calls.
_BUFFER_POOL: Dict[int, List[shared_memory.SharedMemory]] = {}
_BUFFER_POOL_CAP_BYTES = 1 << 30


def _rounded_size(nbytes: int) -> int:
    return 1 << max(int(nbytes - 1).bit_length() if nbytes > 1 else 0, 12)


def _acquire_buffer(nbytes: int) -> shared_memory.SharedMemory:
    size = _rounded_size(nbytes)
    free = _BUFFER_POOL.get(size)
    if free:
        return free.pop()
    return _create_segment(size)


def _release_buffer(shm: shared_memory.SharedMemory) -> None:
    pooled = sum(size * len(free) for size, free in _BUFFER_POOL.items())
    if pooled + shm.size > _BUFFER_POOL_CAP_BYTES:
        _discard_buffer(shm)
        return
    _BUFFER_POOL.setdefault(shm.size, []).append(shm)


def _discard_buffer(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except OSError:
        # idempotent under the worker-respawn/atexit double-release race
        logger.debug("segment %s already released", shm.name)


def live_segment_bytes() -> int:
    """Bytes of shared memory currently held by this process (cache+pool)."""
    total = 0
    for entry in _GRAPH_SEGMENTS.values():
        total += sum(shm.size for shm in entry.values())
    for size, free in _BUFFER_POOL.items():
        total += size * len(free)
    return total


def release_segments() -> None:
    """Unlink every cached graph segment and pooled buffer."""
    while _GRAPH_SEGMENTS:
        _, entry = _GRAPH_SEGMENTS.popitem(last=False)
        _release_entry(entry)
    for free in _BUFFER_POOL.values():
        for shm in free:
            _discard_buffer(shm)
    _BUFFER_POOL.clear()


# ----------------------------------------------------------------------
# Parent side: the worker pool
# ----------------------------------------------------------------------
def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _WorkerPool:
    """Persistent *self-healing* workers: one task queue each, a shared
    result queue, and a shared heartbeat segment.

    Per-worker queues make submission a deterministic round-robin (shard
    ``i`` -> worker ``i % W``) and keep a poisoned worker from stealing
    its siblings' tasks; the shared result queue gives the parent one
    place to wait with a timeout.  The parent tracks every submitted
    task until its ack arrives, so when a worker dies or hangs
    (heartbeat silent past ``REPRO_SHARD_HEARTBEAT_S`` while holding
    shards) it can be killed, respawned in place — fresh task queue,
    exponential backoff per slot — and its unacked shards resubmitted
    to the survivors.  Shard writes land in disjoint ``out[r0:r1]``
    ranges, so re-running a possibly-half-finished shard is idempotent
    and the healed call stays bitwise-identical.
    """

    def __init__(self, num_workers: int) -> None:
        self._ctx = _mp_context()
        self.num_workers = num_workers
        self.broken = False
        self.restarts = 0  # pool-lifetime respawn count (health probe)
        self.slot_restarts = [0] * num_workers
        self.hb_shm = _create_segment(16 * num_workers)
        self._hb = np.ndarray(
            (num_workers, 2), dtype=np.float64, buffer=self.hb_shm.buf
        )
        self._hb[...] = 0.0
        self.result_queue = self._ctx.Queue()
        self.task_queues = []
        self.processes = []
        # inflight bookkeeping: shard id -> (slot, task); per-slot views
        self._inflight: Dict[int, Tuple[int, tuple]] = {}
        self._slot_inflight: List[set] = [set() for _ in range(num_workers)]
        # last observed progress per slot: spawn, ack, or heartbeat change
        now = time.monotonic()
        self._progress = [now] * num_workers
        self._last_beat = [0.0] * num_workers
        for i in range(num_workers):
            self.task_queues.append(self._ctx.SimpleQueue())
            self.processes.append(self._spawn(i))

    def _spawn(self, slot: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                slot, self.hb_shm.name,
                self.task_queues[slot], self.result_queue,
            ),
            name=f"repro-shard-{slot}",
            daemon=True,
        )
        proc.start()
        self._progress[slot] = time.monotonic()
        return proc

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, shard_index: int, task) -> None:
        self._assign(shard_index % self.num_workers, task)

    def _assign(self, slot: int, task) -> None:
        shard_id = task[0]
        self._inflight[shard_id] = (slot, task)
        self._slot_inflight[slot].add(shard_id)
        # the hang clock starts at assignment, not at the (possibly long
        # ago) previous heartbeat — an idle pool is not a hung pool
        self._progress[slot] = time.monotonic()
        self.task_queues[slot].put(task)

    def dead_workers(self) -> List[str]:
        return [
            f"{p.name} (exitcode {p.exitcode})"
            for p in self.processes
            if not p.is_alive()
        ]

    def alive_count(self) -> int:
        return sum(1 for p in self.processes if p.is_alive())

    def ensure_alive(self) -> None:
        """Respawn any worker that died while idle (between calls)."""
        for slot, proc in enumerate(self.processes):
            if not proc.is_alive():
                self.restarts += 1
                self.slot_restarts[slot] += 1
                self.task_queues[slot] = self._ctx.SimpleQueue()
                self.processes[slot] = self._spawn(slot)

    # ------------------------------------------------------------------
    # Collection + healing
    # ------------------------------------------------------------------
    def _observe_heartbeats(self) -> None:
        """Fold heartbeat-segment changes into per-slot progress times."""
        now = time.monotonic()
        for slot in range(self.num_workers):
            beat = float(self._hb[slot, 0])
            if beat != self._last_beat[slot]:
                self._last_beat[slot] = beat
                self._progress[slot] = now

    def _hung_slots(self, heartbeat_s: float) -> List[int]:
        """Slots holding shards with no progress for ``heartbeat_s``.

        Covers both a worker stalled *inside* a shard (busy marker set,
        heartbeat frozen — SIGSTOP, deadlock) and one stopped while its
        queue holds work it never picks up.
        """
        self._observe_heartbeats()
        now = time.monotonic()
        return [
            slot
            for slot in range(self.num_workers)
            if self._slot_inflight[slot]
            and now - self._progress[slot] > heartbeat_s
        ]

    def _heal(self, counters: Dict[str, int], deadline: float) -> None:
        """Kill hung workers, respawn dead slots, resubmit orphans."""
        heartbeat_s = config.shard_heartbeat_seconds()
        budget = config.shard_respawns()
        for slot in self._hung_slots(heartbeat_s):
            proc = self.processes[slot]
            if proc.is_alive() and proc.pid is not None:
                logger.warning(
                    "sharded worker %s hung (silent %.1fs past "
                    "REPRO_SHARD_HEARTBEAT_S with %d shard(s)); killing",
                    proc.name, heartbeat_s, len(self._slot_inflight[slot]),
                )
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)
        for slot, proc in enumerate(self.processes):
            if proc.is_alive():
                continue
            counters["respawns"] += 1
            if counters["respawns"] > budget:
                self.broken = True
                raise ShardedWorkerError(
                    f"sharded SpMM gave up after {budget} worker "
                    f"respawn(s) in one call (REPRO_SHARD_RESPAWNS); "
                    f"last corpse: {proc.name} (exitcode {proc.exitcode})"
                )
            self.restarts += 1
            self.slot_restarts[slot] += 1
            backoff = min(
                _RESPAWN_BACKOFF_BASE * (2 ** (self.slot_restarts[slot] - 1)),
                _RESPAWN_BACKOFF_MAX,
            )
            backoff = min(backoff, max(deadline - time.monotonic(), 0.0))
            if backoff > 0.0:
                time.sleep(backoff)
            orphans = [
                self._inflight[shard_id][1]
                for shard_id in sorted(self._slot_inflight[slot])
            ]
            self._slot_inflight[slot].clear()
            # abandoned queue may still hold orphans; the replacement gets
            # a fresh queue so nothing is ever executed twice concurrently
            self.task_queues[slot] = self._ctx.SimpleQueue()
            self.processes[slot] = self._spawn(slot)
            survivors = [
                s for s in range(self.num_workers)
                if self.processes[s].is_alive()
            ] or [slot]
            for i, task in enumerate(orphans):
                target = survivors[i % len(survivors)]
                logger.warning(
                    "resubmitting shard %s from dead worker slot %d to %s",
                    task[0], slot, self.processes[target].name,
                )
                self._assign(target, task)

    def collect(self, expected: int, timeout: float) -> None:
        """Wait for ``expected`` shard acks, healing workers as needed.

        Raises :class:`ShardedWorkerError` only as a last resort: remote
        kernel exception, respawn budget exhausted, or overall timeout.
        """
        deadline = time.monotonic() + timeout
        poll = config.shard_poll_seconds()
        counters = {"respawns": 0}
        done_ids: set = set()
        while len(done_ids) < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.broken = True
                raise ShardedWorkerError(
                    f"sharded SpMM timed out after {timeout:.1f}s with "
                    f"{expected - len(done_ids)} shard(s) outstanding "
                    f"(raise REPRO_SHARDED_TIMEOUT for slow hosts)"
                )
            try:
                msg = self.result_queue.get(timeout=min(poll, remaining))
            except queue.Empty:
                self._heal(counters, deadline)
                continue
            if msg[0] == "ok":
                shard_id = msg[1]
                if shard_id in done_ids:
                    continue  # duplicate ack after a resubmission race
                done_ids.add(shard_id)
                entry = self._inflight.pop(shard_id, None)
                if entry is not None:
                    slot = entry[0]
                    self._slot_inflight[slot].discard(shard_id)
                    self._progress[slot] = time.monotonic()
            else:
                # a remote exception is a deterministic kernel failure;
                # resubmitting it would fail identically — surface it
                self.broken = True
                raise ShardedWorkerError(
                    f"shard {msg[1]} failed remotely: {msg[2]}\n{msg[3]}"
                )
        self._inflight.clear()
        for inflight in self._slot_inflight:
            inflight.clear()

    # ------------------------------------------------------------------
    # Chaos hooks + lifecycle
    # ------------------------------------------------------------------
    def kill_one(self) -> bool:
        """SIGKILL one live worker (the chaos harness's fault hook)."""
        for proc in self.processes:
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)
                return True
        return False

    def stop_one(self) -> bool:
        """SIGSTOP one live worker: alive but silent (the hang fault)."""
        for proc in self.processes:
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGSTOP)
                return True
        return False

    def health(self) -> Dict[str, object]:
        return {
            "num_workers": self.num_workers,
            "alive": self.alive_count(),
            "restarts": self.restarts,
            "broken": self.broken,
            "inflight": len(self._inflight),
        }

    def shutdown(self) -> None:
        if getattr(self, "_shutdown_done", False):
            return  # respawn/atexit paths can race a second shutdown
        self._shutdown_done = True
        for task_queue, proc in zip(self.task_queues, self.processes):
            try:
                if proc.is_alive():
                    task_queue.put(None)
                    # a SIGSTOPped worker can't see the sentinel (or a
                    # SIGTERM) until resumed
                    os.kill(proc.pid, signal.SIGCONT)
            except Exception:
                pass
        for proc in self.processes:
            proc.join(timeout=2.0)
            if proc.is_alive():
                # a SIGSTOPped worker ignores terminate(); make sure the
                # corpse cannot wake up inside a recycled segment later
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=2.0)
        for task_queue in self.task_queues:
            task_queue.close()
        self.result_queue.close()
        self.result_queue.join_thread()
        try:
            self.hb_shm.close()
            self.hb_shm.unlink()
        except OSError:
            logger.debug("heartbeat segment already released")


_POOL: Optional[_WorkerPool] = None
_KILL_REQUESTED = False
_HANG_REQUESTED = False
# gspmm_sharded shares one result queue across the pool; two threads
# collecting concurrently would steal each other's acks.  The serving
# runtime calls in from multiple request threads, so pool use is
# serialized here — the workers, not the submitting threads, are the
# parallelism.
_POOL_LOCK = threading.RLock()


def _get_pool(num_workers: int) -> _WorkerPool:
    global _POOL
    if _POOL is not None and (
        _POOL.broken or _POOL.num_workers != num_workers
    ):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _startup_sweep()
        _POOL = _WorkerPool(num_workers)
    else:
        # a worker that died between calls is respawned in place rather
        # than costing the whole warm pool
        _POOL.ensure_alive()
    return _POOL


def shutdown_pool() -> None:
    """Stop the warm worker pool (restarted lazily on the next call).

    Also disarms any pending injected faults so a chaos scenario cannot
    leak an armed one-shot into the next pool's first call.
    """
    global _POOL, _KILL_REQUESTED, _HANG_REQUESTED, _SHM_EXHAUST_REQUESTED
    _KILL_REQUESTED = False
    _HANG_REQUESTED = False
    _SHM_EXHAUST_REQUESTED = False
    # lint: allow(lock-held-across-blocking-call) joining workers is the point
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


def drain_pool() -> None:
    """Gracefully quiesce the pool: wait for in-flight shards, then stop.

    Pool use is serialized by ``_POOL_LOCK`` and a call only releases it
    once every shard is acked, so taking the lock *is* the wait; the
    shutdown inside then observes an idle pool.  Service shutdown calls
    this before :func:`release_segments` so no worker can ever touch an
    unlinked segment.
    """
    # lint: allow(lock-held-across-blocking-call) taking the lock is the wait
    with _POOL_LOCK:
        shutdown_pool()


def pool_health() -> Dict[str, object]:
    """Liveness snapshot of the warm pool (``None``-safe, non-blocking).

    Reads pool fields without taking ``_POOL_LOCK`` so a health probe
    stays responsive while a long call holds the pool.
    """
    pool = _POOL
    if pool is None:
        return {"running": False}
    health = pool.health()
    health["running"] = True
    return health


def request_worker_kill() -> None:
    """Arm a one-shot SIGKILL of a worker during the *next* sharded call.

    Used by the ``kill_worker`` fault action to simulate a worker crash
    mid-shard; the next :func:`gspmm_sharded` kills one worker right
    after dispatching its shards and must recover by resubmitting the
    corpse's shards to the survivors.
    """
    global _KILL_REQUESTED
    _KILL_REQUESTED = True


def request_worker_hang() -> None:
    """Arm a one-shot SIGSTOP of a worker during the *next* sharded call.

    Used by the ``hang_worker`` fault action: the stopped worker stays
    alive but silent, so only heartbeat-based hung detection (not the
    dead-pipe check) can recover the call.
    """
    global _HANG_REQUESTED
    _HANG_REQUESTED = True


def kill_one_worker() -> bool:
    """SIGKILL a live pool worker right now; returns False if no pool."""
    if _POOL is None:
        return False
    return _POOL.kill_one()


def hang_one_worker() -> bool:
    """SIGSTOP a live pool worker right now; returns False if no pool."""
    if _POOL is None:
        return False
    return _POOL.stop_one()


@contextmanager
def sharded_pool(num_workers: Optional[int] = None):
    """Scoped pool: warm within the block, shut down (and segments
    released) on exit.  Tests and short-lived drivers use this to
    guarantee a clean ``/dev/shm``; long-lived engines rely on the warm
    module pool plus the atexit hook instead."""
    # lint: allow(lock-held-across-blocking-call) scoped pool teardown waits
    with _POOL_LOCK:
        pool = _get_pool(num_workers or default_num_workers())
        try:
            yield pool
        finally:
            shutdown_pool()
            release_segments()


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter shutdown
    try:
        shutdown_pool()
    finally:
        release_segments()


atexit.register(_atexit_cleanup)


# ----------------------------------------------------------------------
# The strategy entry point
# ----------------------------------------------------------------------
def _check_shard_bounds(bounds: np.ndarray, num_rows: int) -> None:
    """Disjoint-coverage check: the runtime discharge of the planlint
    obligation that sharded writes partition the output rows."""
    if (
        bounds.shape[0] < 2
        or int(bounds[0]) != 0
        or int(bounds[-1]) != num_rows
        or bool(np.any(np.diff(bounds) < 0))
    ):
        raise ShardedWorkerError(
            f"shard bounds {np.asarray(bounds).tolist()} do not disjointly "
            f"cover rows [0, {num_rows})"
        )


def gspmm_sharded(
    adj: CSRMatrix,
    x: np.ndarray,
    semiring: Optional[Semiring] = None,
    num_workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    block_nnz: Optional[int] = None,
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Process-parallel sharded g-SpMM; see the module docstring.

    ``block_nnz`` forces one tile size on every non-tiny shard; ``None``
    lets :func:`select_shard_plan` pick per shard.  ``timeout`` defaults
    to ``REPRO_SHARDED_TIMEOUT`` seconds.
    """
    global _KILL_REQUESTED, _HANG_REQUESTED
    if semiring is None:
        semiring = get_semiring()
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if semiring.binary.uses_rhs and x.shape[0] != adj.shape[1]:
        raise ValueError(f"gspmm shape mismatch: adj {adj.shape} vs dense {x.shape}")
    n, ncols = int(adj.shape[0]), int(adj.shape[1])
    k_in = int(x.shape[1])
    k_out = 1 if semiring.binary.name == "copy_lhs" else k_in
    if n == 0:
        # empty result, returned to the caller  # lint: allow(raw-alloc-in-kernels)
        return np.empty((0, k_out), dtype=np.float64)
    if num_workers is None:
        num_workers = default_num_workers()
    num_workers = max(1, int(num_workers))
    if num_shards is None:
        num_shards = default_num_shards(adj.nnz, num_workers)
    bounds = plan_row_shards(adj.indptr, num_shards)
    _check_shard_bounds(bounds, n)

    # lint: allow(lock-held-across-blocking-call) collect() must own the pool
    with _POOL_LOCK:
        pool = _get_pool(num_workers)
        if _KILL_REQUESTED:
            # Fault hook (repro.faults kill_worker): SIGKILL one worker
            # *before* its shards are submitted, so tasks round-robined
            # onto the dead process sit in an abandoned queue and the
            # healing collect() must respawn the slot and resubmit them —
            # a deterministic stand-in for a worker dying mid-shard.
            _KILL_REQUESTED = False
            pool.kill_one()
        if _HANG_REQUESTED:
            # Fault hook (repro.faults hang_worker): SIGSTOP leaves the
            # worker alive but silent, so only heartbeat-based hung
            # detection recovers the call.
            _HANG_REQUESTED = False
            pool.stop_one()
        graph_entry = _graph_segments(adj)
        x_shm = _acquire_buffer(max(x.nbytes, 1))
        try:
            out_shm = _acquire_buffer(max(n * k_out * 8, 1))
        except Exception:
            # nothing was submitted yet: the pool is untouched and the
            # lone acquired buffer can be recycled, not torn down
            _release_buffer(x_shm)
            raise
        try:
            _fill_segment(x_shm, x)
            names = {
                "indptr": graph_entry["indptr"].name,
                "indices": graph_entry["indices"].name,
                "x": x_shm.name,
                "out": out_shm.name,
            }
            has_values = adj.values is not None
            if has_values:
                names["values"] = graph_entry["values"].name
            meta = (n, ncols, int(adj.nnz), k_in, k_out, has_values)
            submitted = 0
            for i in range(num_shards):
                r0, r1 = int(bounds[i]), int(bounds[i + 1])
                shard_edges = int(adj.indptr[r1] - adj.indptr[r0])
                if block_nnz is not None:
                    inner, block = "blocked", int(block_nnz)
                else:
                    inner, block = select_shard_plan(shard_edges, r1 - r0, k_in)
                pool.submit(i, (i, names, meta, r0, r1,
                                semiring.reduce.name, semiring.binary.name,
                                inner, block))
                submitted += 1
            pool.collect(submitted, timeout or config.sharded_timeout_seconds())
            out = np.ndarray(
                (n, k_out), dtype=np.float64, buffer=out_shm.buf
            ).copy()
        except Exception:
            # A late worker write into a recycled buffer would corrupt an
            # unrelated call: on any failure the buffers die with the pool.
            _discard_buffer(x_shm)
            _discard_buffer(out_shm)
            shutdown_pool()
            raise
        _release_buffer(x_shm)
        _release_buffer(out_shm)
        return out
