"""Sparse-plus-diagonal: the setup kernel behind GIN's precomputed B.

``spadd_diag(A, d)`` returns the weighted CSR matrix ``A + diag(d)``,
inserting diagonal entries where A has none.  This is a pattern-changing
*setup* primitive: it runs once per graph, then aggregation proceeds as a
single weighted SpMM.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["spadd_diag"]


def spadd_diag(adj: CSRMatrix, diag: np.ndarray) -> CSRMatrix:
    """``A + diag(d)`` as a weighted CSR matrix."""
    if adj.shape[0] != adj.shape[1]:
        raise ValueError("spadd_diag requires a square matrix")
    diag = np.asarray(diag, dtype=np.float64)
    if diag.shape != (adj.shape[0],):
        raise ValueError("diagonal length must match the matrix size")
    rows, cols, vals = adj.to_coo()
    n = adj.shape[0]
    loop = np.arange(n, dtype=np.int64)
    return CSRMatrix.from_coo(
        np.concatenate([rows, loop]),
        np.concatenate([cols, loop]),
        np.concatenate([vals, diag]),
        adj.shape,
    )
