"""Wall-clock timing helpers for the real (NumPy, CPU) benchmarks."""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["Timer", "time_fn"]


class Timer:
    """A context-manager stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_fn(fn: Callable, repeats: int = 3, warmup: int = 1) -> Tuple[float, object]:
    """Minimum-of-repeats wall-clock time of ``fn()`` and its last result."""
    result = None
    for _ in range(warmup):
        result = fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result
