"""Real-execution backend: wall-clock profiling of the NumPy kernels.

The simulated cpu/a100/h100 devices reproduce the paper's testbeds; this
backend instead treats *this repository's own NumPy kernels on the host
CPU* as a fourth target.  Profiling a :class:`~repro.kernels.registry.
KernelCall` here actually executes the matching kernel on operands drawn
from a real graph and measures wall-clock time — which is how the paper
gathers its training data (§V), and what lets the validation experiment
show GRANII's methodology working end-to-end on genuine measurements.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..graphs import Graph
from ..kernels import (
    KernelCall,
    WorkspaceArena,
    degrees_by_binning,
    degrees_from_indptr,
    edge_softmax,
    gemm,
    gsddmm,
    gspmm,
    get_semiring,
    row_broadcast,
    sddmm,
    sddmm_diag_scale,
    spadd_diag,
    spmm,
    spmm_unweighted,
)
from ..sparse import CSRMatrix, DiagonalMatrix
from .timer import time_fn

__all__ = ["RealExecutionBackend", "REAL_PROFILED_PRIMITIVES"]

REAL_PROFILED_PRIMITIVES = (
    "gemm",
    "spmm",
    "spmm_unweighted",
    "spmm_blocked",
    "spmm_parallel",
    "spmm_sharded",
    "sddmm",
    "sddmm_diag",
    "gsddmm_attn",
    "edge_softmax",
    "fused_attn_spmm",
    "spgemm",
    "row_broadcast",
    "elementwise",
    "degree_indptr",
    "degree_binning",
    "diag_mul",
    "spadd_diag",
)


class RealExecutionBackend:
    """Executes primitives for real and reports measured seconds.

    Operand caches are keyed per graph so repeated profiling of the same
    adjacency does not re-randomise inputs (and so the measurement cost
    stays dominated by the kernels themselves).
    """

    name = "numpy-cpu"

    def __init__(self, repeats: int = 2, seed: int = 0) -> None:
        self.repeats = repeats
        self._rng = np.random.default_rng(seed)
        self._dense_cache: Dict[tuple, np.ndarray] = {}
        self._graph_ops: Dict[int, dict] = {}
        # shared across profiled invocations so the blocked strategies are
        # measured with warm scratch buffers, as they run in steady state
        self._workspace = WorkspaceArena()

    # ------------------------------------------------------------------
    def _dense(self, rows: int, cols: int) -> np.ndarray:
        key = (rows, cols)
        if key not in self._dense_cache:
            self._dense_cache[key] = self._rng.standard_normal((rows, cols))
        return self._dense_cache[key]

    def _ops_for(self, graph: Graph) -> dict:
        key = id(graph)
        if key not in self._graph_ops:
            adj = graph.adj.unweighted()
            self._graph_ops[key] = {
                "adj": adj,
                "adj_weighted": adj.with_values(
                    self._rng.random(adj.nnz) + 0.1
                ),
                "diag": DiagonalMatrix(self._rng.random(adj.shape[0]) + 0.1),
                "logits": self._rng.standard_normal(adj.nnz),
            }
        return self._graph_ops[key]

    # ------------------------------------------------------------------
    def _kernel_thunk(self, call: KernelCall, graph: Graph):
        s = call.shape
        ops = self._ops_for(graph)
        adj: CSRMatrix = ops["adj"]
        wadj: CSRMatrix = ops["adj_weighted"]
        diag: DiagonalMatrix = ops["diag"]
        p = call.primitive
        if p == "gemm":
            a = self._dense(int(s["m"]), int(s["k"]))
            b = self._dense(int(s["k"]), int(s["n"]))
            return lambda: gemm(a, b)
        if p == "spmm":
            x = self._dense(adj.shape[1], int(s["k"]))
            return lambda: spmm(wadj, x)
        if p == "spmm_unweighted":
            x = self._dense(adj.shape[1], int(s["k"]))
            return lambda: spmm_unweighted(adj, x)
        if p == "spmm_blocked":
            x = self._dense(adj.shape[1], int(s["k"]))
            semiring = get_semiring("sum", "mul")
            return lambda: gspmm(
                wadj, x, semiring, strategy="blocked", workspace=self._workspace
            )
        if p == "spmm_parallel":
            x = self._dense(adj.shape[1], int(s["k"]))
            semiring = get_semiring("sum", "mul")
            return lambda: gspmm(wadj, x, semiring, strategy="blocked_parallel")
        if p == "spmm_sharded":
            x = self._dense(adj.shape[1], int(s["k"]))
            semiring = get_semiring("sum", "mul")
            return lambda: gspmm(
                wadj, x, semiring, strategy="spmm_sharded", num_workers=2
            )
        if p == "sddmm":
            a = self._dense(adj.shape[0], int(s["k"]))
            b = self._dense(int(s["k"]), adj.shape[1])
            return lambda: sddmm(adj, a, b)
        if p == "sddmm_diag":
            return lambda: sddmm_diag_scale(adj, diag, diag)
        if p == "gsddmm_attn":
            u = self._dense(adj.shape[0], 1)
            v = self._dense(adj.shape[1], 1)
            return lambda: gsddmm(adj, u, v, op="add")
        if p == "edge_softmax":
            logits = ops["logits"]
            return lambda: edge_softmax(adj, logits)
        if p == "fused_attn_spmm":
            from ..kernels import fused_attention_aggregate

            value = self._dense(adj.shape[1], int(s["k"]))
            score_dst = self._dense(adj.shape[0], 1)[:, 0]
            score_src = self._dense(adj.shape[1], 1)[:, 0]
            return lambda: fused_attention_aggregate(
                adj, value, score_dst, score_src
            )
        if p == "spgemm":
            from ..kernels import spgemm as k_spgemm

            return lambda: k_spgemm(wadj, wadj)
        if p == "row_broadcast":
            d = self._dense(int(s["m"]), 1)[:, 0]
            x = self._dense(int(s["m"]), int(s["k"]))
            return lambda: row_broadcast(d, x)
        if p == "elementwise":
            x = self._dense(int(s["m"]), int(s["k"]))
            return lambda: np.maximum(x, 0.0)
        if p == "degree_indptr":
            return lambda: degrees_from_indptr(adj)
        if p == "degree_binning":
            return lambda: degrees_by_binning(adj)
        if p == "diag_mul":
            return lambda: DiagonalMatrix(diag.diag * diag.diag)
        if p == "spadd_diag":
            return lambda: spadd_diag(adj, diag.diag)
        raise KeyError(f"no real executor for primitive {p!r}")

    def time_call(self, call: KernelCall, graph: Graph) -> float:
        """Measured wall-clock seconds of one real kernel execution."""
        thunk = self._kernel_thunk(call, graph)
        seconds, _ = time_fn(thunk, repeats=self.repeats, warmup=1)
        return max(seconds, 1e-9)
