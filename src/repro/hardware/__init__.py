"""Hardware timing models for the cpu / a100 / h100 evaluation targets."""

from .device import Device, DeviceProfile, GraphStats, bytes_moved
from .profiles import DEVICE_NAMES, DEVICE_PROFILES, all_devices, get_device
from .timer import Timer, time_fn

__all__ = [
    "DEVICE_NAMES",
    "DEVICE_PROFILES",
    "Device",
    "DeviceProfile",
    "GraphStats",
    "Timer",
    "all_devices",
    "bytes_moved",
    "get_device",
    "time_fn",
]
