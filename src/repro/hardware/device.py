"""Analytic device timing models.

The paper's hardware (Intel Xeon CPU, NVIDIA A100/H100) enters GRANII only
through the *relative costs* of matrix primitives (Figure 2, §VI-C1).  We
therefore model each device with a small roofline-style cost function:

    time = kernel_overhead
         + (flops / throughput(kind) + bytes / bandwidth)
         × contention_factor × skew_factor × noise

The compute and memory terms add rather than overlap: short graph
kernels rarely sustain full copy/compute overlap, and the additive form
is what makes the paper's weighted-vs-unweighted aggregation trade-off
genuinely input-dependent (skipping edge values saves real time on
dense graphs, where aggregation dominates).

- ``throughput`` distinguishes dense (GEMM-like, compute-friendly) from
  sparse (irregular) work; dense throughput grows steeply CPU → A100 →
  H100, matching the paper's "dense operations gradually become more
  optimized" observation.
- ``bytes`` is the memory traffic of the primitive; sparse primitives are
  almost always bandwidth-bound, which is what makes unweighted SpMM and
  the broadcast-vs-precompute trade-off input-dependent.
- ``contention_factor`` penalises atomics-based binning on dense graphs
  (few bins, many edges) — the WiseGraph normalization pathology of
  §VI-C1 — much more on the A100 than the H100.
- ``skew_factor`` penalises sparse kernels on skewed degree distributions
  (GPU warp load imbalance).
- ``noise`` is a deterministic, seeded log-normal multiplier so profiled
  timings are realistic but exactly reproducible.

Timings are deterministic functions of (device, primitive, shapes, graph
statistics): the evaluation harness and the cost-model trainer both call
:meth:`Device.time_call`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..graphs import Graph
from ..kernels import KernelCall

__all__ = ["DeviceProfile", "Device", "GraphStats", "bytes_moved"]

_F64 = 8.0  # bytes per element


def bytes_moved(call: KernelCall) -> float:
    """Estimated memory traffic of one primitive invocation, in bytes.

    Shapes follow the KernelCall conventions: ``m``/``k``/``n`` for dense
    dims (rows / inner or feature / cols), ``nnz`` for the sparse operand.
    """
    s = call.shape
    name = call.primitive
    if name == "gemm":
        return _F64 * (s["m"] * s["k"] + s["k"] * s["n"] + s["m"] * s["n"])
    if name == "spmm":
        # values + column indices + gathered rows + output
        return _F64 * (2 * s["nnz"] + s["nnz"] * s["k"] + s["m"] * s["k"])
    if name == "spmm_unweighted":
        return _F64 * (s["nnz"] + s["nnz"] * s["k"] + s["m"] * s["k"])
    if name in ("spmm_blocked", "spmm_parallel"):
        # tiled: the message block stays cache-resident, so only the
        # streaming traffic (values + indices + gathered rows + output)
        # hits memory — no O(E·K) intermediate round-trip
        return _F64 * (2 * s["nnz"] + s["nnz"] * s["k"] + s["m"] * s["k"])
    if name == "spmm_fused":
        # same streaming traffic as the tiled kernels; the absorbed
        # pre-scale/epilogue work rides on the already-resident tile and
        # output span, adding no extra round-trips
        return _F64 * (2 * s["nnz"] + s["nnz"] * s["k"] + s["m"] * s["k"])
    if name == "spmm_sharded":
        # the same streaming form as the tiled kernels, plus one upload
        # of the dense operand into the shared segment and one copy-out
        # of the result (the CSR upload amortises across iterations)
        return _F64 * (2 * s["nnz"] + s["nnz"] * s["k"] + 3 * s["m"] * s["k"])
    if name == "sddmm":
        return _F64 * (2 * s["nnz"] * s["k"] + 2 * s["nnz"])
    if name == "sddmm_diag":
        return _F64 * (3 * s["nnz"] + 2 * s["m"])
    if name == "gsddmm_attn":
        return _F64 * (3 * s["nnz"] + 2 * s["m"])
    if name == "edge_softmax":
        return _F64 * 4 * s["nnz"]
    if name == "row_broadcast":
        return _F64 * (2 * s["m"] * s["k"] + s["m"])
    if name == "elementwise":
        return _F64 * 2 * s["m"] * s["k"]
    if name == "degree_indptr":
        return _F64 * 2 * s["m"]
    if name == "degree_binning":
        return _F64 * 2 * s["nnz"]
    if name == "spgemm":
        return _F64 * (
            2 * s["nnz"] + 2 * s["nnz_rhs"] + 2 * s.get("nnz_out", s["nnz"])
        )
    if name == "fused_attn_spmm":
        # one pass: gather features + scores, write output; the fused α
        # never round-trips through memory (that's the point of fusion)
        return _F64 * (s["nnz"] * s["k"] + 3 * s["nnz"] + 2 * s["m"] * s["k"])
    if name == "diag_mul":
        return _F64 * 3 * s["m"]
    if name == "spadd_diag":
        return _F64 * (4 * s["nnz"] + 2 * s["m"])
    raise KeyError(f"no traffic model for primitive {call.primitive!r}")


@dataclass(frozen=True)
class GraphStats:
    """The graph statistics the timing model conditions on."""

    avg_degree: float
    row_imbalance: float
    signature: int  # stable per-graph id used to seed measurement noise

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphStats":
        n = max(graph.num_nodes, 1)
        deg = graph.degrees().astype(np.float64)
        top = max(1, n // 100)
        if graph.num_edges:
            busiest = np.partition(deg, n - top)[n - top:]
            imbalance = float(busiest.sum() / graph.num_edges)
        else:
            imbalance = 0.0
        sig = zlib.crc32(
            f"{graph.name}:{graph.num_nodes}:{graph.num_edges}".encode()
        )
        return cls(graph.num_edges / n, imbalance, sig)


_NEUTRAL_STATS = GraphStats(avg_degree=0.0, row_imbalance=0.0, signature=0)


@dataclass(frozen=True)
class DeviceProfile:
    """Calibration constants of one device."""

    name: str
    dense_throughput: float  # flop/s for GEMM-like work
    sparse_throughput: float  # flop/s for irregular work
    bandwidth: float  # bytes/s
    kernel_overhead: float  # s per launch
    atomic_scale: float  # avg-degree scale where binning atomics degrade
    atomic_exp: float  # contention growth exponent
    skew_coeff: float  # sensitivity to degree skew on sparse kernels
    noise_sigma: float  # log-normal measurement noise
    atomic_base: float = 1.0  # uncontended atomic-op slowdown (binning)
    # tiled-kernel calibration: row-blocked execution bounds how much one
    # hot row can stall a pass, removing this fraction of the skew penalty
    tile_skew_relief: float = 0.5
    # effective speedup of the host thread-pool SpMM path; ~1 on GPUs
    # (the kernel is already device-wide parallel, threads only add
    # dispatch overhead) but real on CPU targets
    thread_speedup: float = 1.0
    # effective speedup of the process-sharded SpMM path: worker
    # processes sidestep the GIL entirely and per-shard tile selection
    # keeps working sets cache-resident, so on CPU hosts it exceeds the
    # thread pool's; ~1 on GPUs (host processes cannot split a device)
    process_speedup: float = 1.0
    # fixed cost of one sharded dispatch: segment upload + per-shard IPC
    # round trips.  Large on GPUs (host<->device staging would dominate),
    # small but non-zero on CPU — this is what makes sharding lose on
    # small graphs
    shard_latency: float = 5.0e-3


class Device:
    """A timing oracle for matrix primitives on one hardware target."""

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile
        # timings are deterministic, so identical invocations are memoised
        # (evaluation sweeps re-time the same kernels thousands of times)
        self._memo: Dict[tuple, float] = {}

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    def _contention(self, call: KernelCall, stats: GraphStats) -> float:
        if call.primitive != "degree_binning":
            return 1.0
        scale = self.profile.atomic_scale
        if scale <= 0:
            return self.profile.atomic_base
        return (
            self.profile.atomic_base
            + (stats.avg_degree / scale) ** self.profile.atomic_exp
        )

    _TILED_PRIMITIVES = frozenset(
        {"spmm_blocked", "spmm_parallel", "spmm_sharded", "spmm_fused"}
    )

    def _skew(self, call: KernelCall, stats: GraphStats) -> float:
        if call.kind != "sparse":
            return 1.0
        coeff = self.profile.skew_coeff
        if call.primitive in self._TILED_PRIMITIVES:
            coeff *= 1.0 - self.profile.tile_skew_relief
        return 1.0 + coeff * stats.row_imbalance

    def _noise(self, call: KernelCall, stats: GraphStats) -> float:
        if self.profile.noise_sigma <= 0:
            return 1.0
        key = f"{self.name}|{call.primitive}|{sorted(call.shape.items())}|{stats.signature}"
        seed = zlib.crc32(key.encode())
        rng = np.random.default_rng(seed)
        return float(np.exp(self.profile.noise_sigma * rng.standard_normal()))

    # ------------------------------------------------------------------
    def time_call(
        self, call: KernelCall, stats: Optional[GraphStats] = None
    ) -> float:
        """Simulated execution time of one primitive, in seconds."""
        stats = stats or _NEUTRAL_STATS
        memo_key = (
            call.primitive,
            tuple(sorted(call.shape.items())),
            stats.avg_degree,
            stats.row_imbalance,
            stats.signature,
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        tput = (
            self.profile.dense_throughput
            if call.kind == "dense"
            else self.profile.sparse_throughput
        )
        compute = call.flops / tput
        memory = bytes_moved(call) / self.profile.bandwidth
        base = compute + memory
        overhead = self.profile.kernel_overhead
        if call.primitive == "spmm_parallel":
            # thread-pool dispatch plus per-block scheduling launches
            base /= max(self.profile.thread_speedup, 1.0)
            overhead *= 6.0
        elif call.primitive == "spmm_blocked":
            overhead *= 2.0
        elif call.primitive == "spmm_fused":
            # one compiled launch absorbs the whole segment: the step-by-
            # step dispatches it replaces are the overhead it saves
            overhead *= 1.5
            base *= 0.9  # fused epilogues skip intermediate materialisation
        elif call.primitive == "spmm_sharded":
            base /= max(self.profile.process_speedup, 1.0)
            overhead = overhead * 8.0 + self.profile.shard_latency
        result = (
            overhead
            + base
            * self._contention(call, stats)
            * self._skew(call, stats)
            * self._noise(call, stats)
        )
        self._memo[memo_key] = result
        return result

    def time_calls(
        self, calls, stats: Optional[GraphStats] = None
    ) -> float:
        """Total simulated time of a sequence of primitive invocations."""
        return float(sum(self.time_call(c, stats) for c in calls))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Device({self.name!r})"
