"""Calibrated device profiles for the paper's three testbeds (§V).

The absolute constants are order-of-magnitude realistic (FP32 GEMM
throughput, HBM/DDR bandwidth) but what matters for reproducing the
paper's *shapes* is the relative structure:

- dense throughput grows much faster than sparse throughput or bandwidth
  from CPU → A100 → H100, so dense-heavy compositions win progressively
  more often on newer hardware (§VI-C1 "Difference Across Hardware");
- the A100 has the harshest atomics penalty (binning on dense graphs),
  the H100 a much milder one (improved L2 atomics), producing the paper's
  10× WiseGraph-GCN win on A100 vs 1.5× on H100;
- the CPU has the largest measurement noise (Figures 8(v)-(x)).
"""

from __future__ import annotations

from typing import Dict, List

from .device import Device, DeviceProfile

__all__ = ["DEVICE_PROFILES", "get_device", "all_devices", "DEVICE_NAMES"]

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "cpu": DeviceProfile(
        name="cpu",
        dense_throughput=2.0e11,
        sparse_throughput=2.0e10,
        bandwidth=8.0e10,
        kernel_overhead=2.0e-6,
        atomic_scale=400.0,  # serial bincount: only extreme density hurts
        atomic_exp=0.6,
        skew_coeff=0.3,
        noise_sigma=0.10,
        thread_speedup=3.0,  # the blocked thread-pool path is real on CPU
        process_speedup=4.5,  # GIL-free workers + cache-sized shard tiles
        shard_latency=2.0e-4,  # fork-pool IPC round trip on one host
    ),
    "a100": DeviceProfile(
        name="a100",
        dense_throughput=1.8e13,
        sparse_throughput=3.5e11,
        bandwidth=1.5e12,
        kernel_overhead=3.0e-6,
        atomic_scale=1.0,  # atomics degrade quickly once bins are hot
        atomic_exp=1.1,
        skew_coeff=1.0,
        noise_sigma=0.04,
        atomic_base=8.0,  # even uncontended GPU atomics serialise badly
    ),
    "h100": DeviceProfile(
        name="h100",
        dense_throughput=6.0e13,
        sparse_throughput=8.0e11,
        bandwidth=3.2e12,
        kernel_overhead=3.0e-6,
        atomic_scale=8.0,  # much-improved L2 atomics
        atomic_exp=0.9,
        atomic_base=2.0,
        skew_coeff=0.5,
        noise_sigma=0.04,
    ),
}

DEVICE_NAMES = tuple(DEVICE_PROFILES)

_DEVICES: Dict[str, Device] = {}


def get_device(name: str) -> Device:
    """Look up (and cache) a device by name: 'cpu', 'a100' or 'h100'."""
    name = name.lower()
    if name not in DEVICE_PROFILES:
        raise KeyError(f"unknown device {name!r}; choices: {DEVICE_NAMES}")
    if name not in _DEVICES:
        _DEVICES[name] = Device(DEVICE_PROFILES[name])
    return _DEVICES[name]


def all_devices() -> List[Device]:
    return [get_device(name) for name in DEVICE_NAMES]
